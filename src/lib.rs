//! # GMT: GPU-Orchestrated Memory Tiering
//!
//! A full Rust reproduction of **"GMT: GPU Orchestrated Memory Tiering for
//! the Big Data Era"** (ASPLOS 2024). GMT builds a GPU-orchestrated 3-tier
//! memory hierarchy — GPU memory (Tier-1), host memory (Tier-2), NVMe SSD
//! (Tier-3) — with a reuse-prediction-based insertion policy deciding where
//! each Tier-1 eviction victim goes.
//!
//! Because the paper's platform (A100 + NVMe peer-to-peer) is hardware, this
//! workspace implements the whole substrate as a calibrated discrete-event
//! simulation (see `DESIGN.md` for the substitution table) and the GMT
//! algorithms — clock replacement, VTD sampling, OLS reuse regression, the
//! 3-state Markov tier predictor, Hybrid-32T transfers — exactly as
//! published.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`sim`] — virtual time, queueing resources, Zipf sampling, statistics.
//! * [`mem`] — pages, tiers, warp accesses, clock/FIFO structures.
//! * [`ssd`] — the NVMe SSD model (queue pairs, channels, latency/BW).
//! * [`pcie`] — PCIe link, DMA vs zero-copy transfer engines, Hybrid-XT.
//! * [`gpu`] — the warp-level execution engine that replays traces.
//! * [`reuse`] — reuse-distance machinery (Olken tree, VTD, OLS, Markov).
//! * [`core`] — the GMT runtime and its three placement policies.
//! * [`baselines`] — BaM (2-tier) and HMM (CPU-orchestrated) baselines.
//! * [`workloads`] — the nine paper applications as trace generators.
//! * [`analysis`] — instrumented characterization (reuse %, RRD histograms).
//!
//! # Quickstart
//!
//! Run MultiVectorAdd through GMT-Reuse and BaM, and compare:
//!
//! ```
//! use gmt::analysis::runner::{geometry_for, run_system, SystemKind};
//! use gmt::core::PolicyKind;
//! use gmt::workloads::{multivectoradd::MultiVectorAdd, Workload, WorkloadScale};
//!
//! let workload = MultiVectorAdd::with_scale(&WorkloadScale::tiny());
//! let geometry = geometry_for(&workload, 4.0, 2.0);
//!
//! let bam = run_system(&workload, SystemKind::Bam, &geometry, 7);
//! let gmt = run_system(&workload, SystemKind::Gmt(PolicyKind::Reuse), &geometry, 7);
//! println!("GMT-Reuse speedup over BaM: {:.2}x", gmt.speedup_over(&bam));
//! assert!(gmt.elapsed.as_nanos() > 0 && bam.elapsed.as_nanos() > 0);
//! ```

#![forbid(unsafe_code)]

pub mod tutorial;

pub use gmt_analysis as analysis;
pub use gmt_baselines as baselines;
pub use gmt_core as core;
pub use gmt_gpu as gpu;
pub use gmt_mem as mem;
pub use gmt_pcie as pcie;
pub use gmt_reuse as reuse;
pub use gmt_serve as serve;
pub use gmt_sim as sim;
pub use gmt_ssd as ssd;
pub use gmt_workloads as workloads;
