//! Command-line driver for the GMT simulator.
//!
//! ```text
//! gmt-cli run     --app srad --system gmt-reuse [--t1 1024] [--ratio 4] [--os 2] [--seed 1]
//! gmt-cli compare --app srad [--t1 1024] [--ratio 4] [--os 2] [--seed 1]
//! gmt-cli list
//! ```
//!
//! `run` executes one workload on one system and prints its metrics;
//! `compare` runs all five systems on one workload and prints a speedup
//! table; `list` enumerates workloads and systems.

use std::process::ExitCode;

use gmt::analysis::runner::{run_system, RunResult, SystemKind};
use gmt::analysis::table::{fmt_pct, fmt_ratio, Table};
use gmt::core::PolicyKind;
use gmt::mem::TierGeometry;
use gmt::workloads::{suite, Workload, WorkloadScale};

const USAGE: &str = "\
usage:
  gmt-cli run          --app <name> --system <name> [--t1 <pages>] [--ratio <f>] [--os <f>] [--seed <n>]
  gmt-cli compare      --app <name> [--t1 <pages>] [--ratio <f>] [--os <f>] [--seed <n>]
  gmt-cli characterize --app <name> [--t1 <pages>] [--ratio <f>] [--os <f>] [--seed <n>]
  gmt-cli sweep        --app <name> [--t1 <pages>] [--os <f>] [--seed <n>]   (ratios 2/4/8)
  gmt-cli list

systems: bam, hmm, gmt-tierorder, gmt-random, gmt-reuse
apps:    lavamd, pathfinder, bfs, multivectoradd, srad, backprop, pagerank, sssp, hotspot";

#[derive(Debug)]
struct Options {
    app: Option<String>,
    system: Option<String>,
    t1: usize,
    ratio: f64,
    os: f64,
    seed: u64,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        app: None,
        system: None,
        t1: 1024,
        ratio: 4.0,
        os: 2.0,
        seed: 1,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--app" => opts.app = Some(value()?),
            "--system" => opts.system = Some(value()?),
            "--t1" => opts.t1 = value()?.parse().map_err(|e| format!("--t1: {e}"))?,
            "--ratio" => opts.ratio = value()?.parse().map_err(|e| format!("--ratio: {e}"))?,
            "--os" => opts.os = value()?.parse().map_err(|e| format!("--os: {e}"))?,
            "--seed" => opts.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opts)
}

fn parse_system(name: &str) -> Result<SystemKind, String> {
    match name.to_ascii_lowercase().as_str() {
        "bam" => Ok(SystemKind::Bam),
        "hmm" => Ok(SystemKind::Hmm),
        "gmt-tierorder" | "tierorder" => Ok(SystemKind::Gmt(PolicyKind::TierOrder)),
        "gmt-random" | "random" => Ok(SystemKind::Gmt(PolicyKind::Random)),
        "gmt-reuse" | "reuse" | "gmt" => Ok(SystemKind::Gmt(PolicyKind::Reuse)),
        other => Err(format!("unknown system '{other}'")),
    }
}

fn find_app(name: &str, opts: &Options) -> Result<Box<dyn Workload>, String> {
    let total = ((opts.t1 as f64) * (1.0 + opts.ratio) * opts.os).round() as usize;
    let scale = WorkloadScale::pages(total.max(64));
    let wanted = name.to_ascii_lowercase();
    suite(&scale)
        .into_iter()
        .find(|w| w.name().to_ascii_lowercase() == wanted)
        .ok_or_else(|| format!("unknown app '{name}' (try `gmt-cli list`)"))
}

fn geometry_for(workload: &dyn Workload, opts: &Options) -> TierGeometry {
    TierGeometry::from_total(workload.total_pages(), opts.ratio, opts.os)
}

fn print_run(r: &RunResult) {
    println!("workload          {}", r.workload);
    println!("system            {}", r.system);
    println!("elapsed           {}", r.elapsed);
    println!("accesses          {}", r.metrics.accesses);
    println!("t1 hit rate       {}", fmt_pct(r.metrics.t1_hit_rate()));
    println!("t2 hit rate       {}", fmt_pct(r.metrics.t2_hit_rate()));
    println!("ssd reads         {}", r.metrics.ssd_reads);
    println!("ssd writes        {}", r.metrics.ssd_writes);
    println!("t2 placements     {}", r.metrics.t2_placements);
    println!("t1 evictions      {}", r.metrics.t1_evictions);
    if r.metrics.predictions > 0 {
        println!(
            "pred. accuracy    {}",
            fmt_pct(r.metrics.prediction_accuracy())
        );
    }
}

fn cmd_run(opts: &Options) -> Result<(), String> {
    let app = opts.app.as_deref().ok_or("run needs --app")?;
    let system = parse_system(opts.system.as_deref().ok_or("run needs --system")?)?;
    let workload = find_app(app, opts)?;
    let geometry = geometry_for(workload.as_ref(), opts);
    let result = run_system(workload.as_ref(), system, &geometry, opts.seed);
    print_run(&result);
    Ok(())
}

fn cmd_compare(opts: &Options) -> Result<(), String> {
    let app = opts.app.as_deref().ok_or("compare needs --app")?;
    let workload = find_app(app, opts)?;
    let geometry = geometry_for(workload.as_ref(), opts);
    println!(
        "{} over {} pages (Tier-1 = {}, Tier-2 = {}, seed {})\n",
        workload.name(),
        workload.total_pages(),
        geometry.tier1_pages,
        geometry.tier2_pages,
        opts.seed
    );
    let bam = run_system(workload.as_ref(), SystemKind::Bam, &geometry, opts.seed);
    let mut table = Table::new(vec![
        "system",
        "elapsed",
        "speedup vs BaM",
        "SSD I/Os",
        "T2 hit rate",
    ]);
    for system in [
        SystemKind::Bam,
        SystemKind::Hmm,
        SystemKind::Gmt(PolicyKind::TierOrder),
        SystemKind::Gmt(PolicyKind::Random),
        SystemKind::Gmt(PolicyKind::Reuse),
    ] {
        let r = run_system(workload.as_ref(), system, &geometry, opts.seed);
        table.row(vec![
            system.name().to_string(),
            r.elapsed.to_string(),
            fmt_ratio(r.speedup_over(&bam)),
            r.metrics.ssd_ios().to_string(),
            fmt_pct(r.metrics.t2_hit_rate()),
        ]);
    }
    println!("{table}");
    Ok(())
}

fn cmd_characterize(opts: &Options) -> Result<(), String> {
    use gmt::analysis::characterize;
    use gmt::reuse::mrc::MissRatioCurve;
    let app = opts.app.as_deref().ok_or("characterize needs --app")?;
    let workload = find_app(app, opts)?;
    let geometry = geometry_for(workload.as_ref(), opts);
    let c = characterize(workload.as_ref(), &geometry, opts.seed);
    println!("workload            {}", c.name);
    println!("address space       {} pages", c.total_pages);
    println!("accesses            {}", c.accesses);
    println!("page reuse          {}", fmt_pct(c.reuse_pct));
    println!("demanded data       {:.2} GB", c.demand_bytes as f64 / 1e9);
    println!(
        "RRD bias            {} short / {} medium / {} long",
        fmt_pct(c.tier_bias[0]),
        fmt_pct(c.tier_bias[1]),
        fmt_pct(c.tier_bias[2])
    );
    let touches = workload
        .trace(opts.seed)
        .into_iter()
        .flat_map(|a| a.pages.iter().collect::<Vec<_>>());
    let mrc = MissRatioCurve::from_trace(touches);
    println!(
        "LRU miss ratio      {} @ |T1|, {} @ |T1|+|T2|",
        fmt_pct(mrc.miss_ratio(geometry.tier1_pages)),
        fmt_pct(mrc.miss_ratio(geometry.tier1_pages + geometry.tier2_pages))
    );
    Ok(())
}

fn cmd_sweep(opts: &Options) -> Result<(), String> {
    use gmt::core::PolicyKind;
    let app = opts.app.as_deref().ok_or("sweep needs --app")?;
    let workload = find_app(app, opts)?;
    let base = geometry_for(workload.as_ref(), opts);
    println!(
        "{}: GMT-Reuse speedup over BaM as Tier-2 grows (Tier-1 = {} pages)\n",
        workload.name(),
        base.tier1_pages
    );
    let mut table = Table::new(vec!["Tier-2:Tier-1 ratio", "Tier-2 pages", "speedup"]);
    for ratio in [2.0f64, 4.0, 8.0] {
        let geometry = gmt::mem::TierGeometry {
            tier2_pages: ((base.tier1_pages as f64) * ratio).round() as usize,
            ..base
        };
        let bam = run_system(workload.as_ref(), SystemKind::Bam, &geometry, opts.seed);
        let reuse = run_system(
            workload.as_ref(),
            SystemKind::Gmt(PolicyKind::Reuse),
            &geometry,
            opts.seed,
        );
        table.row(vec![
            format!("{ratio:.0}"),
            geometry.tier2_pages.to_string(),
            fmt_ratio(reuse.speedup_over(&bam)),
        ]);
    }
    println!("{table}");
    Ok(())
}

fn cmd_list() {
    println!("workloads:");
    for w in suite(&WorkloadScale::tiny()) {
        println!("  {}", w.name());
    }
    println!("systems:\n  BaM\n  HMM\n  GMT-TierOrder\n  GMT-Random\n  GMT-Reuse");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let outcome = match command.as_str() {
        "list" => {
            cmd_list();
            Ok(())
        }
        "run" => parse_options(rest).and_then(|o| cmd_run(&o)),
        "compare" => parse_options(rest).and_then(|o| cmd_compare(&o)),
        "characterize" => parse_options(rest).and_then(|o| cmd_characterize(&o)),
        "sweep" => parse_options(rest).and_then(|o| cmd_sweep(&o)),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
