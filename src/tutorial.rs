//! A guided tour of the GMT library.
//!
//! Everything below is a runnable doctest; this module contains no code.
//!
//! # 1. The mental model
//!
//! The paper's system has three layers, and the crate structure mirrors
//! them:
//!
//! * A **workload** produces a stream of coalesced warp accesses
//!   ([`crate::workloads::Workload`]). It knows nothing about memory.
//! * A **memory backend** ([`crate::gpu::MemoryBackend`]) services each
//!   access against a tier hierarchy and virtual device clocks. The GMT
//!   runtime ([`crate::core::Gmt`]), BaM and HMM are the three backends.
//! * An **executor** ([`crate::gpu::Executor`]) replays the stream across
//!   many concurrent warp contexts, which is what converts device
//!   latencies into end-to-end time.
//!
//! The one-call wrapper [`crate::analysis::runner::run_system`] wires the
//! three together:
//!
//! ```
//! use gmt::analysis::runner::{geometry_for, run_system, SystemKind};
//! use gmt::core::PolicyKind;
//! use gmt::workloads::{hotspot::Hotspot, WorkloadScale};
//!
//! let workload = Hotspot::with_scale(&WorkloadScale::tiny());
//! let geometry = geometry_for(&workload, 4.0, 2.0);
//! let run = run_system(&workload, SystemKind::Gmt(PolicyKind::Reuse), &geometry, 1);
//! assert!(run.metrics.t1_misses > 0);
//! ```
//!
//! # 2. Configuring the runtime
//!
//! [`crate::core::GmtBuilder`] exposes every knob; the defaults are the
//! paper's published configuration (GMT-Reuse, Hybrid-32T transfers,
//! 80 % bypass threshold, demand-only movement):
//!
//! ```
//! use gmt::core::{GmtBuilder, MarkovScope, PolicyKind};
//! use gmt::mem::TierGeometry;
//!
//! let mut builder = GmtBuilder::new(TierGeometry::from_tier1(64, 4.0, 2.0));
//! builder
//!     .policy(PolicyKind::Reuse)
//!     .markov_scope(MarkovScope::PerPage) // ablation variant
//!     .prefetch_degree(4)                 // extension, default off
//!     .ssd_devices(2);                    // striped Tier-3
//! let gmt = builder.build();
//! assert_eq!(gmt.config().ssd_devices, 2);
//! ```
//!
//! # 3. Bringing your own workload
//!
//! Implement [`crate::workloads::Workload`]: name, address-space extent,
//! and a deterministic trace. Page ids must stay below
//! `total_pages()`.
//!
//! ```
//! use gmt::mem::{PageId, WarpAccess};
//! use gmt::workloads::Workload;
//!
//! struct PingPong;
//!
//! impl Workload for PingPong {
//!     fn name(&self) -> &'static str { "PingPong" }
//!     fn total_pages(&self) -> usize { 128 }
//!     fn trace(&self, _seed: u64) -> Vec<WarpAccess> {
//!         (0..1_000u64)
//!             .map(|i| WarpAccess::read(PageId(if i % 2 == 0 { 0 } else { 64 })))
//!             .collect()
//!     }
//! }
//!
//! use gmt::analysis::runner::{geometry_for, run_system, SystemKind};
//! let geometry = geometry_for(&PingPong, 4.0, 2.0);
//! let run = run_system(&PingPong, SystemKind::Bam, &geometry, 0);
//! // Two hot pages: after the cold misses everything hits Tier-1.
//! assert!(run.metrics.t1_hit_rate() > 0.99);
//! ```
//!
//! # 4. Understanding a result
//!
//! Three tools explain *why* a run performed as it did:
//!
//! * [`crate::analysis::characterize`] — reuse % and the Fig. 7 RRD tier
//!   bias,
//! * [`crate::reuse::mrc::MissRatioCurve`] — the LRU miss ratio at any
//!   capacity (the ceiling on what Tier-2 can recover),
//! * [`crate::core::Gmt::latency_breakdown`] — measured host vs SSD
//!   miss-service distributions (the paper's ~50 µs vs ~130 µs).
//!
//! ```
//! use gmt::mem::PageId;
//! use gmt::reuse::mrc::MissRatioCurve;
//!
//! // A loop over 50 pages thrashes any smaller LRU...
//! let mrc = MissRatioCurve::from_trace((0..10).flat_map(|_| (0..50).map(PageId)));
//! assert_eq!(mrc.miss_ratio(49), 1.0);
//! // ...and only takes cold misses once it fits.
//! assert!(mrc.miss_ratio(50) <= 0.1);
//! ```
//!
//! # 5. Reproducing the paper
//!
//! Each table and figure has a binary under `gmt-bench`
//! (`cargo run -p gmt-bench --release --bin fig8`), and `EXPERIMENTS.md`
//! records the paper-vs-measured comparison for all of them. The
//! `report` binary regenerates the headline numbers into `REPORT.md` on
//! your machine.
