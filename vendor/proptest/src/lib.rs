//! Offline vendored mini property-testing harness.
//!
//! Mirrors the slice of the `proptest` API this workspace uses —
//! `proptest! {}`, `prop_assert!`/`prop_assert_eq!`, `any::<T>()`,
//! integer/float range strategies, tuple strategies,
//! `proptest::collection::vec`, `Strategy::prop_map` and
//! `proptest::sample::Index` — on top of a deterministic RNG.
//!
//! Unlike upstream proptest there is no shrinking: a failing case
//! reports its deterministic case index, which reproduces exactly on
//! re-run (generation is seeded from the test name and case number).

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Number of generated cases per property (overridable with the
/// `PROPTEST_CASES` environment variable).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// FNV-1a hash of a test name, for per-test seed derivation.
pub fn fnv(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The deterministic generator backing value generation.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds a generator from a test-name hash and a case index.
    pub fn deterministic(name_hash: u64, case: u64) -> TestRng {
        TestRng(StdRng::seed_from_u64(
            name_hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Why a property case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed (falsified) case with the given reason.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        })+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:ident => $i:tt),+))+) => {
        $(impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        })+
    };
}

tuple_strategy! {
    (A => 0)
    (A => 0, B => 1)
    (A => 0, B => 1, C => 2)
    (A => 0, B => 1, C => 2, D => 3)
    (A => 0, B => 1, C => 2, D => 3, E => 4)
    (A => 0, B => 1, C => 2, D => 3, E => 4, F => 5)
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })+
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange(r)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange(n..n + 1)
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into().0,
        }
    }
}

/// Sampling helpers (`proptest::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};
    use rand::RngCore;

    /// An index into a collection whose length is unknown at generation
    /// time; resolved against a concrete length with [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolves the index against a collection of `len` elements.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy, TestCaseError,
    };
}

/// Defines `#[test]` functions that run their body over generated inputs.
///
/// Each listed binding is sampled fresh per case; `prop_assert!`-family
/// failures abort the case with its deterministic case index.
#[macro_export]
macro_rules! proptest {
    ($(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            #[test]
            fn $name() {
                let __hash = $crate::fnv(stringify!($name));
                for __case in 0..$crate::cases() {
                    let mut __rng = $crate::TestRng::deterministic(__hash, __case as u64);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__msg) = __result {
                        panic!("property failed at case {}: {}", __case, __msg);
                    }
                }
            }
        )+
    };
}

/// `assert!` that fails the current property case instead of panicking
/// directly (must run inside a [`proptest!`] body).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("{}: {:?} != {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u8..5, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn tuples_and_map_compose(
            pair in (0usize..3, any::<bool>()),
            mapped in (1u32..5).prop_map(|n| n * 10),
        ) {
            prop_assert!(pair.0 < 3);
            prop_assert!(mapped % 10 == 0 && (10..50).contains(&mapped));
        }

        #[test]
        fn index_resolves(idx in any::<prop::sample::Index>()) {
            prop_assert!(idx.index(7) < 7);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = crate::collection::vec(0u64..1_000, 1..50);
        let mut a = crate::TestRng::deterministic(1, 2);
        let mut b = crate::TestRng::deterministic(1, 2);
        assert_eq!(
            crate::Strategy::sample(&s, &mut a),
            crate::Strategy::sample(&s, &mut b)
        );
    }
}
