//! Offline vendored stand-in for the `bytes` crate.
//!
//! Implements the reading (`Buf` on `&[u8]`) and writing (`BufMut` on
//! `BytesMut`) surface the binary trace codec uses, with `Bytes` as a
//! plain owned byte vector behind `Deref<Target = [u8]>`. Upstream's
//! refcounted zero-copy slicing is not reproduced — the codec only ever
//! builds a buffer once and reads it through `&[u8]`.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes `dst.len()` bytes into `dst`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Consumes a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consumes a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A mutable, growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut(Vec::new())
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

/// An immutable owned byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes(Vec::new())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_slice(b"hdr");
        buf.put_u8(0xAB);
        buf.put_u16_le(0x1234);
        buf.put_u64_le(0xDEAD_BEEF_CAFE_F00D);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 3 + 1 + 2 + 8);

        let mut cursor: &[u8] = &frozen;
        let mut hdr = [0u8; 3];
        cursor.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"hdr");
        assert_eq!(cursor.get_u8(), 0xAB);
        assert_eq!(cursor.get_u16_le(), 0x1234);
        assert_eq!(cursor.get_u64_le(), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u64_le();
    }
}
