//! Offline vendored micro-benchmark harness.
//!
//! Exposes the slice of the `criterion` API the workspace's benches use
//! (`Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::{iter, iter_batched}`, `BenchmarkId`, `BatchSize`, the
//! `criterion_group!`/`criterion_main!` macros) with a simple
//! fixed-iteration timer instead of criterion's statistical engine.
//! Good enough for smoke-running benches and spotting gross regressions;
//! not a substitute for real criterion's confidence intervals.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How many timed iterations each benchmark runs.
fn iterations() -> u64 {
    std::env::var("CRITERION_STUB_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores time limits.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, &mut f);
        self
    }

    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Identifies one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function-name + parameter id.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Controls per-batch setup amortisation in [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Passed to benchmark closures; records the routine's timing.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let n = iterations();
        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = n;
    }

    /// Times `routine` with a fresh `setup()` value per iteration,
    /// excluding setup cost is not attempted — the stub times the whole
    /// loop, which is fine for smoke runs.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let n = iterations();
        let start = Instant::now();
        for _ in 0..n {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        self.elapsed = start.elapsed();
        self.iters = n;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher::default();
    f(&mut b);
    if b.iters > 0 {
        let per_iter = b.elapsed.as_nanos() / u128::from(b.iters);
        println!("bench {label}: {per_iter} ns/iter ({} iters)", b.iters);
    } else {
        println!("bench {label}: no iterations recorded");
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut ran = 0u64;
        let mut c = Criterion::default();
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran >= iterations());
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &n| b.iter(|| n * 2));
        group.bench_with_input(BenchmarkId::from_parameter("p"), &(), |b, _| {
            b.iter_batched(|| 1u8, |x| x + 1, BatchSize::SmallInput)
        });
        group.finish();
    }
}
