//! Offline vendored stand-in for `parking_lot`.
//!
//! Provides `Mutex` with parking_lot's panic-free `lock()` signature,
//! backed by `std::sync::Mutex` with poison recovery (a poisoned lock
//! yields the inner data, matching parking_lot's no-poisoning model).

#![forbid(unsafe_code)]

use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard};

/// A mutex whose `lock()` returns the guard directly (no `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning like parking_lot does.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
