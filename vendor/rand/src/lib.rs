//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of the `rand 0.8` API it actually
//! uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`) and [`rngs::StdRng`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64. It does NOT
//! reproduce upstream `StdRng`'s (ChaCha12) stream — only determinism
//! matters here: the same seed always produces the same sequence, which
//! is what the workspace's golden-trace tests rely on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of `T` from the "standard" distribution
    /// (full range for integers, `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        sample_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 — used to expand a `u64` seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn sample_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random bits into [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut seed: u64) -> StdRng {
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut seed);
            }
            // All-zero state is the one degenerate case; splitmix64 of any
            // seed cannot produce four zero words, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),+) => {
        $(impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        })+
    };
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        sample_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift (Lemire) keeps bias negligible without rejection.
    let x = rng.next_u64();
    ((x as u128 * span as u128) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty),+) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(uniform_u64(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(uniform_u64(rng, span) as $t)
                }
            }
        )+
    };
}

range_int!(u8, u16, u32, u64, usize);

macro_rules! range_signed {
    ($($t:ty => $u:ty),+) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                    self.start.wrapping_add(uniform_u64(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(uniform_u64(rng, span) as $t)
                }
            }
        )+
    };
}

range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! range_float {
    ($($t:ty),+) => {
        $(impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = sample_f64(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        })+
    };
}

range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i: usize = rng.gen_range(0..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn works_through_unsized_generic() {
        fn take<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(5);
        assert!(take(&mut rng) < 100);
    }
}
