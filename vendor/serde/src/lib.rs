//! Offline vendored stand-in for `serde`.
//!
//! The workspace's types derive `Serialize`/`Deserialize` for API
//! completeness, but all actual export formats (trace JSONL/CSV, figure
//! tables) are hand-rolled, so nothing ever calls serde machinery. This
//! stub provides blanket-implemented marker traits and no-op derive
//! macros so the annotations compile without network access to crates.io.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
