//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace derives serde traits on its public types for API
//! completeness but never performs serde-based serialization (export
//! paths hand-roll JSONL/CSV), so in the offline build the derives can
//! expand to nothing. The blanket impls live in the `serde` stub crate.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
