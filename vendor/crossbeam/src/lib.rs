//! Offline vendored stand-in for the `crossbeam` facade crate.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is used in
//! this workspace (one GPU→CPU sample queue); std's mpsc channel has the
//! same semantics for a single-producer pipeline, so the stub wraps it.

#![forbid(unsafe_code)]

/// Multi-producer channels (`crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel.
    #[derive(Clone)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned when the receiving half has disconnected.
    pub use std::sync::mpsc::{RecvError, SendError};

    impl<T> Sender<T> {
        /// Sends a message; errors if the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Returns a pending message without blocking, if any.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn roundtrip_and_disconnect() {
            let (tx, rx) = super::unbounded();
            tx.send(7u32).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
            drop(rx);
            assert!(tx.send(8).is_err());
        }
    }
}
