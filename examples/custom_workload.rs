//! Bring your own workload: implement [`Workload`] for an application GMT
//! has never seen — here, a key-value store whose lookups follow a Zipf
//! popularity distribution with periodic range scans.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use gmt::analysis::runner::{geometry_for, run_system, SystemKind};
use gmt::analysis::table::{fmt_pct, fmt_ratio, Table};
use gmt::core::PolicyKind;
use gmt::mem::{PageId, WarpAccess};
use gmt::sim::Zipf;
use gmt::workloads::Workload;
use rand::Rng;

/// A key-value store: point lookups with Zipf-popular keys, interleaved
/// with occasional full-partition scans (compaction-like).
struct KvStore {
    pages: u64,
    lookups: usize,
    scan_every: usize,
    skew: f64,
}

impl Workload for KvStore {
    fn name(&self) -> &'static str {
        "KvStore"
    }

    fn total_pages(&self) -> usize {
        self.pages as usize
    }

    fn trace(&self, seed: u64) -> Vec<WarpAccess> {
        let zipf = Zipf::new(self.pages, self.skew);
        let mut rng = gmt::sim::rng::seeded(seed);
        let mut out = Vec::with_capacity(self.lookups * 2);
        for i in 0..self.lookups {
            // A point lookup touches the key's page; 10% are updates.
            let page = PageId(zipf.sample(&mut rng));
            if rng.gen::<f64>() < 0.1 {
                out.push(WarpAccess::write(page));
            } else {
                out.push(WarpAccess::read(page));
            }
            // Periodically scan one 64-page partition sequentially.
            if i % self.scan_every == self.scan_every - 1 {
                let start = rng.gen_range(0..self.pages.saturating_sub(64));
                for p in start..start + 64 {
                    out.push(WarpAccess::read(PageId(p)));
                }
            }
        }
        out
    }
}

fn main() {
    let workload = KvStore {
        pages: 8_192,
        lookups: 60_000,
        scan_every: 500,
        skew: 0.9,
    };
    let geometry = geometry_for(&workload, 4.0, 2.0);
    println!(
        "KvStore: {} pages, zipf skew {}, scans every {} lookups\n",
        workload.pages, workload.skew, workload.scan_every
    );

    let bam = run_system(&workload, SystemKind::Bam, &geometry, 7);
    let mut table = Table::new(vec![
        "System",
        "speedup vs BaM",
        "T1 hit rate",
        "T2 hit rate",
    ]);
    for system in [
        SystemKind::Bam,
        SystemKind::Gmt(PolicyKind::TierOrder),
        SystemKind::Gmt(PolicyKind::Random),
        SystemKind::Gmt(PolicyKind::Reuse),
    ] {
        let r = run_system(&workload, system, &geometry, 7);
        table.row(vec![
            system.name().to_string(),
            fmt_ratio(r.speedup_over(&bam)),
            fmt_pct(r.metrics.t1_hit_rate()),
            fmt_pct(r.metrics.t2_hit_rate()),
        ]);
    }
    println!("{table}");
    println!("Hot keys stay in GPU memory, the warm tail lands in host memory,");
    println!("and the scan traffic is recognized as streaming and bypassed.");
}
