//! Transfer-mechanism tuning: how the Tier-1 <-> Tier-2 engine choice
//! (paper §2.3, Fig. 6) affects a real workload, plus a bypass-threshold
//! sweep of the §2.2 Tier-3-pressure heuristic on Hotspot.
//!
//! ```sh
//! cargo run --release --example transfer_tuning
//! ```

use gmt::analysis::runner::{geometry_for, run_system_with, SystemKind};
use gmt::analysis::table::{fmt_ratio, Table};
use gmt::core::{GmtConfig, PolicyKind};
use gmt::pcie::TransferMethod;
use gmt::workloads::{hotspot::Hotspot, srad::Srad, WorkloadScale};

fn main() {
    let scale = WorkloadScale::pages(5_120);

    // Part 1: transfer engine sweep on Srad (lots of Tier-2 traffic).
    let srad = Srad::with_scale(&scale);
    let geometry = geometry_for(&srad, 4.0, 2.0);
    let base = GmtConfig::new(geometry);
    let bam = run_system_with(&srad, SystemKind::Bam, &base, 1);
    let mut table = Table::new(vec!["Transfer method", "Srad speedup vs BaM"]);
    for (name, method) in [
        ("DmaAsync", TransferMethod::DmaAsync),
        ("ZeroCopy", TransferMethod::ZeroCopy),
        ("Hybrid-8T", TransferMethod::hybrid(8)),
        ("Hybrid-32T (GMT default)", TransferMethod::hybrid_32t()),
    ] {
        let config = GmtConfig {
            transfer: method,
            ..base
        };
        let r = run_system_with(&srad, SystemKind::Gmt(PolicyKind::Reuse), &config, 1);
        table.row(vec![name.to_string(), fmt_ratio(r.speedup_over(&bam))]);
    }
    println!("{table}");

    // Part 2: the 80% Tier-3-pressure heuristic on Hotspot, whose RRDs
    // are ~100% Tier-3: without forcing, Tier-2 would sit empty.
    let hotspot = Hotspot::with_scale(&scale);
    let geometry = geometry_for(&hotspot, 4.0, 2.0);
    let base = GmtConfig::new(geometry);
    let bam = run_system_with(&hotspot, SystemKind::Bam, &base, 1);
    let mut table = Table::new(vec![
        "Bypass threshold",
        "Hotspot speedup vs BaM",
        "forced T2 placements",
    ]);
    for threshold in [1.1f64, 0.95, 0.8, 0.5] {
        let mut config = base;
        config.reuse.bypass_threshold = threshold;
        let r = run_system_with(&hotspot, SystemKind::Gmt(PolicyKind::Reuse), &config, 1);
        let label = if threshold > 1.0 {
            "disabled".into()
        } else {
            format!("{threshold:.2}")
        };
        table.row(vec![
            label,
            fmt_ratio(r.speedup_over(&bam)),
            r.metrics.forced_t2_placements.to_string(),
        ]);
    }
    println!("{table}");
    println!("(paper §3.3: the heuristic is why Hotspot speeds up 125% despite");
    println!(" having essentially no Tier-2-class reuse distances)");
}
