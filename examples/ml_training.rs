//! ML training over tiered memory: Backprop's forward/backward weight
//! sweeps, the paper's most I/O-intensive workload (Table 2: 6.8 TB) and
//! GMT-Reuse's biggest win (Fig. 8a: 2.79x).
//!
//! Demonstrates per-policy metrics and the reuse predictor's learning.
//!
//! ```sh
//! cargo run --release --example ml_training
//! ```

use gmt::analysis::runner::{geometry_for, run_system, SystemKind};
use gmt::analysis::table::{fmt_pct, fmt_ratio, Table};
use gmt::core::PolicyKind;
use gmt::workloads::{backprop::Backprop, Workload, WorkloadScale};

fn main() {
    let workload = Backprop::with_scale(&WorkloadScale::pages(5_120));
    let geometry = geometry_for(&workload, 4.0, 2.0);
    println!(
        "Backprop: {} weight pages across 16 layers, 6 training batches\n",
        workload.total_pages()
    );

    let bam = run_system(&workload, SystemKind::Bam, &geometry, 1);
    println!(
        "BaM baseline: {} with {} SSD reads + {} dirty write-backs\n",
        bam.elapsed, bam.metrics.ssd_reads, bam.metrics.ssd_writes
    );

    let mut table = Table::new(vec![
        "Policy",
        "speedup",
        "SSD I/O vs BaM",
        "T2 placements",
        "T2 hits",
        "prediction accuracy",
    ]);
    for policy in PolicyKind::ALL {
        let r = run_system(&workload, SystemKind::Gmt(policy), &geometry, 1);
        table.row(vec![
            policy.name().to_string(),
            fmt_ratio(r.speedup_over(&bam)),
            fmt_ratio(r.io_ratio_vs(&bam)),
            r.metrics.t2_placements.to_string(),
            r.metrics.t2_hits.to_string(),
            if policy == PolicyKind::Reuse {
                fmt_pct(r.metrics.prediction_accuracy())
            } else {
                "-".into()
            },
        ]);
    }
    println!("{table}");
    println!("The backward pass dirties every weight page; host memory absorbs");
    println!("those write-backs, which is where most of the speedup comes from.");
}
