//! Capacity planning with miss-ratio curves: how much Tier-2 does a
//! workload actually need? One trace pass answers for *every* capacity at
//! once (Mattson's stack algorithm), and the answer predicts the measured
//! tiering results.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use gmt::analysis::runner::{geometry_for, run_system, SystemKind};
use gmt::analysis::table::{fmt_pct, Table};
use gmt::core::PolicyKind;
use gmt::mem::TierGeometry;
use gmt::reuse::mrc::MissRatioCurve;
use gmt::workloads::{backprop::Backprop, Workload, WorkloadScale};

fn main() {
    let workload = Backprop::with_scale(&WorkloadScale::pages(5_120));
    let touches = workload
        .trace(1)
        .into_iter()
        .flat_map(|a| a.pages.iter().collect::<Vec<_>>());
    let mrc = MissRatioCurve::from_trace(touches);
    println!(
        "Backprop: {} accesses, {} compulsory misses\n",
        mrc.accesses(),
        mrc.cold_misses()
    );

    // Step 1: read the curve.
    let tier1 = 512usize;
    let mut curve = Table::new(vec!["capacity (pages)", "LRU miss ratio"]);
    for capacity in [
        tier1,
        2 * tier1,
        3 * tier1,
        5 * tier1,
        8 * tier1,
        10 * tier1,
    ] {
        curve.row(vec![
            capacity.to_string(),
            fmt_pct(mrc.miss_ratio(capacity)),
        ]);
    }
    println!("{curve}");
    match mrc.capacity_for(0.3) {
        Some(c) => println!("smallest capacity for a 30% miss ratio: {c} pages\n"),
        None => println!("a 30% miss ratio is unreachable (cold misses dominate)\n"),
    }

    // Step 2: confirm with real tiering runs at two memory provisionings
    // (over-subscription 2 vs 1.25: the latter holds most of the working
    // set in memory, which the curve predicts pays off sharply).
    let mut confirm = Table::new(vec![
        "T1+T2 pages",
        "predicted miss @ |T1|+|T2|",
        "measured GMT-Reuse SSD reads / miss",
    ]);
    for os in [2.0f64, 1.25] {
        let geometry = TierGeometry::from_total(workload.total_pages(), 4.0, os);
        let r = run_system(&workload, SystemKind::Gmt(PolicyKind::Reuse), &geometry, 1);
        let ssd_per_miss = r.metrics.ssd_reads as f64 / r.metrics.t1_misses.max(1) as f64;
        confirm.row(vec![
            (geometry.tier1_pages + geometry.tier2_pages).to_string(),
            fmt_pct(mrc.miss_ratio(geometry.tier1_pages + geometry.tier2_pages)),
            fmt_pct(ssd_per_miss),
        ]);
    }
    println!("{confirm}");
    println!("(the better-provisioned geometry's lower predicted miss ratio shows up");
    println!(" as a smaller share of Tier-1 misses falling through to the SSD)");
    let _ = geometry_for(&workload, 4.0, 2.0); // see `geometry_for` for the one-liner
}
