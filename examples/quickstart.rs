//! Quickstart: run one workload through GMT-Reuse and BaM, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gmt::analysis::runner::{geometry_for, run_system, SystemKind};
use gmt::core::PolicyKind;
use gmt::workloads::{srad::Srad, Workload, WorkloadScale};

fn main() {
    // Size Srad so its working set over-subscribes Tier-1 + Tier-2 by 2x
    // (the paper's default), with Tier-2 four times larger than Tier-1.
    let workload = Srad::with_scale(&WorkloadScale::pages(5_120));
    let geometry = geometry_for(&workload, 4.0, 2.0);
    println!(
        "Srad over {} pages (Tier-1 = {}, Tier-2 = {})",
        workload.total_pages(),
        geometry.tier1_pages,
        geometry.tier2_pages
    );

    let bam = run_system(&workload, SystemKind::Bam, &geometry, 1);
    let gmt = run_system(&workload, SystemKind::Gmt(PolicyKind::Reuse), &geometry, 1);

    println!(
        "BaM        : {} ({} SSD reads)",
        bam.elapsed, bam.metrics.ssd_reads
    );
    println!(
        "GMT-Reuse  : {} ({} SSD reads, {} Tier-2 hits, {:.1}% prediction accuracy)",
        gmt.elapsed,
        gmt.metrics.ssd_reads,
        gmt.metrics.t2_hits,
        gmt.metrics.prediction_accuracy() * 100.0
    );
    println!("Speedup    : {:.2}x", gmt.speedup_over(&bam));
    println!("SSD I/O cut: {:.1}%", (1.0 - gmt.io_ratio_vs(&bam)) * 100.0);
}
