//! Does host memory still matter when storage gets faster? Sweep BaM and
//! GMT-Reuse over striped SSD arrays (1-8 devices) on a Tier-2-friendly
//! workload.
//!
//! BaM's own evaluation scales to SSD arrays; GMT's thesis is that a
//! *memory* tier beats merely adding flash bandwidth for reuse-heavy
//! workloads. This example tests that thesis on the simulated substrate.
//!
//! ```sh
//! cargo run --release --example ssd_scaling
//! ```

use gmt::analysis::runner::geometry_for;
use gmt::analysis::table::{fmt_ratio, Table};
use gmt::baselines::{Bam, BamConfig};
use gmt::core::GmtBuilder;
use gmt::gpu::{Executor, ExecutorConfig};
use gmt::workloads::{srad::Srad, Workload, WorkloadScale};

fn main() {
    let workload = Srad::with_scale(&WorkloadScale::pages(5_120));
    let geometry = geometry_for(&workload, 4.0, 2.0);
    let trace = workload.trace(1);
    let exec = Executor::new(ExecutorConfig::default());

    let baseline = exec.run(Bam::new(BamConfig::new(geometry)), trace.iter().cloned());
    println!(
        "Srad, Tier-1 = {} pages; all speedups vs 1-SSD BaM\n",
        geometry.tier1_pages
    );

    let mut table = Table::new(vec!["SSDs", "BaM", "GMT-Reuse", "GMT edge"]);
    for devices in [1usize, 2, 4, 8] {
        let bam = exec.run(
            Bam::new(BamConfig::new(geometry).with_devices(devices)),
            trace.iter().cloned(),
        );
        let gmt = exec.run(
            GmtBuilder::new(geometry).ssd_devices(devices).build(),
            trace.iter().cloned(),
        );
        let bam_speed = baseline.elapsed.as_secs_f64() / bam.elapsed.as_secs_f64();
        let gmt_speed = baseline.elapsed.as_secs_f64() / gmt.elapsed.as_secs_f64();
        table.row(vec![
            devices.to_string(),
            fmt_ratio(bam_speed),
            fmt_ratio(gmt_speed),
            fmt_ratio(gmt_speed / bam_speed),
        ]);
    }
    println!("{table}");
    println!("The \"GMT edge\" column shows how much of Tier-2's advantage survives");
    println!("as raw flash bandwidth grows — it shrinks, but host memory's lower");
    println!("latency keeps it positive until storage stops being the bottleneck.");
}
