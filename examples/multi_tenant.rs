//! Multi-tenant serving: two tenants, one hierarchy, four policies.
//!
//! A latency-sensitive Zipf tenant shares the tiered hierarchy with a
//! bulk sequential-scan tenant. The example runs the same offered load
//! under each Tier-1 partitioning policy and prints the per-tenant
//! outcome, showing what strict quotas and QoS floors buy.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use gmt::core::GmtConfig;
use gmt::gpu::ExecutorConfig;
use gmt::mem::TierGeometry;
use gmt::serve::{
    ArrivalSchedule, PartitionPolicy, ServeConfig, TenantRegistry, TenantSpec, TieredService,
};
use gmt::workloads::synthetic::{SequentialScan, ZipfLoop};
use gmt::workloads::WorkloadScale;

/// Pages of GPU memory the two tenants contend for.
const TIER1_PAGES: usize = 128;

fn tenants(policy: PartitionPolicy) -> TenantRegistry {
    let mut registry = TenantRegistry::new(TIER1_PAGES, policy);
    // An interactive tenant: skewed reuse, steady Poisson arrivals, and
    // a 96-page working set it would like kept in Tier-1.
    registry
        .admit(TenantSpec {
            name: "interactive".into(),
            workload: Box::new(ZipfLoop::new(&WorkloadScale::pages(96), 1.0, 0.1, 4_000)),
            arrival: ArrivalSchedule::Poisson { mean_gap_ns: 2_500 },
            quota_pages: 96,
            weight: 3,
            floor_pages: 90,
            seed: 1,
        })
        .expect("interactive tenant fits");
    // A batch tenant: a big streaming scan with zero reuse, arriving in
    // bursts — the classic noisy neighbour.
    registry
        .admit(TenantSpec {
            name: "batch-scan".into(),
            workload: Box::new(SequentialScan::new(&WorkloadScale::pages(512), 20)),
            arrival: ArrivalSchedule::Bursty {
                burst: 32,
                gap_ns: 150,
                idle_ns: 3_000,
            },
            quota_pages: 32,
            weight: 1,
            floor_pages: 8,
            seed: 2,
        })
        .expect("batch tenant fits");
    registry
}

fn main() {
    // Tier-2 twice Tier-1; the address space covers both tenants'
    // ranges (96 + 512 pages < 768).
    let geometry = TierGeometry::from_tier1(TIER1_PAGES, 2.0, 2.0);
    for policy in PartitionPolicy::ALL {
        let config = ServeConfig {
            gmt: GmtConfig::new(geometry),
            partition: policy,
        };
        let service = TieredService::new(&config, tenants(policy)).expect("valid config");
        let outcome = service.serve(ExecutorConfig::default(), 1 << 21);
        println!(
            "\n== {policy} == ({:.2} ms simulated)",
            outcome.elapsed.as_nanos() as f64 / 1e6
        );
        println!("{}", outcome.report);
    }
    println!(
        "\nReading the tables: under strict-quota or shared-qos the \
         interactive tenant's hit rate barely moves when the scan hammers \
         the hierarchy; fully-shared lets the scan churn the shared clock \
         and the interactive tenant pays for it."
    );
}
