//! Record once, replay everywhere: serialize an expensive trace (a BFS
//! over a generated graph) to the compact binary format and replay the
//! *identical* accesses through two systems — then capture one replay's
//! decision trace and export it as JSONL for offline analysis.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use gmt::analysis::runner::geometry_for;
use gmt::analysis::tracesum::counters_from_trace;
use gmt::baselines::{Bam, BamConfig};
use gmt::core::{Gmt, GmtConfig};
use gmt::gpu::{Executor, ExecutorConfig};
use gmt::mem::trace;
use gmt::sim::trace::to_jsonl;
use gmt::workloads::{bfs::Bfs, Workload, WorkloadScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Expensive step: generate the graph and run BFS once.
    let workload = Bfs::with_scale(&WorkloadScale::pages(600));
    let accesses = workload.trace(11);
    println!(
        "BFS trace: {} warp accesses over {} pages",
        accesses.len(),
        workload.total_pages()
    );

    // Record it: ~9 bytes per access.
    let bytes = trace::encode(&accesses);
    println!(
        "serialized: {} bytes ({:.1} B/access)",
        bytes.len(),
        bytes.len() as f64 / accesses.len() as f64
    );

    // Replay from the serialized form — no graph generation needed.
    let replayed = trace::decode(&bytes)?;
    assert_eq!(replayed, accesses);

    let geometry = geometry_for(&workload, 4.0, 2.0);
    let exec = Executor::new(ExecutorConfig::default());
    let bam = exec.run(Bam::new(BamConfig::new(geometry)), replayed.iter().cloned());
    let gmt = exec.run(Gmt::new(GmtConfig::new(geometry)), replayed.iter().cloned());
    println!("BaM       : {}", bam.elapsed);
    println!("GMT-Reuse : {}", gmt.elapsed);
    println!(
        "speedup   : {:.2}x",
        bam.elapsed.as_secs_f64() / gmt.elapsed.as_secs_f64()
    );

    // Replay a slice once more with the decision trace on: every tiering
    // decision (miss, eviction, Tier-2 placement, SSD submission...)
    // lands in a shared ring as a typed, timestamped event. The ring is
    // sized to hold the whole slice so the counters reconcile exactly.
    let slice = 2_000.min(replayed.len());
    let mut traced = Gmt::new(GmtConfig::new(geometry));
    let sink = traced.enable_tracing(1 << 20);
    let out = exec.run(traced, replayed.iter().take(slice).cloned());
    let records = sink.snapshot();
    let counters = counters_from_trace(&records);
    counters
        .reconcile(&out.backend.metrics())
        .expect("the trace reconciles exactly with the runtime's own counters");
    println!(
        "decision trace: {} records ({} dropped), {} misses / {} Tier-2 hits",
        records.len(),
        sink.dropped(),
        counters.t1_misses,
        counters.t2_hits
    );

    // Export as line-delimited JSON — byte-identical for identical
    // configuration and seed, so diffs mean behavior changes.
    let jsonl = to_jsonl(&records);
    let path = std::env::temp_dir().join("gmt_decision_trace.jsonl");
    std::fs::write(&path, &jsonl)?;
    println!("wrote {} ({} bytes)", path.display(), jsonl.len());
    for line in jsonl.lines().take(3) {
        println!("  {line}");
    }
    Ok(())
}
