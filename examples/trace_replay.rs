//! Record once, replay everywhere: serialize an expensive trace (a BFS
//! over a generated graph) to the compact binary format and replay the
//! *identical* accesses through two systems.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use gmt::analysis::runner::geometry_for;
use gmt::baselines::{Bam, BamConfig};
use gmt::core::{Gmt, GmtConfig};
use gmt::gpu::{Executor, ExecutorConfig};
use gmt::mem::trace;
use gmt::workloads::{bfs::Bfs, Workload, WorkloadScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Expensive step: generate the graph and run BFS once.
    let workload = Bfs::with_scale(&WorkloadScale::pages(600));
    let accesses = workload.trace(11);
    println!(
        "BFS trace: {} warp accesses over {} pages",
        accesses.len(),
        workload.total_pages()
    );

    // Record it: ~9 bytes per access.
    let bytes = trace::encode(&accesses);
    println!("serialized: {} bytes ({:.1} B/access)", bytes.len(), bytes.len() as f64 / accesses.len() as f64);

    // Replay from the serialized form — no graph generation needed.
    let replayed = trace::decode(&bytes)?;
    assert_eq!(replayed, accesses);

    let geometry = geometry_for(&workload, 4.0, 2.0);
    let exec = Executor::new(ExecutorConfig::default());
    let bam = exec.run(Bam::new(BamConfig::new(geometry)), replayed.iter().cloned());
    let gmt = exec.run(Gmt::new(GmtConfig::new(geometry)), replayed.iter().cloned());
    println!("BaM       : {}", bam.elapsed);
    println!("GMT-Reuse : {}", gmt.elapsed);
    println!(
        "speedup   : {:.2}x",
        bam.elapsed.as_secs_f64() / gmt.elapsed.as_secs_f64()
    );
    Ok(())
}
