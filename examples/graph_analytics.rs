//! Graph analytics on tiered memory: PageRank over a GAP-Kron graph,
//! compared across BaM, HMM and the three GMT policies.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use gmt::analysis::runner::{geometry_for, run_system, SystemKind};
use gmt::analysis::table::{fmt_pct, fmt_ratio, Table};
use gmt::core::PolicyKind;
use gmt::workloads::kron::{KronConfig, KronGraph};
use gmt::workloads::pagerank::PageRank;

fn main() {
    // A 2^16-vertex GAP-Kron graph (A=0.57, B=0.19, C=0.19, degree 16):
    // skewed enough that hub pages dominate reuse, like the paper's input.
    let graph = KronGraph::generate(KronConfig::gap(16), 42);
    println!(
        "GAP-Kron graph: {} vertices, {} edges",
        graph.vertices,
        graph.edges()
    );
    let workload = PageRank::on_graph(graph, 3);
    // Graph datasets are fixed; the hierarchy is scaled around them
    // (paper §3.5): Tier-2 = 4 x Tier-1, working set 2 x capacity.
    let geometry = geometry_for(&workload, 4.0, 2.0);

    let bam = run_system(&workload, SystemKind::Bam, &geometry, 1);
    let mut table = Table::new(vec![
        "System",
        "speedup vs BaM",
        "SSD reads",
        "Tier-2 hit rate",
    ]);
    for system in [
        SystemKind::Bam,
        SystemKind::Hmm,
        SystemKind::Gmt(PolicyKind::TierOrder),
        SystemKind::Gmt(PolicyKind::Random),
        SystemKind::Gmt(PolicyKind::Reuse),
    ] {
        let r = run_system(&workload, system, &geometry, 1);
        table.row(vec![
            system.name().to_string(),
            fmt_ratio(r.speedup_over(&bam)),
            r.metrics.ssd_reads.to_string(),
            fmt_pct(r.metrics.t2_hit_rate()),
        ]);
    }
    println!("{table}");
}
