//! End-to-end calibration guardrails: the simulated substrate must keep
//! matching the platform numbers the paper reports (§3.1 Table 1, §3.4),
//! or every figure's absolute scale silently drifts.

use gmt::gpu::{Executor, ExecutorConfig, PartitionedExecutor};
use gmt::mem::{PageId, WarpAccess};
use gmt::pcie::{HostLink, HostLinkConfig, TransferBatch, TransferMethod};
use gmt::sim::{Dur, Time};
use gmt::ssd::{SsdConfig, SsdDevice};

const PAGE: u64 = 64 * 1024;

#[test]
fn ssd_page_read_latency_near_paper_130us() {
    // §3.4: "Retrieving a page ... from the SSD (around 130 us)".
    let mut ssd = SsdDevice::new(SsdConfig::default());
    let done = ssd.read(Time::ZERO, 0, PAGE);
    let us = done.since(Time::ZERO).as_nanos() as f64 / 1e3;
    assert!((100.0..160.0).contains(&us), "SSD page read {us} us");
}

#[test]
fn ssd_saturated_bandwidth_near_gen3_x4() {
    // Table 1: Samsung 970 EVO Plus on Gen3 x4 (~3.2 GB/s effective).
    let mut ssd = SsdDevice::new(SsdConfig::default());
    let mut done = Time::ZERO;
    let pages = 8_000u64;
    for i in 0..pages {
        done = done.max(ssd.read(Time::ZERO, i * PAGE, PAGE));
    }
    let gbps = (pages * PAGE) as f64 / done.as_secs_f64() / 1e9;
    assert!(
        (2.6..3.4).contains(&gbps),
        "saturated SSD bandwidth {gbps} GB/s"
    );
}

#[test]
fn host_page_fetch_near_paper_50us_under_load() {
    // §3.4: "Retrieving a page from host memory is faster (around 50 us)".
    // The figure is a loaded-path number: measure the mean completion gap
    // of a stream of single-page DMA fetches.
    let mut link = HostLink::new(HostLinkConfig::default());
    let batch = TransferBatch {
        pages: 1,
        page_bytes: PAGE,
        threads: 32,
    };
    let mut last = Time::ZERO;
    let n = 100u32;
    for _ in 0..n {
        last = link.transfer(Time::ZERO, batch, TransferMethod::hybrid_32t());
    }
    let mean_us = last.since(Time::ZERO).as_nanos() as f64 / 1e3 / n as f64;
    assert!(
        (4.0..60.0).contains(&mean_us),
        "host fetch stays well under the SSD's 130 us: {mean_us} us"
    );
}

#[test]
fn host_fetch_beats_ssd_fetch_by_the_paper_margin() {
    // The whole premise of Tier-2: host ≈ 50 us vs SSD ≈ 130 us, i.e.
    // roughly a 2-3x latency advantage at low load.
    let mut link = HostLink::new(HostLinkConfig::default());
    let mut ssd = SsdDevice::new(SsdConfig::default());
    let batch = TransferBatch {
        pages: 1,
        page_bytes: PAGE,
        threads: 32,
    };
    let host = link.transfer(Time::ZERO, batch, TransferMethod::hybrid_32t());
    let flash = ssd.read(Time::ZERO, 0, PAGE);
    let advantage = flash.as_nanos() as f64 / host.as_nanos() as f64;
    assert!(advantage > 2.0, "host advantage only {advantage:.2}x");
}

#[test]
fn pcie_x16_link_bandwidth() {
    // Table 1: PCIe Gen3 x16 (~12.8 GB/s effective after overheads).
    let mut link = HostLink::new(HostLinkConfig::default());
    let batch = TransferBatch {
        pages: 256,
        page_bytes: PAGE,
        threads: 32,
    };
    let done = link.transfer(Time::ZERO, batch, TransferMethod::ZeroCopy);
    let gbps = batch.bytes() as f64 / done.since(Time::ZERO).as_secs_f64() / 1e9;
    assert!(
        (10.0..13.0).contains(&gbps),
        "zero-copy bulk bandwidth {gbps} GB/s"
    );
}

#[test]
fn scheduling_model_does_not_drive_the_results() {
    // Replay one bandwidth-bound pattern through both executor models:
    // the elapsed times must agree closely, demonstrating that figure
    // shapes are not artifacts of the global-work-queue idealization.
    use gmt::baselines::{Bam, BamConfig};
    use gmt::mem::TierGeometry;
    let geometry = TierGeometry::from_tier1(64, 4.0, 2.0);
    let trace: Vec<WarpAccess> = (0..4u64)
        .flat_map(|_| (0..640).map(|p| WarpAccess::read(PageId(p))))
        .collect();
    let cfg = ExecutorConfig {
        warp_slots: 128,
        compute_per_access: Dur::from_nanos(150),
    };
    let flat = Executor::new(cfg).run(Bam::new(BamConfig::new(geometry)), trace.iter().cloned());
    let part = PartitionedExecutor::new(cfg)
        .run(Bam::new(BamConfig::new(geometry)), trace.iter().cloned());
    let ratio = part.elapsed.as_nanos() as f64 / flat.elapsed.as_nanos() as f64;
    assert!(
        (0.85..1.25).contains(&ratio),
        "executor models diverge: {ratio}"
    );
    assert_eq!(
        flat.backend.metrics().ssd_reads,
        part.backend.metrics().ssd_reads
    );
}
