//! Integration tests for the default-off extensions (DESIGN.md §6): each
//! must compose with the full runtime without perturbing the published
//! default behaviour.

use gmt::analysis::runner::{geometry_for, run_system, run_system_with, SystemKind};
use gmt::baselines::{Bam, BamConfig};
use gmt::core::{GmtConfig, MarkovScope, PolicyKind, PredictorKind, Tier2Insert};
use gmt::gpu::{Executor, ExecutorConfig};
use gmt::workloads::synthetic::{SequentialScan, ZipfLoop};
use gmt::workloads::{hotspot::Hotspot, srad::Srad, Workload, WorkloadScale};

const SEED: u64 = 5;

#[test]
fn prefetching_speeds_up_latency_bound_scans() {
    // Prefetching hides latency; it cannot add bandwidth. With thousands
    // of warps a scan is bandwidth-bound and prefetching is neutral, so
    // run with few warps (an under-occupied kernel) where each demand
    // miss's 130 us stall is on the critical path.
    use gmt::core::Gmt;
    let workload = SequentialScan::new(&WorkloadScale::pages(1_500), 2);
    let geometry = geometry_for(&workload, 4.0, 2.0);
    let exec = Executor::new(ExecutorConfig {
        warp_slots: 4,
        compute_per_access: gmt::sim::Dur::from_nanos(150),
    });
    let base = GmtConfig::new(geometry);
    let mut prefetching = base;
    prefetching.prefetch_degree = 8;
    let trace = workload.trace(SEED);
    let plain = exec.run(Gmt::new(base), trace.iter().cloned());
    let fast = exec.run(Gmt::new(prefetching), trace.iter().cloned());
    let (pm, fm) = (plain.backend.metrics(), fast.backend.metrics());
    assert!(fm.prefetches > 0);
    assert!(
        fm.t1_misses * 2 < pm.t1_misses,
        "prefetching must at least halve demand misses: {} vs {}",
        fm.t1_misses,
        pm.t1_misses
    );
    // Elapsed improves until the SSD's bandwidth cap takes over; the
    // under-occupied run sits at ~2/3 of that cap, so expect >=10%.
    assert!(
        fast.elapsed.as_nanos() * 10 < plain.elapsed.as_nanos() * 9,
        "prefetching must speed up a latency-bound scan: {} vs {}",
        fast.elapsed,
        plain.elapsed
    );
}

#[test]
fn prefetching_accounts_every_page_exactly_once() {
    let workload = SequentialScan::new(&WorkloadScale::pages(800), 1);
    let geometry = geometry_for(&workload, 4.0, 2.0);
    let mut config = GmtConfig::new(geometry);
    config.prefetch_degree = 4;
    let r = run_system_with(&workload, SystemKind::Gmt(PolicyKind::Reuse), &config, SEED);
    // Every page enters Tier-1 exactly once (demand or prefetch) on a
    // single clean scan.
    assert_eq!(
        r.metrics.ssd_reads + r.metrics.prefetches,
        workload.total_pages() as u64,
        "reads {} + prefetches {} vs {} pages",
        r.metrics.ssd_reads,
        r.metrics.prefetches,
        workload.total_pages()
    );
    assert!(r.metrics.prefetches > 0, "the scan must trigger prefetches");
}

#[test]
fn ssd_arrays_relieve_the_storage_bottleneck() {
    let workload = Hotspot::with_scale(&WorkloadScale::pages(1_500));
    let geometry = geometry_for(&workload, 4.0, 2.0);
    let trace = workload.trace(SEED);
    let exec = Executor::new(ExecutorConfig::default());
    let one = exec.run(Bam::new(BamConfig::new(geometry)), trace.iter().cloned());
    let four = exec.run(
        Bam::new(BamConfig::new(geometry).with_devices(4)),
        trace.iter().cloned(),
    );
    assert!(
        four.elapsed.as_nanos() * 2 < one.elapsed.as_nanos(),
        "4 SSDs must at least halve an I/O-bound run: {} vs {}",
        four.elapsed,
        one.elapsed
    );
    assert_eq!(
        one.backend.metrics().ssd_reads,
        four.backend.metrics().ssd_reads
    );
}

#[test]
fn tier2_eviction_variants_all_run_cleanly() {
    let workload = Srad::with_scale(&WorkloadScale::pages(1_000));
    let geometry = geometry_for(&workload, 4.0, 2.0);
    for mode in [
        Tier2Insert::EvictFifo,
        Tier2Insert::EvictClock,
        Tier2Insert::EvictRandom,
        Tier2Insert::RejectWhenFull,
    ] {
        let mut config = GmtConfig::new(geometry);
        config.tier2_insert = Some(mode);
        let r = run_system_with(&workload, SystemKind::Gmt(PolicyKind::Reuse), &config, SEED);
        assert!(r.metrics.t2_hits > 0, "{mode:?} produced no tier-2 hits");
        assert_eq!(
            r.metrics.t2_placements + r.metrics.discards + r.metrics.ssd_writes,
            r.metrics.t1_evictions,
            "{mode:?} broke the eviction partition"
        );
    }
}

#[test]
fn clock_tier2_behaves_like_fifo_with_exclusive_tiers() {
    // The documented ablation finding: with exclusive tiers, pages are
    // never referenced while resident in Tier-2, so clock degenerates to
    // FIFO-like behaviour (equal hit counts on a deterministic sweep).
    let workload = Srad::with_scale(&WorkloadScale::pages(1_000));
    let geometry = geometry_for(&workload, 4.0, 2.0);
    let mut fifo_cfg = GmtConfig::new(geometry);
    fifo_cfg.tier2_insert = Some(Tier2Insert::EvictFifo);
    let mut clock_cfg = GmtConfig::new(geometry);
    clock_cfg.tier2_insert = Some(Tier2Insert::EvictClock);
    let fifo = run_system_with(
        &workload,
        SystemKind::Gmt(PolicyKind::Reuse),
        &fifo_cfg,
        SEED,
    );
    let clock = run_system_with(
        &workload,
        SystemKind::Gmt(PolicyKind::Reuse),
        &clock_cfg,
        SEED,
    );
    let (a, b) = (fifo.metrics.t2_hits as f64, clock.metrics.t2_hits as f64);
    assert!(
        (a - b).abs() / a.max(1.0) < 0.01,
        "clock tier-2 must track FIFO within 1%: {a} vs {b}"
    );
}

#[test]
fn markov_beats_one_level_history_on_alternating_patterns() {
    // Srad's per-page correct tiers alternate (medium within an
    // iteration, long across iterations) — the Fig. 4c pattern the
    // 2-level Markov history exists for. A 1-level "same as last time"
    // predictor is wrong on every alternation.
    let workload = Srad::with_scale(&WorkloadScale::pages(1_000));
    let geometry = geometry_for(&workload, 4.0, 2.0);
    let accuracy = |kind: PredictorKind| {
        let mut config = GmtConfig::new(geometry);
        config.reuse.predictor = kind;
        run_system_with(&workload, SystemKind::Gmt(PolicyKind::Reuse), &config, SEED)
            .metrics
            .prediction_accuracy()
    };
    let markov = accuracy(PredictorKind::Markov);
    let last = accuracy(PredictorKind::LastTier);
    assert!(
        markov > last + 0.2,
        "Markov ({markov:.3}) must clearly beat 1-level history ({last:.3})"
    );
}

#[test]
fn per_page_markov_runs_and_grades_predictions() {
    let workload = Srad::with_scale(&WorkloadScale::pages(1_000));
    let geometry = geometry_for(&workload, 4.0, 2.0);
    let mut config = GmtConfig::new(geometry);
    config.reuse.markov_scope = MarkovScope::PerPage;
    let r = run_system_with(&workload, SystemKind::Gmt(PolicyKind::Reuse), &config, SEED);
    assert!(r.metrics.predictions > 0);
    assert!(
        r.metrics.prediction_accuracy() > 0.3,
        "per-page accuracy collapsed"
    );
}

#[test]
fn synthetic_zipf_behaves_like_a_cache_friendly_workload() {
    let workload = ZipfLoop::new(&WorkloadScale::pages(2_000), 0.99, 0.05, 40_000);
    let geometry = geometry_for(&workload, 4.0, 2.0);
    let bam = run_system(&workload, SystemKind::Bam, &geometry, SEED);
    let gmt = run_system(
        &workload,
        SystemKind::Gmt(PolicyKind::Reuse),
        &geometry,
        SEED,
    );
    assert!(
        bam.metrics.t1_hit_rate() > 0.5,
        "hot set must mostly hit tier-1"
    );
    assert!(
        gmt.speedup_over(&bam) >= 0.95,
        "tier-2 must not hurt a zipf loop"
    );
}

#[test]
fn async_eviction_composes_with_every_policy() {
    let workload = Hotspot::with_scale(&WorkloadScale::pages(1_000));
    let geometry = geometry_for(&workload, 4.0, 2.0);
    for policy in PolicyKind::ALL {
        let sync_cfg = GmtConfig::new(geometry).with_policy(policy);
        let mut async_cfg = sync_cfg;
        async_cfg.async_eviction = true;
        let sync_run = run_system_with(&workload, SystemKind::Gmt(policy), &sync_cfg, SEED);
        let async_run = run_system_with(&workload, SystemKind::Gmt(policy), &async_cfg, SEED);
        assert!(
            async_run.elapsed <= sync_run.elapsed,
            "{policy}: async eviction slowed the run"
        );
        assert_eq!(sync_run.metrics.t1_misses, async_run.metrics.t1_misses);
    }
}
