//! Property-based tests over the core data structures and the full
//! runtime, using proptest.

use gmt::core::{Gmt, GmtConfig, PolicyKind};
use gmt::gpu::MemoryBackend;
use gmt::mem::{ClockList, FifoCache, PageId, Tier, TierGeometry, WarpAccess};
use gmt::reuse::{Distance, ReuseTracker, TierClassifier};
use gmt::sim::Time;
use proptest::prelude::*;

/// Brute-force unique reuse distance for cross-checking the Olken tree.
fn brute_force_rd(stream: &[u64], i: usize) -> Option<u64> {
    let p = stream[i];
    let last = stream[..i].iter().rposition(|&q| q == p)?;
    let mut distinct: Vec<u64> = stream[last + 1..i].to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    Some(distinct.len() as u64)
}

proptest! {
    #[test]
    fn olken_tree_matches_brute_force(stream in proptest::collection::vec(0u64..24, 1..300)) {
        let mut tracker = ReuseTracker::new();
        for (i, &p) in stream.iter().enumerate() {
            let d = tracker.record(PageId(p));
            match brute_force_rd(&stream, i) {
                None => prop_assert_eq!(d.rd, Distance::Cold),
                Some(rd) => prop_assert_eq!(d.rd, Distance::Finite(rd)),
            }
        }
    }

    #[test]
    fn clock_never_exceeds_capacity(
        capacity in 1usize..24,
        ops in proptest::collection::vec((0u64..48, 0u8..4), 1..400),
    ) {
        let mut clock = ClockList::new(capacity);
        for (page, op) in ops {
            let page = PageId(page);
            match op {
                0 => {
                    if !clock.contains(page) {
                        if clock.is_full() {
                            clock.replace_candidate(page);
                        } else {
                            clock.insert(page);
                        }
                    }
                }
                1 => { clock.touch(page); }
                2 => { clock.remove(page); }
                _ => {
                    if !clock.is_empty() {
                        clock.evict_candidate();
                    }
                }
            }
            prop_assert!(clock.len() <= clock.capacity());
            // The index and the slots always agree.
            prop_assert_eq!(clock.iter().count(), clock.len());
        }
    }

    #[test]
    fn clock_candidate_is_always_resident(
        pages in proptest::collection::vec(0u64..32, 1..200),
    ) {
        let mut clock = ClockList::new(8);
        for p in pages {
            let p = PageId(p);
            if clock.contains(p) {
                clock.touch(p);
            } else if clock.is_full() {
                let candidate = clock.candidate().expect("full clock has candidate");
                prop_assert!(clock.contains(candidate));
                let victim = clock.replace_candidate(p);
                prop_assert_eq!(victim, candidate);
                prop_assert!(!clock.contains(victim));
            } else {
                clock.insert(p);
            }
        }
    }

    #[test]
    fn fifo_cache_preserves_exclusivity_and_capacity(
        ops in proptest::collection::vec((0u64..64, any::<bool>()), 1..400),
    ) {
        let mut cache = FifoCache::new(12);
        for (page, remove) in ops {
            let page = PageId(page);
            if remove {
                cache.remove(page);
                prop_assert!(!cache.contains(page));
            } else if !cache.contains(page) {
                cache.insert_evicting(page);
                prop_assert!(cache.contains(page));
            }
            prop_assert!(cache.len() <= cache.capacity());
        }
    }

    #[test]
    fn classifier_is_monotone_in_rrd(
        t1 in 1u64..1000,
        extra in 1u64..4000,
        rrds in proptest::collection::vec(0u64..10_000, 1..64),
    ) {
        let classifier = TierClassifier::new(t1, t1 + extra);
        let mut sorted = rrds;
        sorted.sort_unstable();
        let tiers: Vec<Tier> = sorted.iter().map(|&r| classifier.classify(r)).collect();
        for pair in tiers.windows(2) {
            prop_assert!(pair[0] <= pair[1], "classification must be monotone");
        }
    }

    #[test]
    fn page_table_mirrors_a_model_map(
        total in 1usize..64,
        ops in proptest::collection::vec((0u64..64, 0u32..1000), 1..300),
    ) {
        use gmt::mem::PageTable;
        use std::collections::HashMap;
        let mut table: PageTable<u32> = PageTable::new(total);
        let mut model: HashMap<u64, u32> = HashMap::new();
        prop_assert_eq!(table.len(), total);
        for (page, value) in ops {
            let page = page % total as u64;
            *table.get_mut(PageId(page)) = value;
            model.insert(page, value);
            prop_assert_eq!(*table.get(PageId(page)), value);
        }
        // The table agrees with the model everywhere, defaults included.
        prop_assert_eq!(table.iter().count(), total);
        for (page, meta) in table.iter() {
            prop_assert_eq!(*meta, model.get(&page.0).copied().unwrap_or_default());
        }
    }

    #[test]
    fn gmt_runtime_invariants_under_random_traffic(
        seed in 0u64..1000,
        policy_idx in 0usize..3,
    ) {
        let geometry = TierGeometry::from_tier1(16, 4.0, 2.0);
        let policy = PolicyKind::ALL[policy_idx];
        let mut gmt = Gmt::new(GmtConfig::new(geometry).with_policy(policy));
        let mut rng = gmt::sim::rng::seeded(seed);
        let mut now = Time::ZERO;
        use rand::Rng;
        for _ in 0..600 {
            let page = PageId(rng.gen_range(0..geometry.total_pages as u64));
            let write = rng.gen_bool(0.3);
            let access = if write { WarpAccess::write(page) } else { WarpAccess::read(page) };
            let done = gmt.access(now, &access);
            prop_assert!(done >= now, "time must not go backwards");
            now = done;
        }
        let m = gmt.metrics();
        prop_assert_eq!(m.t1_hits + m.t1_misses, 600);
        prop_assert_eq!(m.t2_hits + m.wasteful_lookups, m.t1_misses);
        prop_assert_eq!(m.t2_placements + m.discards + m.ssd_writes, m.t1_evictions);
        prop_assert!(gmt.tier2_occupancy() <= geometry.tier2_pages);
        prop_assert!(m.predictions_correct <= m.predictions);
        if let Err(violation) = gmt.check_invariants() {
            return Err(TestCaseError::fail(violation));
        }
        let snap = gmt.snapshot();
        prop_assert_eq!(
            snap.tier1_pages + snap.tier2_pages + snap.ssd_pages,
            geometry.total_pages
        );
    }

    #[test]
    fn zipf_stays_in_support_and_prefers_low_ranks(
        n in 2u64..1000,
        skew in 0.0f64..1.2,
        seed in 0u64..100,
    ) {
        let zipf = gmt::sim::Zipf::new(n, skew);
        let mut rng = gmt::sim::rng::seeded(seed);
        let mut low = 0u32;
        for _ in 0..200 {
            let rank = zipf.sample(&mut rng);
            prop_assert!(rank < n);
            if rank < n.div_ceil(2) {
                low += 1;
            }
        }
        // The lower half of ranks always carries at least ~its share.
        prop_assert!(low >= 60, "lower half drew only {low}/200");
    }
}
