//! Semantic contracts of the three placement policies (paper §2.1): what
//! each one *must* do with eviction victims, checked on controlled
//! traffic.

use gmt::core::{Gmt, GmtConfig, PolicyKind};
use gmt::gpu::MemoryBackend;
use gmt::mem::{PageId, TierGeometry, WarpAccess};
use gmt::sim::Time;

fn geometry() -> TierGeometry {
    TierGeometry::from_tier1(16, 4.0, 2.0)
}

/// Streams `pages` single-touch reads through `gmt`.
fn stream(gmt: &mut Gmt, pages: std::ops::Range<u64>) -> Time {
    let mut now = Time::ZERO;
    for p in pages {
        now = gmt.access(now, &WarpAccess::read(PageId(p)));
    }
    now
}

#[test]
fn tierorder_places_unconditionally() {
    // §2.1.1: "each deeper level holds the victim of the immediately
    // preceding level" — every eviction becomes a Tier-2 placement.
    let mut gmt = Gmt::new(GmtConfig::new(geometry()).with_policy(PolicyKind::TierOrder));
    stream(&mut gmt, 0..96);
    let m = gmt.metrics();
    assert_eq!(m.t2_placements, m.t1_evictions);
    assert_eq!(m.discards, 0);
    assert_eq!(
        m.ssd_writes, 0,
        "clean victims never reach the SSD under TierOrder"
    );
}

#[test]
fn random_splits_roughly_in_half() {
    // §2.1.2: a fair coin decides Tier-2 vs bypass.
    let mut gmt = Gmt::new(GmtConfig::new(geometry()).with_policy(PolicyKind::Random));
    stream(&mut gmt, 0..160);
    let m = gmt.metrics();
    let placed = m.t2_placements as f64 / m.t1_evictions as f64;
    assert!(
        (0.35..0.65).contains(&placed),
        "random placement fraction {placed} over {} evictions",
        m.t1_evictions
    );
}

#[test]
fn reuse_bypasses_single_touch_streams() {
    // Single-touch pages carry no history and no observed reuse: the
    // stream default classifies them long-reuse, and clean long-reuse
    // victims are discarded without any I/O.
    let mut gmt = Gmt::new(GmtConfig::new(geometry()).with_policy(PolicyKind::Reuse));
    stream(&mut gmt, 0..96);
    let m = gmt.metrics();
    assert!(
        m.discards + m.forced_t2_placements >= m.t1_evictions * 9 / 10,
        "stream victims must be bypassed or heuristic-forced: {m:?}"
    );
}

#[test]
fn reuse_keeps_short_reuse_candidates_in_tier1() {
    // Pages with Tier-1-class reuse must get second chances rather than
    // ping-pong through Tier-2 (§2.1.3 "short-reuse -> retain").
    let g = geometry();
    let mut gmt = Gmt::new(GmtConfig::new(g).with_policy(PolicyKind::Reuse));
    let mut now = Time::ZERO;
    // A hot set smaller than Tier-1 mixed with a cold stream: the hot set
    // re-touches constantly.
    let hot = 6u64;
    for round in 0..400u64 {
        for h in 0..hot {
            now = gmt.access(now, &WarpAccess::read(PageId(h)));
        }
        let cold = hot + round;
        now = gmt.access(now, &WarpAccess::read(PageId(cold % g.total_pages as u64)));
    }
    let m = gmt.metrics();
    let hot_hit_floor = 400 * hot * 9 / 10;
    assert!(
        m.t1_hits >= hot_hit_floor,
        "hot set must stay resident: {} hits < {hot_hit_floor}",
        m.t1_hits
    );
}

#[test]
fn all_policies_agree_on_hit_and_miss_counts() {
    // Placement policy affects *where victims go*, never what counts as a
    // hit at access time on an identical one-pass trace.
    let trace: Vec<WarpAccess> = (0..120u64).map(|p| WarpAccess::read(PageId(p))).collect();
    let mut counts = Vec::new();
    for policy in PolicyKind::ALL {
        let mut gmt = Gmt::new(GmtConfig::new(geometry()).with_policy(policy));
        let mut now = Time::ZERO;
        for a in &trace {
            now = gmt.access(now, a);
        }
        counts.push((gmt.metrics().t1_hits, gmt.metrics().t1_misses));
    }
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "counts diverged: {counts:?}"
    );
}

#[test]
fn dirty_data_is_never_lost() {
    // Whatever the policy, a dirty page must reach the SSD (directly or
    // via a Tier-2 spill) or still be resident dirty somewhere.
    for policy in PolicyKind::ALL {
        let g = TierGeometry::from_tier1(8, 2.0, 4.0);
        let mut gmt = Gmt::new(GmtConfig::new(g).with_policy(policy));
        let mut now = Time::ZERO;
        let dirtied = 24u64;
        for p in 0..dirtied {
            now = gmt.access(now, &WarpAccess::write(PageId(p)));
        }
        // Churn with reads to force evictions and spills.
        for p in dirtied..g.total_pages as u64 {
            now = gmt.access(now, &WarpAccess::read(PageId(p)));
        }
        let m = gmt.metrics();
        let snap = gmt.snapshot();
        let accounted =
            m.ssd_writes + m.t2_writebacks + snap.dirty_tier1 as u64 + snap.dirty_tier2 as u64;
        assert!(
            accounted >= dirtied,
            "{policy}: {dirtied} dirtied but only {accounted} accounted \
             (writes {} + spills {} + resident {} + {})",
            m.ssd_writes,
            m.t2_writebacks,
            snap.dirty_tier1,
            snap.dirty_tier2
        );
        gmt.check_invariants().unwrap();
    }
}
