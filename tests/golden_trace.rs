//! Golden-trace regression tests: identical configuration and seed must
//! produce *byte-identical* decision traces, and those bytes must match
//! the fixtures committed under `tests/fixtures/`.
//!
//! When an intentional change to the runtime or the trace schema shifts
//! the stream, regenerate the fixtures and review the diff like any other
//! golden file:
//!
//! ```sh
//! REGEN_GOLDEN=1 cargo test --test golden_trace
//! ```

use gmt::analysis::runner::geometry_for;
use gmt::core::{Gmt, GmtConfig};
use gmt::gpu::{Executor, ExecutorConfig};
use gmt::sim::trace::{to_csv, to_jsonl, validate};
use gmt::workloads::synthetic::{SequentialScan, ZipfLoop};
use gmt::workloads::{Workload, WorkloadScale};

/// Runs `workload` through a traced GMT runtime and exports the stream.
fn traced_jsonl(workload: &dyn Workload, config: &GmtConfig, seed: u64) -> String {
    let mut gmt = Gmt::new(*config);
    let sink = gmt.enable_tracing(1 << 18);
    Executor::new(ExecutorConfig::default()).run(gmt, workload.trace(seed));
    assert_eq!(sink.dropped(), 0, "golden traces must capture every record");
    let records = sink.snapshot();
    validate(&records).expect("trace must be well-formed");
    to_jsonl(&records)
}

/// A short two-pass sequential scan: exercises cold misses, evictions,
/// Tier-2 placement and Tier-2 hits on the second pass.
fn scan_case() -> (SequentialScan, GmtConfig) {
    let workload = SequentialScan::new(&WorkloadScale::pages(64), 2);
    let config = GmtConfig::new(geometry_for(&workload, 4.0, 2.0));
    (workload, config)
}

/// A skewed read/write loop: exercises dirty evictions, write-backs,
/// wasteful lookups and the reuse predictor's grading.
fn zipf_case() -> (ZipfLoop, GmtConfig) {
    let workload = ZipfLoop::new(&WorkloadScale::pages(64), 0.9, 0.2, 100);
    let config = GmtConfig::new(geometry_for(&workload, 4.0, 2.0));
    (workload, config)
}

fn check_golden(name: &str, produced: &str, fixture: &str) {
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, produced).expect("write fixture");
        return;
    }
    assert!(
        produced == fixture,
        "{name} drifted from its fixture; if the change is intentional run \
         `REGEN_GOLDEN=1 cargo test --test golden_trace` and review the diff"
    );
}

#[test]
fn scan_trace_is_deterministic_and_matches_fixture() {
    let (workload, config) = scan_case();
    let first = traced_jsonl(&workload, &config, 7);
    let second = traced_jsonl(&workload, &config, 7);
    assert_eq!(
        first, second,
        "same config + seed must give byte-identical traces"
    );
    check_golden(
        "golden_scan.jsonl",
        &first,
        include_str!("fixtures/golden_scan.jsonl"),
    );
}

#[test]
fn zipf_trace_is_deterministic_and_matches_fixture() {
    let (workload, config) = zipf_case();
    let first = traced_jsonl(&workload, &config, 7);
    let second = traced_jsonl(&workload, &config, 7);
    assert_eq!(
        first, second,
        "same config + seed must give byte-identical traces"
    );
    check_golden(
        "golden_zipf.jsonl",
        &first,
        include_str!("fixtures/golden_zipf.jsonl"),
    );
}

#[test]
fn different_seeds_change_the_zipf_trace() {
    let (workload, config) = zipf_case();
    let a = traced_jsonl(&workload, &config, 7);
    let b = traced_jsonl(&workload, &config, 8);
    assert_ne!(a, b, "the seed must actually steer the workload");
}

#[test]
fn csv_export_is_deterministic_too() {
    let (workload, config) = scan_case();
    let export = |_| {
        let mut gmt = Gmt::new(config);
        let sink = gmt.enable_tracing(1 << 18);
        Executor::new(ExecutorConfig::default()).run(gmt, workload.trace(7));
        to_csv(&sink.snapshot())
    };
    assert_eq!(export(0), export(1));
}
