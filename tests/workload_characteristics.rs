//! Regression net for the workload generators: each of the nine
//! applications must keep the reuse/RRD profile class documented in
//! Table 2 / Fig. 7 — these classes are what every performance result in
//! the evaluation is explained by, so silent generator drift would
//! invalidate the figures.

use gmt::analysis::{characterize, Characterization};
use gmt::mem::{Tier, TierGeometry};
use gmt::workloads::{suite, WorkloadScale};

fn profiles() -> &'static Vec<Characterization> {
    static PROFILES: std::sync::OnceLock<Vec<Characterization>> = std::sync::OnceLock::new();
    PROFILES.get_or_init(|| {
        suite(&WorkloadScale::pages(2_000))
            .iter()
            .map(|w| {
                let geometry = TierGeometry::from_total(w.total_pages(), 4.0, 2.0);
                characterize(w.as_ref(), &geometry, 1)
            })
            .collect()
    })
}

fn profile(name: &str) -> &'static Characterization {
    profiles()
        .iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("unknown workload {name}"))
}

#[test]
fn lavamd_has_negligible_reuse() {
    let c = profile("lavaMD");
    assert!(c.reuse_pct < 0.1, "lavaMD reuse {}", c.reuse_pct);
}

#[test]
fn pathfinder_is_tier1_biased() {
    let c = profile("Pathfinder");
    assert!(c.reuse_pct < 0.3, "pathfinder reuse {}", c.reuse_pct);
    assert!(
        c.tier_bias[Tier::Gpu.index()] > 0.95,
        "pathfinder bias {:?}",
        c.tier_bias
    );
}

#[test]
fn bfs_reuse_is_tier2_heavy() {
    let c = profile("BFS");
    assert_eq!(c.dominant_tier(), Tier::Host, "BFS bias {:?}", c.tier_bias);
}

#[test]
fn multivectoradd_is_purely_medium_reuse() {
    let c = profile("MultiVectorAdd");
    assert!(
        c.tier_bias[Tier::Host.index()] > 0.9,
        "MVA bias {:?}",
        c.tier_bias
    );
    assert!(
        c.reuse_pct > 0.1 && c.reuse_pct < 0.4,
        "MVA reuse {}",
        c.reuse_pct
    );
}

#[test]
fn srad_is_high_reuse_tier2_dominant() {
    let c = profile("Srad");
    assert!(c.reuse_pct > 0.9, "srad reuse {}", c.reuse_pct);
    assert_eq!(c.dominant_tier(), Tier::Host, "srad bias {:?}", c.tier_bias);
}

#[test]
fn backprop_is_high_reuse_with_medium_component() {
    let c = profile("Backprop");
    assert!(c.reuse_pct > 0.9, "backprop reuse {}", c.reuse_pct);
    assert!(
        c.tier_bias[Tier::Host.index()] > 0.2,
        "backprop must keep a solid Tier-2 component: {:?}",
        c.tier_bias
    );
}

#[test]
fn graph_iterative_apps_are_tier3_biased() {
    for name in ["PageRank", "SSSP"] {
        let c = profile(name);
        assert!(c.reuse_pct > 0.9, "{name} reuse {}", c.reuse_pct);
        assert!(
            c.tier_bias[Tier::Ssd.index()] > 0.9,
            "{name} bias {:?}",
            c.tier_bias
        );
    }
}

#[test]
fn hotspot_is_entirely_long_reuse() {
    let c = profile("Hotspot");
    assert!(c.reuse_pct > 0.9, "hotspot reuse {}", c.reuse_pct);
    assert!(
        c.tier_bias[Tier::Ssd.index()] > 0.99,
        "hotspot bias {:?}",
        c.tier_bias
    );
}

#[test]
fn every_app_demands_more_than_its_address_space() {
    // Over-subscription means multi-pass traffic: each app's demanded
    // bytes must cover its address space at least once.
    for c in profiles() {
        let space_bytes = c.total_pages as u64 * 64 * 1024;
        assert!(
            c.demand_bytes >= space_bytes,
            "{}: demanded {} < address space {}",
            c.name,
            c.demand_bytes,
            space_bytes
        );
    }
}
