//! Cross-crate integration tests: every tiering system replayed over the
//! same traces, checked against the paper's headline relationships.

use gmt::analysis::runner::{geo_mean, geometry_for, run_system, RunResult, SystemKind};
use gmt::core::PolicyKind;
use gmt::workloads::{suite, Workload, WorkloadScale};

const SEED: u64 = 7;

fn all_systems() -> [SystemKind; 5] {
    [
        SystemKind::Bam,
        SystemKind::Hmm,
        SystemKind::Gmt(PolicyKind::TierOrder),
        SystemKind::Gmt(PolicyKind::Random),
        SystemKind::Gmt(PolicyKind::Reuse),
    ]
}

fn small_suite() -> &'static Vec<Box<dyn Workload>> {
    static SUITE: std::sync::OnceLock<Vec<Box<dyn Workload>>> = std::sync::OnceLock::new();
    SUITE.get_or_init(|| suite(&WorkloadScale::pages(1_000)))
}

fn run(workload: &dyn Workload, system: SystemKind) -> RunResult {
    let geometry = geometry_for(workload, 4.0, 2.0);
    run_system(workload, system, &geometry, SEED)
}

#[test]
fn every_system_services_every_page_touch() {
    for workload in small_suite() {
        let touches: u64 = workload
            .trace(SEED)
            .iter()
            .map(|a| a.pages.len() as u64)
            .sum();
        for system in all_systems() {
            let r = run(workload.as_ref(), system);
            assert_eq!(
                r.metrics.t1_hits + r.metrics.t1_misses,
                touches,
                "{system} dropped touches on {}",
                workload.name()
            );
        }
    }
}

#[test]
fn miss_paths_partition_exactly() {
    for workload in small_suite() {
        for system in all_systems() {
            let r = run(workload.as_ref(), system);
            let m = &r.metrics;
            match system {
                SystemKind::Bam => {
                    assert_eq!(m.ssd_reads, m.t1_misses, "BaM misses go to the SSD");
                    assert_eq!(m.t2_hits, 0);
                }
                _ => {
                    assert_eq!(
                        m.t2_hits + m.ssd_reads,
                        m.t1_misses,
                        "{system} on {}: every miss is a T2 hit or an SSD read",
                        workload.name()
                    );
                }
            }
        }
    }
}

#[test]
fn eviction_destinations_partition_exactly() {
    for workload in small_suite() {
        for policy in PolicyKind::ALL {
            let r = run(workload.as_ref(), SystemKind::Gmt(policy));
            let m = &r.metrics;
            assert_eq!(
                m.t2_placements + m.discards + m.ssd_writes,
                m.t1_evictions,
                "{policy} on {}",
                workload.name()
            );
        }
    }
}

#[test]
fn gmt_reuse_beats_bam_on_average() {
    // The paper's headline: 50% average speedup (Fig. 8a). At small
    // simulation scale we only require a solidly positive margin.
    let mut speedups = Vec::new();
    for workload in small_suite() {
        let bam = run(workload.as_ref(), SystemKind::Bam);
        let reuse = run(workload.as_ref(), SystemKind::Gmt(PolicyKind::Reuse));
        speedups.push(reuse.speedup_over(&bam));
    }
    let mean = geo_mean(speedups.iter().copied());
    assert!(mean > 1.2, "GMT-Reuse geo-mean speedup over BaM: {mean:.3}");
}

#[test]
fn gmt_reuse_beats_the_other_policies_on_average() {
    let mut reuse_s = Vec::new();
    let mut tier_s = Vec::new();
    let mut rand_s = Vec::new();
    for workload in small_suite() {
        let bam = run(workload.as_ref(), SystemKind::Bam);
        reuse_s.push(run(workload.as_ref(), SystemKind::Gmt(PolicyKind::Reuse)).speedup_over(&bam));
        tier_s.push(
            run(workload.as_ref(), SystemKind::Gmt(PolicyKind::TierOrder)).speedup_over(&bam),
        );
        rand_s.push(run(workload.as_ref(), SystemKind::Gmt(PolicyKind::Random)).speedup_over(&bam));
    }
    let reuse = geo_mean(reuse_s);
    let tier = geo_mean(tier_s);
    let rand = geo_mean(rand_s);
    assert!(reuse > rand, "Reuse {reuse:.3} must beat Random {rand:.3}");
    assert!(
        reuse >= tier * 0.95,
        "Reuse {reuse:.3} must be at least on par with TierOrder {tier:.3}"
    );
}

#[test]
fn hmm_loses_to_bam_everywhere() {
    // Fig. 14: CPU orchestration cannot keep up, despite its Tier-2.
    for workload in small_suite() {
        let bam = run(workload.as_ref(), SystemKind::Bam);
        let hmm = run(workload.as_ref(), SystemKind::Hmm);
        assert!(
            hmm.speedup_over(&bam) < 1.0,
            "HMM beat BaM on {}: {:.3}",
            workload.name(),
            hmm.speedup_over(&bam)
        );
    }
}

#[test]
fn tier2_reduces_ssd_io() {
    // Fig. 8b: the 3-tier policies all cut SSD I/O relative to BaM.
    for workload in small_suite() {
        let bam = run(workload.as_ref(), SystemKind::Bam);
        let reuse = run(workload.as_ref(), SystemKind::Gmt(PolicyKind::Reuse));
        assert!(
            reuse.metrics.ssd_ios() <= bam.metrics.ssd_ios(),
            "GMT-Reuse increased I/O on {}",
            workload.name()
        );
    }
}

#[test]
fn runs_are_deterministic() {
    let workload = &small_suite()[4]; // Srad
    let a = run(workload.as_ref(), SystemKind::Gmt(PolicyKind::Reuse));
    let b = run(workload.as_ref(), SystemKind::Gmt(PolicyKind::Reuse));
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.metrics, b.metrics);
}

#[test]
fn larger_tier2_never_hurts_reuse() {
    // Fig. 12's monotonicity, coarsely: ratio 8 must not be slower than
    // ratio 2 for the Tier-2-biased workloads.
    for workload in small_suite() {
        let name = workload.name();
        if !matches!(name, "Srad" | "Backprop" | "MultiVectorAdd") {
            continue;
        }
        let g2 = geometry_for(workload.as_ref(), 2.0, 2.0);
        let g8 = geometry_for(workload.as_ref(), 8.0, 2.0);
        let r2 = run_system(
            workload.as_ref(),
            SystemKind::Gmt(PolicyKind::Reuse),
            &g2,
            SEED,
        );
        let r8 = run_system(
            workload.as_ref(),
            SystemKind::Gmt(PolicyKind::Reuse),
            &g8,
            SEED,
        );
        assert!(
            r8.elapsed.as_nanos() <= r2.elapsed.as_nanos() * 11 / 10,
            "{name}: ratio 8 ({}) much slower than ratio 2 ({})",
            r8.elapsed,
            r2.elapsed
        );
    }
}
