//! Property-based tests over the decision-trace subsystem: whatever the
//! access stream, a captured trace must be well-formed — time-ordered,
//! causally consistent (no eviction without a prior install, no
//! completion without a prior submission), and bounded by its ring.

use gmt::baselines::{Bam, BamConfig};
use gmt::core::{Gmt, GmtConfig, PolicyKind};
use gmt::gpu::MemoryBackend;
use gmt::mem::{PageId, TierGeometry, WarpAccess};
use gmt::sim::trace::{validate, TraceEvent, TraceRecord, TraceSink};
use gmt::sim::Time;
use proptest::prelude::*;
use std::collections::HashSet;

/// Replays `accesses` random touches through a traced GMT runtime and
/// returns the records plus the runtime (post-`finish`).
fn traced_random_run(seed: u64, policy_idx: usize, accesses: usize) -> (Vec<TraceRecord>, Gmt) {
    let geometry = TierGeometry::from_tier1(16, 4.0, 2.0);
    let policy = PolicyKind::ALL[policy_idx % PolicyKind::ALL.len()];
    let mut gmt = Gmt::new(GmtConfig::new(geometry).with_policy(policy));
    let sink = gmt.enable_tracing(1 << 18);
    let mut rng = gmt::sim::rng::seeded(seed);
    let mut now = Time::ZERO;
    use rand::Rng;
    for _ in 0..accesses {
        let page = PageId(rng.gen_range(0..geometry.total_pages as u64));
        let access = if rng.gen_bool(0.3) {
            WarpAccess::write(page)
        } else {
            WarpAccess::read(page)
        };
        now = gmt.access(now, &access);
    }
    gmt.finish(now);
    assert_eq!(sink.dropped(), 0);
    (sink.snapshot(), gmt)
}

proptest! {
    #[test]
    fn traces_are_time_ordered_under_random_traffic(
        seed in 0u64..500,
        policy_idx in 0usize..3,
    ) {
        let (records, _) = traced_random_run(seed, policy_idx, 400);
        if let Err(violation) = validate(&records) {
            return Err(TestCaseError::fail(violation));
        }
    }

    #[test]
    fn every_eviction_follows_an_install_of_that_page(
        seed in 0u64..500,
        policy_idx in 0usize..3,
    ) {
        let (records, _) = traced_random_run(seed, policy_idx, 400);
        let mut installed: HashSet<u64> = HashSet::new();
        for r in &records {
            match &r.event {
                TraceEvent::Tier1Fill { page, .. } | TraceEvent::Prefetch { page } => {
                    installed.insert(*page);
                }
                TraceEvent::Eviction { page, .. } => {
                    prop_assert!(
                        installed.contains(page),
                        "page {page} evicted before any install"
                    );
                }
                _ => {}
            }
        }
    }

    #[test]
    fn device_queue_depth_is_consistent_and_never_negative(
        seed in 0u64..500,
        policy_idx in 0usize..3,
    ) {
        let (records, _) = traced_random_run(seed, policy_idx, 400);
        let mut in_flight: std::collections::HashMap<u32, i64> = Default::default();
        for r in &records {
            match r.event {
                TraceEvent::SsdSubmit { device, queue_depth, .. } => {
                    let depth = in_flight.entry(device).or_insert(0);
                    *depth += 1;
                    prop_assert_eq!(queue_depth as i64, *depth, "submit depth drifted");
                }
                TraceEvent::SsdComplete { device, queue_depth, .. } => {
                    let depth = in_flight.entry(device).or_insert(0);
                    *depth -= 1;
                    prop_assert!(*depth >= 0, "queue depth went negative");
                    prop_assert_eq!(queue_depth as i64, *depth, "complete depth drifted");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn trace_occupancy_matches_the_page_table_snapshot(
        seed in 0u64..500,
        policy_idx in 0usize..3,
    ) {
        let (records, gmt) = traced_random_run(seed, policy_idx, 400);
        let mut occupancy = gmt::analysis::tracesum::OccupancyTracker::default();
        for r in &records {
            occupancy.apply(&r.event);
        }
        let snap = gmt.snapshot();
        prop_assert_eq!(occupancy.tier1_pages(), snap.tier1_pages, "Tier-1 occupancy drifted");
        prop_assert_eq!(occupancy.tier2_pages(), snap.tier2_pages, "Tier-2 occupancy drifted");
    }

    #[test]
    fn bam_ring_completions_match_prior_submissions(
        seed in 0u64..500,
    ) {
        let geometry = TierGeometry::from_tier1(16, 4.0, 2.0);
        let mut bam = Bam::new(BamConfig::new(geometry));
        let sink = bam.enable_tracing(1 << 18);
        let mut rng = gmt::sim::rng::seeded(seed);
        let mut now = Time::ZERO;
        use rand::Rng;
        for _ in 0..300 {
            let page = PageId(rng.gen_range(0..geometry.total_pages as u64));
            now = bam.access(now, &WarpAccess::read(page));
        }
        bam.finish(now);
        let mut outstanding: HashSet<u16> = HashSet::new();
        for r in &sink.snapshot() {
            match r.event {
                TraceEvent::RingSubmit { cid, .. } => {
                    prop_assert!(outstanding.insert(cid), "cid {cid} doubly in flight");
                }
                TraceEvent::RingComplete { cid, .. } => {
                    prop_assert!(outstanding.remove(&cid), "cid {cid} completed unsubmitted");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn ring_is_bounded_and_counts_overflow(
        capacity in 1usize..64,
        events in 1usize..300,
    ) {
        let sink = TraceSink::bounded(capacity);
        for i in 0..events {
            sink.emit(Time::from_nanos(i as u64), TraceEvent::Tier1Hit { page: i as u64 });
        }
        prop_assert!(sink.len() <= capacity);
        prop_assert_eq!(sink.len() + sink.dropped() as usize, events);
        // The survivors are exactly the newest records, still in order.
        let records = sink.snapshot();
        if let Err(violation) = validate(&records) {
            return Err(TestCaseError::fail(violation));
        }
        if let Some(first) = records.first() {
            prop_assert_eq!(first.at.as_nanos() as usize, events - records.len());
        }
    }
}
