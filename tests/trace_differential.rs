//! Differential tests: the three runtimes replay the *same* hotspot
//! workload, and for each one the decision trace must reconcile exactly
//! with its own `TieringMetrics`. On top of that, the paper's headline
//! ordering must hold: GMT's Tier-2 absorbs traffic, so its total SSD
//! I/O never exceeds BaM's.

use gmt::analysis::runner::geometry_for;
use gmt::analysis::tracesum::{counters_from_trace, TraceCounters};
use gmt::baselines::{Bam, BamConfig, Hmm, HmmConfig};
use gmt::core::{Gmt, GmtConfig, TieringMetrics};
use gmt::gpu::{Executor, ExecutorConfig, MemoryBackend};
use gmt::sim::trace::validate;
use gmt::workloads::hotspot::Hotspot;
use gmt::workloads::{Workload, WorkloadScale};

const SEED: u64 = 13;
const CAPACITY: usize = 1 << 20;

fn workload() -> Hotspot {
    Hotspot::with_scale(&WorkloadScale::pages(256))
}

fn config() -> GmtConfig {
    GmtConfig::new(geometry_for(&workload(), 4.0, 2.0))
}

/// Runs `backend` on the hotspot trace and returns its reconciled
/// trace-derived counters plus its own metrics.
fn run_reconciled<B>(
    mut backend: B,
    sink: gmt::sim::trace::TraceSink,
    metrics_of: impl Fn(&B) -> TieringMetrics,
) -> (TraceCounters, TieringMetrics)
where
    B: MemoryBackend,
{
    Executor::new(ExecutorConfig::default()).run(&mut backend, workload().trace(SEED));
    assert_eq!(sink.dropped(), 0, "ring must capture the whole run");
    let records = sink.snapshot();
    validate(&records).expect("trace must be well-formed");
    let counters = counters_from_trace(&records);
    let metrics = metrics_of(&backend);
    counters
        .reconcile(&metrics)
        .expect("trace counters must equal the runtime's metrics");
    (counters, metrics)
}

#[test]
fn gmt_trace_reconciles_with_metrics() {
    let mut gmt = Gmt::new(config());
    let sink = gmt.enable_tracing(CAPACITY);
    let (counters, metrics) = run_reconciled(gmt, sink, |g| g.metrics());
    assert!(counters.t1_misses > 0);
    assert!(counters.t2_hits > 0, "a hotspot must produce Tier-2 hits");
    assert_eq!(metrics.t2_hits, counters.t2_hits);
}

#[test]
fn bam_trace_reconciles_with_metrics() {
    let mut bam = Bam::new(BamConfig::from(config()));
    let sink = bam.enable_tracing(CAPACITY);
    let (counters, _) = run_reconciled(bam, sink, |b| b.metrics());
    assert!(counters.t1_misses > 0);
    assert_eq!(counters.t2_hits, 0, "BaM has no Tier-2");
    assert_eq!(
        counters.ssd_reads, counters.t1_misses,
        "every BaM miss is one SSD read"
    );
}

#[test]
fn hmm_trace_reconciles_with_metrics() {
    let mut hmm = Hmm::new(HmmConfig::from(config()));
    let sink = hmm.enable_tracing(CAPACITY);
    let (counters, _) = run_reconciled(hmm, sink, |h| h.metrics());
    assert!(counters.t1_misses > 0);
    assert!(
        counters.t2_placements > 0,
        "UVM victims always enter the page cache"
    );
    assert_eq!(
        counters.discards, 0,
        "HMM never discards — the host is home"
    );
}

#[test]
fn gmt_total_ssd_io_never_exceeds_bams() {
    let exec = Executor::new(ExecutorConfig::default());
    let gmt = exec.run(Gmt::new(config()), workload().trace(SEED));
    let bam = exec.run(Bam::new(BamConfig::from(config())), workload().trace(SEED));
    let gmt_io = gmt.backend.metrics().ssd_ios();
    let bam_io = bam.backend.metrics().ssd_ios();
    assert!(
        gmt_io <= bam_io,
        "Tier-2 must absorb SSD traffic: GMT did {gmt_io} I/Os, BaM {bam_io}"
    );
}

#[test]
fn identical_workload_identical_access_counts() {
    // The three runtimes see the same stream: the access-level counters
    // must agree even though everything downstream differs.
    let exec = Executor::new(ExecutorConfig::default());
    let gmt = exec
        .run(Gmt::new(config()), workload().trace(SEED))
        .backend
        .metrics();
    let bam = exec
        .run(Bam::new(BamConfig::from(config())), workload().trace(SEED))
        .backend
        .metrics();
    let hmm = exec
        .run(Hmm::new(HmmConfig::from(config())), workload().trace(SEED))
        .backend
        .metrics();
    assert_eq!(gmt.accesses, bam.accesses);
    assert_eq!(gmt.accesses, hmm.accesses);
    assert_eq!(gmt.t1_hits + gmt.t1_misses, bam.t1_hits + bam.t1_misses);
    assert_eq!(gmt.t1_hits + gmt.t1_misses, hmm.t1_hits + hmm.t1_misses);
}
