//! Parameter sweeps: the reusable machinery behind Figs. 11-13.

use gmt_core::GmtConfig;
use gmt_mem::TierGeometry;
use gmt_workloads::Workload;

use crate::runner::{run_system_with, RunResult, SystemKind};

/// Runs `workload` on `system` at each Tier-2:Tier-1 capacity ratio
/// (the Fig. 12 sweep), deriving each geometry from the workload's
/// fixed extent.
///
/// # Examples
///
/// ```
/// use gmt_analysis::runner::SystemKind;
/// use gmt_analysis::sweep::capacity_ratio_sweep;
/// use gmt_core::PolicyKind;
/// use gmt_workloads::{srad::Srad, WorkloadScale};
///
/// let w = Srad::with_scale(&WorkloadScale::tiny());
/// let runs = capacity_ratio_sweep(&w, &[2.0, 4.0], 2.0, SystemKind::Gmt(PolicyKind::Reuse), 1);
/// assert_eq!(runs.len(), 2);
/// ```
pub fn capacity_ratio_sweep(
    workload: &dyn Workload,
    ratios: &[f64],
    os: f64,
    system: SystemKind,
    seed: u64,
) -> Vec<(f64, RunResult)> {
    ratios
        .iter()
        .map(|&ratio| {
            let geometry = TierGeometry::from_total(workload.total_pages(), ratio, os);
            (
                ratio,
                run_system_with(workload, system, &GmtConfig::new(geometry), seed),
            )
        })
        .collect()
}

/// Runs `workload` on `system` at each over-subscription factor (the
/// Fig. 11 axis), deriving each geometry from the workload's extent.
pub fn oversubscription_sweep(
    workload: &dyn Workload,
    os_values: &[f64],
    ratio: f64,
    system: SystemKind,
    seed: u64,
) -> Vec<(f64, RunResult)> {
    os_values
        .iter()
        .map(|&os| {
            let geometry = TierGeometry::from_total(workload.total_pages(), ratio, os);
            (
                os,
                run_system_with(workload, system, &GmtConfig::new(geometry), seed),
            )
        })
        .collect()
}

/// Runs `workload` on every system (BaM, HMM, the three GMT policies)
/// over one geometry — the column set of Figs. 8 and 14.
pub fn system_matrix(
    workload: &dyn Workload,
    geometry: &TierGeometry,
    seed: u64,
) -> Vec<RunResult> {
    use gmt_core::PolicyKind;
    [
        SystemKind::Bam,
        SystemKind::Hmm,
        SystemKind::Gmt(PolicyKind::TierOrder),
        SystemKind::Gmt(PolicyKind::Random),
        SystemKind::Gmt(PolicyKind::Reuse),
    ]
    .into_iter()
    .map(|system| run_system_with(workload, system, &GmtConfig::new(*geometry), seed))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::geo_mean;
    use gmt_core::PolicyKind;
    use gmt_workloads::srad::Srad;
    use gmt_workloads::WorkloadScale;

    #[test]
    fn ratio_sweep_grows_tier2_hits() {
        let w = Srad::with_scale(&WorkloadScale::pages(800));
        let runs =
            capacity_ratio_sweep(&w, &[1.0, 8.0], 2.0, SystemKind::Gmt(PolicyKind::Reuse), 1);
        assert!(runs[1].1.metrics.t2_hit_rate() >= runs[0].1.metrics.t2_hit_rate());
    }

    #[test]
    fn oversubscription_sweep_increases_pressure() {
        // A Zipf loop's miss count moves smoothly with Tier-1 capacity.
        let w =
            gmt_workloads::synthetic::ZipfLoop::new(&WorkloadScale::pages(800), 0.7, 0.0, 20_000);
        let runs = oversubscription_sweep(&w, &[1.5, 4.0], 4.0, SystemKind::Bam, 1);
        // Higher over-subscription = smaller Tier-1 = more misses.
        assert!(runs[1].1.metrics.t1_misses > runs[0].1.metrics.t1_misses);
    }

    #[test]
    fn system_matrix_covers_all_five() {
        let w = Srad::with_scale(&WorkloadScale::pages(800));
        let geometry = TierGeometry::from_total(w.total_pages(), 4.0, 2.0);
        let runs = system_matrix(&w, &geometry, 1);
        assert_eq!(runs.len(), 5);
        let speedups: Vec<f64> = runs[1..].iter().map(|r| r.speedup_over(&runs[0])).collect();
        assert!(geo_mean(speedups.iter().copied()) > 0.0);
        // HMM slowest, GMT-Reuse among the fastest.
        assert!(runs[1].elapsed > runs[0].elapsed, "HMM slower than BaM");
        assert!(runs[4].elapsed < runs[0].elapsed, "Reuse faster than BaM");
    }
}
