//! Instrumented characterization and experiment plumbing.
//!
//! This crate produces the paper's *measurement* artifacts — the numbers
//! that explain the performance results:
//!
//! * [`characterize`] — replays a workload against an instrumented Tier-1
//!   model and measures page-reuse percentage, total I/O, and the
//!   distribution of Remaining Reuse Distances at Tier-1 evictions
//!   (Table 2 and Fig. 7),
//! * [`vtd_rd_pairs`] / [`correlation`] — the VTD ↔ reuse-distance
//!   relation (Fig. 4a),
//! * [`eviction_rrd_series`] — per-page RRD sequences at successive
//!   evictions (Fig. 4b/4c),
//! * [`runner`] — one-call execution of any workload on any system (BaM,
//!   HMM, the three GMT policies) with paired speedup/I/O comparisons,
//!   plus the §3.6 "optimistic HMM" estimate,
//! * [`tracesum`] — summaries over captured decision traces: per-window
//!   counters and occupancy, SSD queue-depth percentiles, and exact
//!   reconciliation against [`gmt_core::TieringMetrics`],
//! * [`table`] — fixed-width text tables for the figure binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod characterize;
pub mod runner;
pub mod sweep;
pub mod table;
pub mod timeline;
pub mod tracesum;

pub use characterize::{
    characterize, correlation, eviction_rrd_series, vtd_rd_pairs, Characterization,
};
