//! Warm-up timelines: metrics snapshots over the course of one run.
//!
//! The paper argues (§2.1.3) that pipelining regression batches to the
//! CPU "results in better placement for the early part of the execution".
//! Seeing that requires intra-run resolution, which the one-shot runner
//! cannot provide; [`run_gmt_timeline`] replays a trace through the GMT
//! runtime with periodic metric snapshots.

use gmt_core::{Gmt, GmtConfig, TieringMetrics};
use gmt_gpu::{ExecutorConfig, MemoryBackend};
use gmt_sim::{Dur, Time};
use gmt_workloads::Workload;
use serde::{Deserialize, Serialize};

/// One snapshot along a run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TimelinePoint {
    /// Warp accesses completed when the snapshot was taken.
    pub accesses: u64,
    /// Simulated time elapsed at the snapshot.
    pub elapsed: Dur,
    /// Cumulative metrics at the snapshot.
    pub metrics: TieringMetrics,
}

impl TimelinePoint {
    /// The Tier-2 hit rate accumulated since the previous point.
    pub fn t2_hit_rate_since(&self, previous: &TimelinePoint) -> f64 {
        let hits = self.metrics.t2_hits - previous.metrics.t2_hits;
        let misses = self.metrics.t1_misses - previous.metrics.t1_misses;
        if misses == 0 {
            0.0
        } else {
            hits as f64 / misses as f64
        }
    }
}

/// Replays `workload` through a [`Gmt`] runtime, snapshotting cumulative
/// metrics `snapshots` times at even access intervals.
///
/// The replay loop matches [`gmt_gpu::Executor`]'s scheduling exactly, so
/// the final point agrees with a normal run.
///
/// # Examples
///
/// ```
/// use gmt_analysis::runner::geometry_for;
/// use gmt_analysis::timeline::run_gmt_timeline;
/// use gmt_core::GmtConfig;
/// use gmt_gpu::ExecutorConfig;
/// use gmt_workloads::{srad::Srad, WorkloadScale};
///
/// let w = Srad::with_scale(&WorkloadScale::tiny());
/// let config = GmtConfig::new(geometry_for(&w, 4.0, 2.0));
/// let points = run_gmt_timeline(&w, &config, &ExecutorConfig::default(), 1, 4);
/// assert_eq!(points.len(), 4);
/// assert!(points.windows(2).all(|p| p[0].accesses < p[1].accesses));
/// ```
///
/// # Panics
///
/// Panics if `snapshots` is zero or the trace is empty.
pub fn run_gmt_timeline(
    workload: &dyn Workload,
    config: &GmtConfig,
    executor: &ExecutorConfig,
    seed: u64,
    snapshots: usize,
) -> Vec<TimelinePoint> {
    assert!(snapshots > 0, "need at least one snapshot");
    let trace = workload.trace(seed);
    assert!(!trace.is_empty(), "cannot profile an empty trace");
    let interval = (trace.len() / snapshots).max(1);
    let mut gmt = Gmt::new(*config);
    let mut warps: std::collections::BinaryHeap<std::cmp::Reverse<Time>> = (0..executor.warp_slots)
        .map(|_| std::cmp::Reverse(Time::ZERO))
        .collect();
    let mut horizon = Time::ZERO;
    let mut points = Vec::with_capacity(snapshots + 1);
    for (i, access) in trace.iter().enumerate() {
        let std::cmp::Reverse(ready) = warps.pop().expect("warp heap never empty");
        let data_ready = gmt.access(ready, access);
        let next_issue = data_ready + executor.compute_per_access;
        horizon = horizon.max(next_issue);
        warps.push(std::cmp::Reverse(next_issue));
        let done = i + 1;
        if done % interval == 0 || done == trace.len() {
            points.push(TimelinePoint {
                accesses: done as u64,
                elapsed: horizon.since(Time::ZERO),
                metrics: gmt.metrics(),
            });
            if points.len() == snapshots && done != trace.len() {
                // Keep the final point aligned with the trace end.
                points.pop();
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::geometry_for;
    use gmt_workloads::srad::Srad;
    use gmt_workloads::WorkloadScale;

    fn srad_timeline(pipelined: bool, snapshots: usize) -> Vec<TimelinePoint> {
        let w = Srad::with_scale(&WorkloadScale::pages(1_000));
        let mut config = GmtConfig::new(geometry_for(&w, 4.0, 2.0));
        config.reuse.sampler.pipelined = pipelined;
        run_gmt_timeline(&w, &config, &ExecutorConfig::default(), 1, snapshots)
    }

    #[test]
    fn timeline_is_monotone() {
        let points = srad_timeline(true, 8);
        for pair in points.windows(2) {
            assert!(pair[0].accesses < pair[1].accesses);
            assert!(pair[0].elapsed <= pair[1].elapsed);
            assert!(pair[0].metrics.t1_misses <= pair[1].metrics.t1_misses);
        }
    }

    #[test]
    fn final_point_matches_one_shot_run() {
        let w = Srad::with_scale(&WorkloadScale::pages(1_000));
        let config = GmtConfig::new(geometry_for(&w, 4.0, 2.0));
        let points = run_gmt_timeline(&w, &config, &ExecutorConfig::default(), 1, 4);
        let one_shot = crate::runner::run_system_with(
            &w,
            crate::runner::SystemKind::Gmt(gmt_core::PolicyKind::Reuse),
            &config,
            1,
        );
        let last = points.last().unwrap();
        assert_eq!(last.metrics, one_shot.metrics);
        assert_eq!(last.elapsed, one_shot.elapsed);
    }

    #[test]
    fn pipelining_does_not_hurt_early_hit_rate() {
        // The §2.1.3 claim, weak form: over the first half of the run the
        // pipelined sampler's Tier-2 hit rate is at least the withheld
        // sampler's.
        let piped = srad_timeline(true, 8);
        let held = srad_timeline(false, 8);
        let early = |points: &[TimelinePoint]| points[points.len() / 2 - 1].metrics.t2_hit_rate();
        assert!(
            early(&piped) + 1e-9 >= early(&held),
            "pipelined early hit rate {} < withheld {}",
            early(&piped),
            early(&held)
        );
    }
}
