//! Trace-derived summaries: decision counters, per-window timelines,
//! and queue-depth distributions.
//!
//! The runtimes' [`TraceSink`](gmt_sim::trace::TraceSink) records every
//! tiering decision as a typed event; this module turns a captured record
//! stream back into numbers:
//!
//! * [`counters_from_trace`] — aggregate decision counters, with
//!   [`TraceCounters::reconcile`] checking them *exactly* against the
//!   runtime's own [`TieringMetrics`] (the differential tests' anchor),
//! * [`summarize_windows`] — fixed-width time windows carrying counters,
//!   Tier-1/Tier-2 occupancy, PCIe traffic and peak SSD queue depth, for
//!   warm-up timelines and figure binaries,
//! * [`queue_depth_percentiles`] — the distribution of instantaneous SSD
//!   queue depth over the run,
//! * [`ring_depth_percentiles`] — the same distribution for the NVMe
//!   submission/completion rings ([`TraceEvent::RingSubmit`] /
//!   [`TraceEvent::RingComplete`]), whose occupancy exceeds any single
//!   device queue once commands fan out across channels.
//!
//! All summaries assume the capturing ring was large enough that nothing
//! was dropped ([`TraceSink::dropped`](gmt_sim::trace::TraceSink::dropped)
//! `== 0`); a truncated stream under-counts whatever scrolled off.

use gmt_core::{Gmt, GmtConfig, TieringMetrics};
use gmt_gpu::{Executor, ExecutorConfig};
use gmt_sim::trace::{TierTag, TraceEvent, TraceRecord};
use gmt_sim::Dur;
use gmt_workloads::Workload;

/// Decision counters recovered from a trace stream.
///
/// Field names mirror the derivable subset of [`TieringMetrics`]. The
/// event → counter mapping is uniform across the GMT, BaM and HMM
/// runtimes; each runtime emits exactly the events whose counters it
/// increments (e.g. GMT's prefetcher reads the SSD without counting in
/// `ssd_reads`, so it emits `prefetch` without a `t1_fill`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCounters {
    /// `t1_hit` events.
    pub t1_hits: u64,
    /// `t1_miss` events.
    pub t1_misses: u64,
    /// `t2_hit` events.
    pub t2_hits: u64,
    /// `wasteful_lookup` events.
    pub wasteful_lookups: u64,
    /// `t1_fill` events sourced from Tier-3.
    pub ssd_reads: u64,
    /// `ssd_writeback` events.
    pub ssd_writes: u64,
    /// `evict` events.
    pub t1_evictions: u64,
    /// `t2_place` events.
    pub t2_placements: u64,
    /// `evict_discard` events.
    pub discards: u64,
    /// Dirty `t2_spill` events.
    pub t2_writebacks: u64,
    /// Clean `t2_spill` events.
    pub t2_drops: u64,
    /// `prefetch` events.
    pub prefetches: u64,
    /// `prediction` events.
    pub predictions: u64,
    /// ... of which were graded correct.
    pub predictions_correct: u64,
    /// `warp_access` events that were loads.
    pub warp_reads: u64,
    /// `warp_access` events that were stores.
    pub warp_writes: u64,
    /// `ring_submit` events (NVMe submission-ring pushes).
    pub ring_submits: u64,
    /// `ring_complete` events (NVMe completion-ring reaps).
    pub ring_completes: u64,
}

impl TraceCounters {
    fn add(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::Tier1Hit { .. } => self.t1_hits += 1,
            TraceEvent::Tier1Miss { .. } => self.t1_misses += 1,
            TraceEvent::Tier2Hit { .. } => self.t2_hits += 1,
            TraceEvent::WastefulLookup { .. } => self.wasteful_lookups += 1,
            TraceEvent::Tier1Fill {
                source: TierTag::Ssd,
                ..
            } => self.ssd_reads += 1,
            TraceEvent::SsdWriteBack { .. } => self.ssd_writes += 1,
            TraceEvent::Eviction { .. } => self.t1_evictions += 1,
            TraceEvent::Tier2Place { .. } => self.t2_placements += 1,
            TraceEvent::EvictDiscard { .. } => self.discards += 1,
            TraceEvent::Tier2Spill { dirty: true, .. } => self.t2_writebacks += 1,
            TraceEvent::Tier2Spill { dirty: false, .. } => self.t2_drops += 1,
            TraceEvent::Prefetch { .. } => self.prefetches += 1,
            TraceEvent::PredictionGraded { correct, .. } => {
                self.predictions += 1;
                self.predictions_correct += u64::from(*correct);
            }
            TraceEvent::WarpAccess { write: false, .. } => self.warp_reads += 1,
            TraceEvent::WarpAccess { write: true, .. } => self.warp_writes += 1,
            TraceEvent::RingSubmit { .. } => self.ring_submits += 1,
            TraceEvent::RingComplete { .. } => self.ring_completes += 1,
            _ => {}
        }
    }

    /// Checks every derivable counter against the runtime's own metrics,
    /// returning the first mismatch as `field: trace=<n> metrics=<m>`.
    ///
    /// Exact equality is the contract: the trace is a faithful journal of
    /// the decisions the counters summarize, so any drift is a bug in one
    /// of the two bookkeepers.
    ///
    /// # Errors
    ///
    /// Returns a description of the first differing counter.
    pub fn reconcile(&self, metrics: &TieringMetrics) -> Result<(), String> {
        let pairs = [
            ("t1_hits", self.t1_hits, metrics.t1_hits),
            ("t1_misses", self.t1_misses, metrics.t1_misses),
            ("t2_hits", self.t2_hits, metrics.t2_hits),
            (
                "wasteful_lookups",
                self.wasteful_lookups,
                metrics.wasteful_lookups,
            ),
            ("ssd_reads", self.ssd_reads, metrics.ssd_reads),
            ("ssd_writes", self.ssd_writes, metrics.ssd_writes),
            ("t1_evictions", self.t1_evictions, metrics.t1_evictions),
            ("t2_placements", self.t2_placements, metrics.t2_placements),
            ("discards", self.discards, metrics.discards),
            ("t2_writebacks", self.t2_writebacks, metrics.t2_writebacks),
            ("t2_drops", self.t2_drops, metrics.t2_drops),
            ("prefetches", self.prefetches, metrics.prefetches),
            ("predictions", self.predictions, metrics.predictions),
            (
                "predictions_correct",
                self.predictions_correct,
                metrics.predictions_correct,
            ),
        ];
        for (name, trace, counter) in pairs {
            if trace != counter {
                return Err(format!("{name}: trace={trace} metrics={counter}"));
            }
        }
        Ok(())
    }

    /// Fraction of graded predictions that were correct, if any.
    pub fn prediction_accuracy(&self) -> Option<f64> {
        (self.predictions > 0).then(|| self.predictions_correct as f64 / self.predictions as f64)
    }

    /// Tier-2 hit rate over Tier-1 misses, if any missed.
    pub fn t2_hit_rate(&self) -> Option<f64> {
        (self.t1_misses > 0).then(|| self.t2_hits as f64 / self.t1_misses as f64)
    }
}

/// One fully-traced GMT run: the captured stream plus the runtime's own
/// bookkeeping, for cross-checking and window summaries.
#[derive(Debug)]
pub struct TracedRun {
    /// Every record the ring retained, oldest first.
    pub records: Vec<TraceRecord>,
    /// The runtime's counters at the end of the run.
    pub metrics: TieringMetrics,
    /// Total simulated execution time.
    pub elapsed: Dur,
    /// Records lost to ring overflow (0 means `records` is complete).
    pub dropped: u64,
}

/// Replays `workload` through a traced [`Gmt`] runtime on the default
/// executor, capturing up to `capacity` records.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn run_gmt_traced(
    workload: &dyn Workload,
    config: &GmtConfig,
    seed: u64,
    capacity: usize,
) -> TracedRun {
    let mut gmt = Gmt::new(*config);
    let sink = gmt.enable_tracing(capacity);
    let out = Executor::new(ExecutorConfig::default()).run(gmt, workload.trace(seed));
    TracedRun {
        records: sink.snapshot(),
        metrics: out.backend.metrics(),
        elapsed: out.elapsed,
        dropped: sink.dropped(),
    }
}

/// Aggregates the whole stream into one [`TraceCounters`].
pub fn counters_from_trace(records: &[TraceRecord]) -> TraceCounters {
    let mut counters = TraceCounters::default();
    for r in records {
        counters.add(&r.event);
    }
    counters
}

/// One fixed-width window of a summarized trace.
#[derive(Debug, Clone, Default)]
pub struct TraceWindow {
    /// Window start (inclusive), ns since the run began.
    pub start_ns: u64,
    /// Window end (exclusive), ns.
    pub end_ns: u64,
    /// Decision counters for events inside the window.
    pub counters: TraceCounters,
    /// Pages resident in Tier-1 at the window's end (net fills plus
    /// prefetches minus evictions since the run began).
    pub t1_occupancy: u64,
    /// Pages resident in Tier-2 at the window's end (net placements
    /// minus spills and promotions).
    pub t2_occupancy: u64,
    /// Largest instantaneous SSD queue depth observed in the window.
    pub max_queue_depth: u32,
    /// Bytes that crossed PCIe toward the GPU inside the window.
    pub pcie_bytes_to_gpu: u64,
    /// Bytes that crossed PCIe toward the host inside the window.
    pub pcie_bytes_to_host: u64,
}

/// Tracks which pages the trace says are resident in each memory tier.
///
/// Installs and removals are applied per *page*, not per event, so the
/// double-removal corner (a Tier-2 page spilled by an eviction and then
/// hit by the very access that triggered it) cannot drive the population
/// negative. HMM's chunked migration, which emits `prefetch` and
/// `t1_fill` back to back for one install, is likewise counted once.
#[derive(Debug, Clone, Default)]
pub struct OccupancyTracker {
    tier1: std::collections::BTreeSet<u64>,
    tier2: std::collections::BTreeSet<u64>,
}

impl OccupancyTracker {
    /// Applies one event's tier movement.
    pub fn apply(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::Tier1Fill { page, .. } | TraceEvent::Prefetch { page } => {
                self.tier1.insert(*page);
            }
            TraceEvent::Eviction { page, .. } => {
                self.tier1.remove(page);
            }
            TraceEvent::Tier2Place { page, .. } => {
                self.tier2.insert(*page);
            }
            TraceEvent::Tier2Spill { page, .. } | TraceEvent::Tier2Hit { page } => {
                self.tier2.remove(page);
            }
            _ => {}
        }
    }

    /// Pages currently resident in Tier-1.
    pub fn tier1_pages(&self) -> usize {
        self.tier1.len()
    }

    /// Pages currently resident in Tier-2.
    pub fn tier2_pages(&self) -> usize {
        self.tier2.len()
    }
}

/// Splits `records` into windows of `width` and summarizes each.
///
/// Windows are aligned to the run's origin (`[k·width, (k+1)·width)`) and
/// the sequence is dense: quiet windows appear with zero counters so the
/// timeline has even spacing. Occupancy is cumulative — a window reports
/// the net population at its end ([`OccupancyTracker`] semantics), not
/// the delta within it.
///
/// Returns an empty vector for an empty stream.
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn summarize_windows(records: &[TraceRecord], width: Dur) -> Vec<TraceWindow> {
    assert!(width > Dur::ZERO, "window width must be positive");
    let Some(last) = records.last() else {
        return Vec::new();
    };
    let width_ns = width.as_nanos();
    let windows = last.at.as_nanos() / width_ns + 1;
    let mut out: Vec<TraceWindow> = (0..windows)
        .map(|k| TraceWindow {
            start_ns: k * width_ns,
            end_ns: (k + 1) * width_ns,
            ..TraceWindow::default()
        })
        .collect();
    let mut occupancy = OccupancyTracker::default();
    for r in records {
        let w = &mut out[(r.at.as_nanos() / width_ns) as usize];
        w.counters.add(&r.event);
        occupancy.apply(&r.event);
        match &r.event {
            TraceEvent::SsdSubmit { queue_depth, .. }
            | TraceEvent::SsdComplete { queue_depth, .. } => {
                w.max_queue_depth = w.max_queue_depth.max(*queue_depth);
            }
            TraceEvent::PcieBatch {
                direction, bytes, ..
            } => match direction {
                gmt_sim::trace::LinkDir::ToGpu => w.pcie_bytes_to_gpu += bytes,
                gmt_sim::trace::LinkDir::ToHost => w.pcie_bytes_to_host += bytes,
            },
            _ => {}
        }
        w.t1_occupancy = occupancy.tier1_pages() as u64;
        w.t2_occupancy = occupancy.tier2_pages() as u64;
    }
    // Quiet windows inherit the occupancy standing at their start.
    for k in 1..out.len() {
        if out[k].counters == TraceCounters::default() {
            out[k].t1_occupancy = out[k - 1].t1_occupancy;
            out[k].t2_occupancy = out[k - 1].t2_occupancy;
        }
    }
    out
}

/// Percentiles (nearest-rank) of instantaneous SSD queue depth, sampled
/// at every `ssd_submit`/`ssd_complete` event.
///
/// `percentiles` are in `[0, 100]`. Returns an empty vector when the
/// stream holds no device events.
///
/// # Panics
///
/// Panics if a requested percentile is outside `[0, 100]`.
pub fn queue_depth_percentiles(records: &[TraceRecord], percentiles: &[f64]) -> Vec<u32> {
    let mut samples: Vec<u32> = records
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::SsdSubmit { queue_depth, .. }
            | TraceEvent::SsdComplete { queue_depth, .. } => Some(queue_depth),
            _ => None,
        })
        .collect();
    if samples.is_empty() {
        return Vec::new();
    }
    samples.sort_unstable();
    nearest_rank(&samples, percentiles)
}

/// Nearest-rank percentiles of NVMe *ring* occupancy over the run.
///
/// Samples every [`TraceEvent::RingSubmit`]/[`TraceEvent::RingComplete`]
/// occupancy, the submission/completion-ring analogue of
/// [`queue_depth_percentiles`]'s device view: the ring runs deeper than
/// any single device queue whenever commands fan out across channels.
/// Returns an empty vector when the stream holds no ring events.
///
/// # Panics
///
/// Panics if any requested percentile lies outside `[0, 100]`.
pub fn ring_depth_percentiles(records: &[TraceRecord], percentiles: &[f64]) -> Vec<u32> {
    let mut samples: Vec<u32> = records
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::RingSubmit { queue_depth, .. }
            | TraceEvent::RingComplete { queue_depth, .. } => Some(queue_depth),
            _ => None,
        })
        .collect();
    if samples.is_empty() {
        return Vec::new();
    }
    samples.sort_unstable();
    nearest_rank(&samples, percentiles)
}

fn nearest_rank(samples: &[u32], percentiles: &[f64]) -> Vec<u32> {
    percentiles
        .iter()
        .map(|&p| {
            assert!(
                (0.0..=100.0).contains(&p),
                "percentile {p} outside [0, 100]"
            );
            let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
            samples[rank.saturating_sub(1).min(samples.len() - 1)]
        })
        .collect()
}

/// Per-tenant view of a multi-tenant trace stream.
///
/// Built by [`tenant_summaries`] from records stamped with a tenant id
/// (the serving runtime's `TraceSink::set_tenant`). Untagged records —
/// single-tenant runs, or device events emitted outside any tenant's
/// access — are not attributed to anyone.
#[derive(Debug, Clone)]
pub struct TenantTraceSummary {
    /// The tenant the records were stamped with.
    pub tenant: u32,
    /// Decision counters over this tenant's records.
    pub counters: TraceCounters,
    /// Service latency of every Tier-1 fill this tenant triggered
    /// (`ready_ns` minus the miss's wall time), sorted ascending.
    pub miss_service_ns: Vec<u64>,
}

impl TenantTraceSummary {
    /// Tier-1 hit rate over this tenant's page touches.
    pub fn t1_hit_rate(&self) -> f64 {
        let touches = self.counters.t1_hits + self.counters.t1_misses;
        if touches == 0 {
            0.0
        } else {
            self.counters.t1_hits as f64 / touches as f64
        }
    }

    /// Nearest-rank percentile of this tenant's miss-service latency,
    /// or `None` if every access hit.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn miss_service_percentile(&self, p: f64) -> Option<u64> {
        assert!(
            (0.0..=100.0).contains(&p),
            "percentile {p} outside [0, 100]"
        );
        if self.miss_service_ns.is_empty() {
            return None;
        }
        let n = self.miss_service_ns.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        Some(self.miss_service_ns[rank.saturating_sub(1).min(n - 1)])
    }
}

/// Splits a tenant-stamped stream into one summary per tenant, ordered
/// by tenant id. Records without a tenant stamp are skipped.
///
/// Miss-service latency is taken from [`TraceEvent::Tier1Fill`]: the
/// fill's `ready_ns` minus the record's wall time is exactly how long
/// the faulting warp waited for its page.
pub fn tenant_summaries(records: &[TraceRecord]) -> Vec<TenantTraceSummary> {
    let mut builder = TenantSummaryBuilder::new();
    for r in records {
        builder.observe(r);
    }
    builder.finish()
}

/// Incremental form of [`tenant_summaries`]: feed records one at a time
/// (e.g. straight out of a trace ring via `TraceSink::visit`) without
/// ever materializing the whole trace as a contiguous slice.
#[derive(Debug, Default)]
pub struct TenantSummaryBuilder {
    // Tenant ids are dense small integers assigned by the registry, so a
    // flat table (grown on demand, `None` = never seen) replaces a map
    // lookup per record with an indexed load.
    by_tenant: Vec<Option<TenantTraceSummary>>,
}

impl TenantSummaryBuilder {
    /// An empty builder.
    pub fn new() -> TenantSummaryBuilder {
        TenantSummaryBuilder::default()
    }

    /// Folds one record in. Records without a tenant stamp are skipped.
    pub fn observe(&mut self, r: &TraceRecord) {
        let Some(tenant) = r.tenant else {
            return;
        };
        let i = tenant as usize;
        if i >= self.by_tenant.len() {
            self.by_tenant.resize_with(i + 1, || None);
        }
        let summary = self.by_tenant[i].get_or_insert_with(|| TenantTraceSummary {
            tenant,
            counters: TraceCounters::default(),
            miss_service_ns: Vec::new(),
        });
        summary.counters.add(&r.event);
        if let TraceEvent::Tier1Fill { ready_ns, .. } = r.event {
            summary
                .miss_service_ns
                .push(ready_ns.saturating_sub(r.at.as_nanos()));
        }
    }

    /// Sorts the latency samples and returns the summaries ordered by
    /// tenant id.
    pub fn finish(self) -> Vec<TenantTraceSummary> {
        let mut out: Vec<TenantTraceSummary> = self.by_tenant.into_iter().flatten().collect();
        for s in &mut out {
            s.miss_service_ns.sort_unstable();
        }
        out
    }
}

/// Jain's fairness index `(Σx)² / (n · Σx²)` over per-tenant allocations.
///
/// 1.0 means every tenant receives the same share; `1/n` means one
/// tenant receives everything. Conventionally 1.0 when every allocation
/// is zero (nobody is favoured) and 0.0 for an empty slice.
///
/// # Examples
///
/// ```
/// use gmt_analysis::tracesum::jain_fairness;
/// assert_eq!(jain_fairness(&[1.0, 1.0, 1.0]), 1.0);
/// assert_eq!(jain_fairness(&[1.0, 0.0]), 0.5);
/// assert_eq!(jain_fairness(&[]), 0.0);
/// ```
pub fn jain_fairness(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * sum_sq)
}

/// Prediction accuracy per window: `(window start ns, graded, accuracy)`
/// for every window that graded at least one prediction.
///
/// The figure binaries plot this as accuracy-over-time (the intra-run
/// view behind Fig. 9's end-of-run number).
pub fn prediction_accuracy_over_time(records: &[TraceRecord], width: Dur) -> Vec<(u64, u64, f64)> {
    summarize_windows(records, width)
        .into_iter()
        .filter_map(|w| {
            w.counters
                .prediction_accuracy()
                .map(|acc| (w.start_ns, w.counters.predictions, acc))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmt_core::{Gmt, GmtConfig};
    use gmt_gpu::{Executor, ExecutorConfig};
    use gmt_mem::{PageId, TierGeometry, WarpAccess};
    use gmt_sim::Time;

    fn rec(t: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            at: Time::from_nanos(t),
            vt: 0,
            tenant: None,
            event,
        }
    }

    fn traced_gmt_run(pages: u64) -> (Vec<TraceRecord>, TieringMetrics) {
        let mut gmt = Gmt::new(GmtConfig::new(TierGeometry::from_tier1(16, 4.0, 2.0)));
        let sink = gmt.enable_tracing(1 << 20);
        let trace = (0..pages).map(|p| WarpAccess::read(PageId(p % 40)));
        let out = Executor::new(ExecutorConfig::default()).run(gmt, trace);
        assert_eq!(sink.dropped(), 0, "ring must hold the whole run");
        (sink.snapshot(), out.backend.metrics())
    }

    #[test]
    fn counters_reconcile_with_gmt_metrics() {
        let (records, metrics) = traced_gmt_run(400);
        let counters = counters_from_trace(&records);
        counters
            .reconcile(&metrics)
            .expect("trace and metrics must agree");
        assert!(counters.t1_misses > 0);
    }

    #[test]
    fn reconcile_reports_the_differing_field() {
        let counters = counters_from_trace(&[rec(1, TraceEvent::Tier1Hit { page: 0 })]);
        let err = counters.reconcile(&TieringMetrics::default()).unwrap_err();
        assert!(err.contains("t1_hits"), "{err}");
    }

    #[test]
    fn windows_are_dense_and_sum_to_the_total() {
        let (records, _) = traced_gmt_run(400);
        let windows = summarize_windows(&records, Dur::from_micros(50));
        assert!(!windows.is_empty());
        for pair in windows.windows(2) {
            assert_eq!(
                pair[0].end_ns, pair[1].start_ns,
                "windows must tile the run"
            );
        }
        let total = counters_from_trace(&records);
        let mut summed = TraceCounters::default();
        for w in &windows {
            summed.t1_hits += w.counters.t1_hits;
            summed.t1_misses += w.counters.t1_misses;
            summed.ssd_reads += w.counters.ssd_reads;
        }
        assert_eq!(summed.t1_hits, total.t1_hits);
        assert_eq!(summed.t1_misses, total.t1_misses);
        assert_eq!(summed.ssd_reads, total.ssd_reads);
    }

    #[test]
    fn occupancy_respects_tier1_capacity() {
        let (records, _) = traced_gmt_run(400);
        let windows = summarize_windows(&records, Dur::from_micros(20));
        let peak = windows.iter().map(|w| w.t1_occupancy).max().unwrap();
        assert!(peak > 0);
        assert!(peak <= 16, "occupancy {peak} exceeds the 16-page Tier-1");
    }

    #[test]
    fn quiet_windows_carry_occupancy_forward() {
        let records = vec![
            rec(
                10,
                TraceEvent::Tier1Fill {
                    page: 1,
                    source: TierTag::Ssd,
                    ready_ns: 10,
                },
            ),
            rec(5_000, TraceEvent::Tier1Hit { page: 1 }),
        ];
        let windows = summarize_windows(&records, Dur::from_micros(1));
        assert_eq!(windows.len(), 6);
        for w in &windows {
            assert_eq!(w.t1_occupancy, 1, "window at {} lost occupancy", w.start_ns);
        }
    }

    #[test]
    fn hmm_prefetch_fill_pair_installs_once() {
        let records = vec![
            rec(1, TraceEvent::Prefetch { page: 9 }),
            rec(
                1,
                TraceEvent::Tier1Fill {
                    page: 9,
                    source: TierTag::Ssd,
                    ready_ns: 2,
                },
            ),
        ];
        let windows = summarize_windows(&records, Dur::from_micros(1));
        assert_eq!(windows.last().unwrap().t1_occupancy, 1);
    }

    #[test]
    fn depth_percentiles_are_order_statistics() {
        let records: Vec<TraceRecord> = (1..=100u32)
            .map(|d| {
                rec(
                    d as u64,
                    TraceEvent::SsdSubmit {
                        device: 0,
                        write: false,
                        bytes: 4096,
                        queue_depth: d,
                    },
                )
            })
            .collect();
        let p = queue_depth_percentiles(&records, &[50.0, 99.0, 100.0]);
        assert_eq!(p, vec![50, 99, 100]);
        assert!(queue_depth_percentiles(&[], &[50.0]).is_empty());
    }

    #[test]
    fn ring_and_warp_events_are_counted_not_swallowed() {
        let records = vec![
            rec(
                1,
                TraceEvent::WarpAccess {
                    page: 3,
                    write: false,
                },
            ),
            rec(
                2,
                TraceEvent::WarpAccess {
                    page: 4,
                    write: true,
                },
            ),
            rec(
                3,
                TraceEvent::RingSubmit {
                    cid: 1,
                    write: false,
                    queue_depth: 4,
                },
            ),
            rec(
                4,
                TraceEvent::RingComplete {
                    cid: 1,
                    queue_depth: 3,
                },
            ),
        ];
        let c = counters_from_trace(&records);
        assert_eq!(c.warp_reads, 1);
        assert_eq!(c.warp_writes, 1);
        assert_eq!(c.ring_submits, 1);
        assert_eq!(c.ring_completes, 1);
        let p = ring_depth_percentiles(&records, &[50.0, 100.0]);
        assert_eq!(p, vec![3, 4]);
        assert!(ring_depth_percentiles(&[], &[50.0]).is_empty());
    }

    fn tenant_rec(t: u64, tenant: u32, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            at: Time::from_nanos(t),
            vt: 0,
            tenant: Some(tenant),
            event,
        }
    }

    #[test]
    fn tenant_summaries_split_by_stamp_and_skip_untagged() {
        let records = vec![
            tenant_rec(1, 0, TraceEvent::Tier1Hit { page: 0 }),
            tenant_rec(
                2,
                1,
                TraceEvent::Tier1Miss {
                    page: 7,
                    resident: TierTag::Ssd,
                },
            ),
            tenant_rec(
                2,
                1,
                TraceEvent::Tier1Fill {
                    page: 7,
                    source: TierTag::Ssd,
                    ready_ns: 1_502,
                },
            ),
            tenant_rec(9, 0, TraceEvent::Tier1Hit { page: 1 }),
            rec(10, TraceEvent::Tier1Hit { page: 2 }),
        ];
        let summaries = tenant_summaries(&records);
        assert_eq!(summaries.len(), 2, "untagged record must not be a tenant");
        assert_eq!(summaries[0].tenant, 0);
        assert_eq!(summaries[0].counters.t1_hits, 2);
        assert_eq!(summaries[0].t1_hit_rate(), 1.0);
        assert_eq!(summaries[0].miss_service_percentile(99.0), None);
        assert_eq!(summaries[1].tenant, 1);
        assert_eq!(summaries[1].counters.t1_misses, 1);
        assert_eq!(summaries[1].miss_service_ns, vec![1_500]);
        assert_eq!(summaries[1].miss_service_percentile(50.0), Some(1_500));
    }

    #[test]
    fn tenant_counters_sum_to_the_global_aggregate() {
        let records = vec![
            tenant_rec(1, 0, TraceEvent::Tier1Hit { page: 0 }),
            tenant_rec(
                2,
                1,
                TraceEvent::Tier1Miss {
                    page: 7,
                    resident: TierTag::Ssd,
                },
            ),
            tenant_rec(3, 2, TraceEvent::Tier1Hit { page: 3 }),
            tenant_rec(4, 1, TraceEvent::Tier1Hit { page: 7 }),
        ];
        let total = counters_from_trace(&records);
        let summaries = tenant_summaries(&records);
        let (hits, misses) = summaries.iter().fold((0, 0), |(h, m), s| {
            (h + s.counters.t1_hits, m + s.counters.t1_misses)
        });
        assert_eq!(hits, total.t1_hits);
        assert_eq!(misses, total.t1_misses);
    }

    #[test]
    fn jain_fairness_brackets() {
        assert_eq!(jain_fairness(&[5.0, 5.0, 5.0, 5.0]), 1.0);
        let skewed = jain_fairness(&[10.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12, "one-taker index is 1/n");
        assert_eq!(
            jain_fairness(&[0.0, 0.0]),
            1.0,
            "all-zero is trivially fair"
        );
        let mid = jain_fairness(&[4.0, 2.0]);
        assert!(mid > 0.25 && mid < 1.0);
    }

    #[test]
    fn accuracy_over_time_skips_quiet_windows() {
        let records = vec![
            rec(
                100,
                TraceEvent::PredictionGraded {
                    page: 1,
                    predicted: TierTag::Host,
                    actual: TierTag::Host,
                    correct: true,
                },
            ),
            rec(5_000, TraceEvent::Tier1Hit { page: 1 }),
        ];
        let series = prediction_accuracy_over_time(&records, Dur::from_micros(1));
        assert_eq!(series, vec![(0, 1, 1.0)]);
    }
}
