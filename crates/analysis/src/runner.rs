//! One-call execution of any workload on any system, with the paired
//! comparisons every figure reports.

use gmt_baselines::{Bam, BamConfig, Hmm, HmmConfig};
use gmt_core::{Gmt, GmtConfig, PolicyKind, TieringMetrics};
use gmt_gpu::{Executor, ExecutorConfig};
use gmt_mem::TierGeometry;
use gmt_sim::Dur;
use gmt_ssd::SsdStats;
use gmt_workloads::Workload;
use serde::{Deserialize, Serialize};

/// The systems the evaluation compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// BaM (Qureshi et al.): GPU-orchestrated, 2 tiers.
    Bam,
    /// Linux HMM: CPU-orchestrated, 3 tiers.
    Hmm,
    /// GMT with the given placement policy.
    Gmt(PolicyKind),
}

impl SystemKind {
    /// The display name used in figures.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Bam => "BaM",
            SystemKind::Hmm => "HMM",
            SystemKind::Gmt(p) => p.name(),
        }
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One workload × system execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// The workload's name.
    pub workload: String,
    /// The system that ran it.
    pub system: SystemKind,
    /// Simulated execution time.
    pub elapsed: Dur,
    /// Runtime counters.
    pub metrics: TieringMetrics,
    /// SSD device statistics.
    pub ssd: SsdStats,
}

impl RunResult {
    /// Speedup of this run relative to `baseline` (>1 means faster).
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        baseline.elapsed.as_secs_f64() / self.elapsed.as_secs_f64()
    }

    /// This run's SSD I/O operations relative to `baseline`'s.
    pub fn io_ratio_vs(&self, baseline: &RunResult) -> f64 {
        let base = baseline.metrics.ssd_ios().max(1);
        self.metrics.ssd_ios() as f64 / base as f64
    }
}

/// Runs `workload` on `system` over `geometry` and returns the result.
///
/// All systems replay the identical trace (same seed) through the
/// identical executor so results are directly comparable.
///
/// # Examples
///
/// ```
/// use gmt_analysis::runner::{run_system, SystemKind};
/// use gmt_core::PolicyKind;
/// use gmt_mem::TierGeometry;
/// use gmt_workloads::{srad::Srad, Workload, WorkloadScale};
///
/// let w = Srad::with_scale(&WorkloadScale::tiny());
/// let g = TierGeometry::from_total(w.total_pages(), 4.0, 2.0);
/// let bam = run_system(&w, SystemKind::Bam, &g, 1);
/// let gmt = run_system(&w, SystemKind::Gmt(PolicyKind::Reuse), &g, 1);
/// assert!(gmt.speedup_over(&bam) > 0.0);
/// ```
pub fn run_system(
    workload: &dyn Workload,
    system: SystemKind,
    geometry: &TierGeometry,
    seed: u64,
) -> RunResult {
    run_system_with(workload, system, &GmtConfig::new(*geometry), seed)
}

/// Like [`run_system`], but with full control of the GMT configuration
/// (transfer method, bypass threshold, sampler, …). BaM/HMM extract their
/// shared device parameters from the same configuration.
pub fn run_system_with(
    workload: &dyn Workload,
    system: SystemKind,
    config: &GmtConfig,
    seed: u64,
) -> RunResult {
    let trace = workload.trace(seed);
    let executor = Executor::new(ExecutorConfig::default());
    let (elapsed, metrics, ssd) = match system {
        SystemKind::Bam => {
            let out = executor.run(Bam::new(BamConfig::from(*config)), trace);
            (out.elapsed, out.backend.metrics(), out.backend.ssd_stats())
        }
        SystemKind::Hmm => {
            let out = executor.run(Hmm::new(HmmConfig::from(*config)), trace);
            (out.elapsed, out.backend.metrics(), out.backend.ssd_stats())
        }
        SystemKind::Gmt(policy) => {
            let out = executor.run(Gmt::new(config.with_policy(policy)), trace);
            (out.elapsed, out.backend.metrics(), out.backend.ssd_stats())
        }
    };
    RunResult {
        workload: workload.name().to_string(),
        system,
        elapsed,
        metrics,
        ssd,
    }
}

/// Derives the geometry for a workload the way the paper does: non-graph
/// workloads are generated *to fill* a geometry, so any consistent pair
/// works; graph workloads are fixed-size, so the geometry is derived from
/// the graph (§3.5). This helper always derives from the workload's
/// actual extent, which covers both cases.
pub fn geometry_for(workload: &dyn Workload, ratio: f64, os: f64) -> TierGeometry {
    TierGeometry::from_total(workload.total_pages(), ratio, os)
}

/// The §3.6 "optimistic HMM" estimate: HMM's execution time if its hit
/// rates were as good as GMT-Reuse's, with I/O time lowered accordingly.
///
/// Every SSD read HMM would have avoided at GMT-Reuse's Tier-2 hit rate
/// is credited back at the SSD/host service-time difference. This is
/// generous to HMM (the paper notes much of that I/O may already overlap
/// compute).
pub fn optimistic_hmm_elapsed(
    hmm: &RunResult,
    gmt_reuse: &RunResult,
    ssd_read: Dur,
    host_read: Dur,
) -> Dur {
    let hmm_misses = hmm.metrics.t1_misses.max(1);
    let reuse_t2_rate = gmt_reuse.metrics.t2_hit_rate();
    let target_ssd_reads = ((1.0 - reuse_t2_rate) * hmm_misses as f64) as u64;
    let avoided = hmm.metrics.ssd_reads.saturating_sub(target_ssd_reads);
    let per_read_saving = ssd_read.saturating_sub(host_read);
    hmm.elapsed.saturating_sub(per_read_saving * avoided)
}

/// Geometric mean of an iterator of positive ratios (how the paper
/// averages per-app speedups).
pub fn geo_mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0f64;
    let mut n = 0u32;
    for v in values {
        assert!(v > 0.0, "geo_mean needs positive values");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    (log_sum / n as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmt_workloads::srad::Srad;
    use gmt_workloads::WorkloadScale;

    fn srad_runs() -> (RunResult, RunResult) {
        let w = Srad::with_scale(&WorkloadScale::pages(600));
        let g = geometry_for(&w, 4.0, 2.0);
        let bam = run_system(&w, SystemKind::Bam, &g, 1);
        let gmt = run_system(&w, SystemKind::Gmt(PolicyKind::Reuse), &g, 1);
        (bam, gmt)
    }

    #[test]
    fn gmt_reuse_beats_bam_on_srad() {
        // Srad is the paper's poster child for Tier-2 (133% speedup).
        let (bam, gmt) = srad_runs();
        let speedup = gmt.speedup_over(&bam);
        assert!(
            speedup > 1.2,
            "GMT-Reuse speedup over BaM on Srad: {speedup}"
        );
        assert!(gmt.io_ratio_vs(&bam) < 0.8, "GMT must cut SSD I/O on Srad");
    }

    #[test]
    fn hmm_is_slowest_on_srad() {
        let w = Srad::with_scale(&WorkloadScale::pages(600));
        let g = geometry_for(&w, 4.0, 2.0);
        let bam = run_system(&w, SystemKind::Bam, &g, 1);
        let hmm = run_system(&w, SystemKind::Hmm, &g, 1);
        assert!(
            hmm.speedup_over(&bam) < 1.0,
            "HMM must lose to BaM (paper Fig. 14), got {}",
            hmm.speedup_over(&bam)
        );
    }

    #[test]
    fn optimistic_hmm_is_faster_than_hmm_but_bounded() {
        let w = Srad::with_scale(&WorkloadScale::pages(600));
        let g = geometry_for(&w, 4.0, 2.0);
        let hmm = run_system(&w, SystemKind::Hmm, &g, 1);
        let gmt = run_system(&w, SystemKind::Gmt(PolicyKind::Reuse), &g, 1);
        let opt = optimistic_hmm_elapsed(&hmm, &gmt, Dur::from_micros(130), Dur::from_micros(50));
        assert!(opt <= hmm.elapsed);
        assert!(opt > Dur::ZERO);
    }

    #[test]
    fn geo_mean_basics() {
        assert!((geo_mean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geo_mean(std::iter::empty()), 0.0);
    }

    #[test]
    fn run_results_carry_metrics() {
        let (bam, gmt) = srad_runs();
        assert!(bam.metrics.ssd_reads > 0);
        assert_eq!(bam.metrics.t2_hits, 0);
        assert!(gmt.metrics.t2_hits > 0, "srad must hit tier-2 under GMT");
        assert_eq!(gmt.ssd.reads, gmt.metrics.ssd_reads);
    }
}
