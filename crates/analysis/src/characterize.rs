//! Workload characterization: reuse %, RRD distributions, VTD↔RD pairs.

use std::collections::BTreeMap;

use gmt_mem::{ClockList, PageId, Tier, TierGeometry};
use gmt_reuse::{ReuseTracker, TierClassifier};
use gmt_sim::stats::Histogram;
use gmt_workloads::Workload;
use serde::{Deserialize, Serialize};

/// The Table-2 / Fig.-7 profile of one workload on one geometry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Characterization {
    /// Workload name.
    pub name: String,
    /// Address-space extent in pages.
    pub total_pages: usize,
    /// Coalesced accesses in the trace.
    pub accesses: u64,
    /// Individual page touches.
    pub page_touches: u64,
    /// Fraction of touched pages that were touched more than once
    /// (Table 2's "Reuse % of a Page").
    pub reuse_pct: f64,
    /// Total data the trace demands, in bytes (Table 2's "Total I/O"
    /// analogue: every page touch that cannot be a Tier-1 hit moves a
    /// page).
    pub demand_bytes: u64,
    /// Histogram of Remaining Reuse Distances measured at Tier-1
    /// evictions (Fig. 7's distribution).
    pub rrd_histogram: Histogram,
    /// Fraction of eviction-time RRDs classified per Eq. 1 into each tier
    /// (Fig. 7's vertical-line split).
    pub tier_bias: [f64; 3],
}

impl Characterization {
    /// The tier holding the bulk of eviction-time RRDs.
    pub fn dominant_tier(&self) -> Tier {
        let mut best = Tier::Gpu;
        for t in Tier::ALL {
            if self.tier_bias[t.index()] > self.tier_bias[best.index()] {
                best = t;
            }
        }
        best
    }
}

/// Replays `workload` against an instrumented Tier-1 clock of
/// `geometry.tier1_pages` and measures its reuse profile.
///
/// The instrumentation mirrors what the paper's postmortem analysis does:
/// every Tier-1 eviction snapshots the access-stream position; when the
/// evicted page is touched again, the number of distinct pages accessed
/// in between is its RRD.
///
/// # Examples
///
/// ```
/// use gmt_mem::TierGeometry;
/// use gmt_workloads::{hotspot::Hotspot, Workload, WorkloadScale};
///
/// let w = Hotspot::with_scale(&WorkloadScale::tiny());
/// let geometry = TierGeometry::from_total(w.total_pages(), 4.0, 2.0);
/// let profile = gmt_analysis::characterize(&w, &geometry, 1);
/// assert!(profile.reuse_pct > 0.5); // hotspot re-touches everything
/// ```
pub fn characterize(
    workload: &dyn Workload,
    geometry: &TierGeometry,
    seed: u64,
) -> Characterization {
    let classifier = TierClassifier::from_geometry(geometry);
    let mut tracker = ReuseTracker::new();
    let mut clock = ClockList::new(geometry.tier1_pages);
    let mut pending_eviction: BTreeMap<PageId, u64> = BTreeMap::new();
    let mut touches: BTreeMap<PageId, u32> = BTreeMap::new();
    let mut rrd_histogram = Histogram::new();
    let mut tier_counts = [0u64; 3];
    let mut accesses = 0u64;
    let mut page_touches = 0u64;

    for access in workload.trace(seed) {
        accesses += 1;
        for page in access.pages.iter() {
            page_touches += 1;
            *touches.entry(page).or_default() += 1;
            tracker.record(page);
            if let Some(evicted_at) = pending_eviction.remove(&page) {
                // Exclude the page's own re-access from the count.
                let rrd = tracker.distinct_since(evicted_at).saturating_sub(1);
                rrd_histogram.record(rrd);
                tier_counts[classifier.classify(rrd).index()] += 1;
            }
            if clock.touch(page) {
                continue;
            }
            if clock.is_full() {
                let victim = clock.evict_candidate();
                pending_eviction.insert(victim, tracker.position());
            }
            clock.insert(page);
        }
    }

    let touched = touches.len() as u64;
    let reused = touches.values().filter(|&&c| c > 1).count() as u64;
    let evicted_rrds = tier_counts.iter().sum::<u64>().max(1);
    Characterization {
        name: workload.name().to_string(),
        total_pages: workload.total_pages(),
        accesses,
        page_touches,
        reuse_pct: if touched == 0 {
            0.0
        } else {
            reused as f64 / touched as f64
        },
        demand_bytes: page_touches * geometry.page_bytes,
        rrd_histogram,
        tier_bias: [
            tier_counts[0] as f64 / evicted_rrds as f64,
            tier_counts[1] as f64 / evicted_rrds as f64,
            tier_counts[2] as f64 / evicted_rrds as f64,
        ],
    }
}

/// Collects up to `limit` (VTD, RD) pairs from a workload's access stream
/// (the scatter data of Fig. 4a).
pub fn vtd_rd_pairs(workload: &dyn Workload, seed: u64, limit: usize) -> Vec<(u64, u64)> {
    let mut tracker = ReuseTracker::new();
    let mut pairs = Vec::with_capacity(limit.min(4096));
    for access in workload.trace(seed) {
        for page in access.pages.iter() {
            let d = tracker.record(page);
            if let (Some(vtd), Some(rd)) = (d.vtd.finite(), d.rd.finite()) {
                pairs.push((vtd, rd));
                if pairs.len() >= limit {
                    return pairs;
                }
            }
        }
    }
    pairs
}

/// Pearson correlation coefficient of a set of pairs (Fig. 4a's
/// linearity evidence).
///
/// Returns 0 for degenerate inputs.
pub fn correlation(pairs: &[(u64, u64)]) -> f64 {
    let n = pairs.len() as f64;
    if pairs.len() < 2 {
        return 0.0;
    }
    let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
    for &(x, y) in pairs {
        let (x, y) = (x as f64, y as f64);
        sx += x;
        sy += y;
        sxx += x * x;
        syy += y * y;
        sxy += x * y;
    }
    let cov = n * sxy - sx * sy;
    let var = (n * sxx - sx * sx) * (n * syy - sy * sy);
    if var <= 0.0 {
        0.0
    } else {
        cov / var.sqrt()
    }
}

/// Per-page RRD sequences across successive Tier-1 evictions (Fig. 4b/4c).
///
/// Only pages with at least `min_evictions` completed round trips are
/// returned, keyed by page, each value the chronological RRD sequence.
pub fn eviction_rrd_series(
    workload: &dyn Workload,
    geometry: &TierGeometry,
    seed: u64,
    min_evictions: usize,
) -> BTreeMap<PageId, Vec<u64>> {
    let mut tracker = ReuseTracker::new();
    let mut clock = ClockList::new(geometry.tier1_pages);
    let mut pending: BTreeMap<PageId, u64> = BTreeMap::new();
    let mut series: BTreeMap<PageId, Vec<u64>> = BTreeMap::new();
    for access in workload.trace(seed) {
        for page in access.pages.iter() {
            tracker.record(page);
            if let Some(evicted_at) = pending.remove(&page) {
                let rrd = tracker.distinct_since(evicted_at).saturating_sub(1);
                series.entry(page).or_default().push(rrd);
            }
            if clock.touch(page) {
                continue;
            }
            if clock.is_full() {
                let victim = clock.evict_candidate();
                pending.insert(victim, tracker.position());
            }
            clock.insert(page);
        }
    }
    series.retain(|_, v| v.len() >= min_evictions);
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmt_workloads::multivectoradd::MultiVectorAdd;
    use gmt_workloads::srad::Srad;
    use gmt_workloads::WorkloadScale;

    fn geometry_for(w: &dyn Workload) -> TierGeometry {
        TierGeometry::from_total(w.total_pages(), 4.0, 2.0)
    }

    #[test]
    fn srad_profile_is_high_reuse_tier2_biased() {
        let w = Srad::with_scale(&WorkloadScale::pages(1000));
        let g = geometry_for(&w);
        let c = characterize(&w, &g, 1);
        assert!(c.reuse_pct > 0.9, "srad reuse {}", c.reuse_pct);
        assert_eq!(c.dominant_tier(), Tier::Host, "tier bias {:?}", c.tier_bias);
    }

    #[test]
    fn mva_profile_is_medium_reuse() {
        let w = MultiVectorAdd::with_scale(&WorkloadScale::pages(1000));
        let g = geometry_for(&w);
        let c = characterize(&w, &g, 1);
        assert!(
            c.reuse_pct > 0.1 && c.reuse_pct < 0.5,
            "mva reuse {}",
            c.reuse_pct
        );
        assert!(
            c.tier_bias[Tier::Host.index()] > 0.5,
            "tier bias {:?}",
            c.tier_bias
        );
    }

    #[test]
    fn vtd_rd_pairs_are_strongly_correlated() {
        let w = Srad::with_scale(&WorkloadScale::pages(500));
        let pairs = vtd_rd_pairs(&w, 1, 20_000);
        assert!(!pairs.is_empty());
        let r = correlation(&pairs);
        assert!(r > 0.9, "correlation {r} too weak for Fig. 4a's claim");
    }

    #[test]
    fn mva_eviction_rrds_are_constant_per_page() {
        // The Fig. 4b signature: each page sees the same RRD at every
        // eviction.
        let w = MultiVectorAdd::with_scale(&WorkloadScale::pages(1000));
        let g = geometry_for(&w);
        let series = eviction_rrd_series(&w, &g, 1, 2);
        assert!(!series.is_empty(), "mva pages must round-trip");
        let mut constant = 0usize;
        for rrds in series.values() {
            let spread = rrds.iter().max().unwrap() - rrds.iter().min().unwrap();
            let mean = rrds.iter().sum::<u64>() / rrds.len() as u64;
            if spread <= mean / 5 + 2 {
                constant += 1;
            }
        }
        assert!(
            constant * 10 >= series.len() * 9,
            "only {constant}/{} pages have constant RRD",
            series.len()
        );
    }

    #[test]
    fn correlation_handles_degenerate_input() {
        assert_eq!(correlation(&[]), 0.0);
        assert_eq!(correlation(&[(1, 1)]), 0.0);
        assert_eq!(correlation(&[(1, 1), (1, 1)]), 0.0);
    }
}
