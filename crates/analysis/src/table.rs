//! Fixed-width text tables for the figure binaries.

use std::fmt::Write as _;

/// A simple left-aligned text table.
///
/// # Examples
///
/// ```
/// use gmt_analysis::table::Table;
///
/// let mut t = Table::new(vec!["app", "speedup"]);
/// t.row(vec!["Srad".into(), "2.33".into()]);
/// let text = t.to_string();
/// assert!(text.contains("Srad"));
/// assert!(text.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders as comma-separated values (for piping into plotting tools).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        render(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

/// Prints `table` as text, or as CSV when the `GMT_CSV` environment
/// variable is set to a non-empty value — so every figure binary can feed
/// plotting scripts without reparsing aligned columns.
pub fn emit(table: &Table) {
    if std::env::var("GMT_CSV")
        .map(|v| !v.is_empty())
        .unwrap_or(false)
    {
        print!("{}", table.to_csv());
    } else {
        print!("{table}");
    }
    println!();
}

/// Formats a ratio as `1.23x`.
pub fn fmt_ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a fraction as `45.6%`.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_align() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxxxx".into(), "1".into()]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0].find("long-header"), lines[2].find('1'));
    }

    #[test]
    fn markdown_has_separator_row() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert_eq!(md, "| a | b |\n|---|---|\n| 1 | 2 |\n");
    }

    #[test]
    fn csv_is_plain() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        Table::new(vec!["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ratio(1.5), "1.50x");
        assert_eq!(fmt_pct(0.123), "12.3%");
    }
}
