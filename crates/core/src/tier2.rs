//! Tier-2 residency with pluggable eviction.
//!
//! The paper manages Tier-2 with FIFO eviction (§2.2) and, under
//! GMT-Reuse, prefers rejecting insertions into a full tier (§2.1.3).
//! [`Tier2Cache`] implements FIFO plus clock and random eviction variants
//! for the `ablate_tier2` study. Tiers are exclusive, so pages leave via
//! [`Tier2Cache::remove`] when promoted back to Tier-1.

use gmt_mem::{ClockList, FifoCache, PageId};
use rand::rngs::StdRng;
use rand::Rng;

/// Sentinel in the dense slot table marking a non-resident page.
const ABSENT: u32 = u32::MAX;

/// Grows the dense slot table on demand and records `page`'s slot.
fn set_slot(index: &mut Vec<u32>, page: PageId, slot: u32) {
    let i = page.0 as usize;
    if i >= index.len() {
        index.resize(i + 1, ABSENT);
    }
    index[i] = slot;
}

/// Tier-2 resident-set structure with a selectable eviction policy.
#[derive(Debug)]
pub(crate) enum Tier2Cache {
    /// FIFO eviction (the paper's §2.2 mechanism).
    Fifo(FifoCache),
    /// Clock eviction. With exclusive tiers pages are never "touched"
    /// while resident, so this degenerates towards FIFO — which is itself
    /// an ablation finding worth demonstrating.
    Clock(ClockList),
    /// Uniform-random eviction.
    Random {
        /// Dense storage of resident pages.
        resident: Vec<PageId>,
        /// Page → slot in `resident`, as a dense grow-on-demand table
        /// (`u32::MAX` = absent). Page ids are dense from zero, so this
        /// replaces a hash probe with one indexed load.
        index: Vec<u32>,
        /// Capacity in pages.
        capacity: usize,
        /// Victim-selection randomness.
        rng: StdRng,
    },
}

impl Tier2Cache {
    pub(crate) fn fifo(capacity: usize) -> Tier2Cache {
        Tier2Cache::Fifo(FifoCache::new(capacity))
    }

    pub(crate) fn clock(capacity: usize) -> Tier2Cache {
        Tier2Cache::Clock(ClockList::new(capacity))
    }

    pub(crate) fn random(capacity: usize, seed: u64) -> Tier2Cache {
        assert!(capacity > 0, "tier-2 capacity must be positive");
        Tier2Cache::Random {
            resident: Vec::with_capacity(capacity),
            index: Vec::new(),
            capacity,
            rng: gmt_sim::rng::seeded(seed),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            Tier2Cache::Fifo(c) => c.len(),
            Tier2Cache::Clock(c) => c.len(),
            Tier2Cache::Random { resident, .. } => resident.len(),
        }
    }

    pub(crate) fn is_full(&self) -> bool {
        match self {
            Tier2Cache::Fifo(c) => c.is_full(),
            Tier2Cache::Clock(c) => c.is_full(),
            Tier2Cache::Random {
                resident, capacity, ..
            } => resident.len() == *capacity,
        }
    }

    pub(crate) fn contains(&self, page: PageId) -> bool {
        match self {
            Tier2Cache::Fifo(c) => c.contains(page),
            Tier2Cache::Clock(c) => c.contains(page),
            Tier2Cache::Random { index, .. } => {
                index.get(page.0 as usize).copied().unwrap_or(ABSENT) != ABSENT
            }
        }
    }

    /// Inserts `page`, evicting per the policy if full; returns the
    /// victim, if any.
    ///
    /// # Panics
    ///
    /// Panics if `page` is already resident.
    pub(crate) fn insert_evicting(&mut self, page: PageId) -> Option<PageId> {
        match self {
            Tier2Cache::Fifo(c) => c.insert_evicting(page),
            Tier2Cache::Clock(c) => {
                let victim = c.is_full().then(|| c.replace_candidate(page));
                if victim.is_none() {
                    c.insert(page);
                }
                victim
            }
            Tier2Cache::Random {
                resident,
                index,
                capacity,
                rng,
            } => {
                assert!(
                    index.get(page.0 as usize).copied().unwrap_or(ABSENT) == ABSENT,
                    "page {page} already resident in tier-2"
                );
                if resident.len() == *capacity {
                    let slot = rng.gen_range(0..resident.len());
                    let victim = resident[slot];
                    index[victim.0 as usize] = ABSENT;
                    resident[slot] = page;
                    set_slot(index, page, slot as u32);
                    Some(victim)
                } else {
                    set_slot(index, page, resident.len() as u32);
                    resident.push(page);
                    None
                }
            }
        }
    }

    /// Inserts only if a slot is free; returns whether it was inserted.
    ///
    /// # Panics
    ///
    /// Panics if `page` is already resident.
    pub(crate) fn insert_if_room(&mut self, page: PageId) -> bool {
        if self.is_full() {
            assert!(
                !self.contains(page),
                "page {page} already resident in tier-2"
            );
            return false;
        }
        self.insert_evicting(page);
        true
    }

    /// Removes `page` (promotion back to Tier-1); returns whether it was
    /// resident.
    pub(crate) fn remove(&mut self, page: PageId) -> bool {
        match self {
            Tier2Cache::Fifo(c) => c.remove(page),
            Tier2Cache::Clock(c) => c.remove(page),
            Tier2Cache::Random {
                resident, index, ..
            } => match index.get(page.0 as usize).copied() {
                Some(slot) if slot != ABSENT => {
                    let slot = slot as usize;
                    index[page.0 as usize] = ABSENT;
                    let last = resident.len() - 1;
                    resident.swap(slot, last);
                    resident.pop();
                    if slot < resident.len() {
                        index[resident[slot].0 as usize] = slot as u32;
                    }
                    true
                }
                _ => false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_all(capacity: usize) -> Vec<Tier2Cache> {
        vec![
            Tier2Cache::fifo(capacity),
            Tier2Cache::clock(capacity),
            Tier2Cache::random(capacity, 7),
        ]
    }

    #[test]
    fn capacity_respected_by_every_policy() {
        for mut cache in make_all(4) {
            for p in 0..32 {
                cache.insert_evicting(PageId(p));
                assert!(cache.len() <= 4);
            }
            assert!(cache.is_full());
        }
    }

    #[test]
    fn eviction_returns_a_previously_resident_page() {
        for mut cache in make_all(3) {
            for p in 0..3 {
                assert_eq!(cache.insert_evicting(PageId(p)), None);
            }
            let victim = cache
                .insert_evicting(PageId(99))
                .expect("full cache evicts");
            assert!(victim.0 < 3, "victim {victim} was never inserted");
            assert!(!cache.contains(victim));
            assert!(cache.contains(PageId(99)));
        }
    }

    #[test]
    fn remove_then_insert_if_room() {
        for mut cache in make_all(2) {
            cache.insert_evicting(PageId(0));
            cache.insert_evicting(PageId(1));
            assert!(!cache.insert_if_room(PageId(2)));
            assert!(cache.remove(PageId(0)));
            assert!(!cache.remove(PageId(0)));
            assert!(cache.insert_if_room(PageId(2)));
            assert!(cache.contains(PageId(2)));
        }
    }

    /// Differential check of the dense-handle `Random` variant against a
    /// straightforward HashMap model driven by the identical RNG: every
    /// insert/remove decision (victims included) must coincide.
    #[test]
    fn random_variant_matches_hashmap_reference() {
        use rand::Rng;
        struct Reference {
            resident: Vec<PageId>,
            index: std::collections::HashMap<PageId, usize>,
            capacity: usize,
            rng: rand::rngs::StdRng,
        }
        impl Reference {
            fn insert_evicting(&mut self, page: PageId) -> Option<PageId> {
                assert!(!self.index.contains_key(&page));
                if self.resident.len() == self.capacity {
                    let slot = self.rng.gen_range(0..self.resident.len());
                    let victim = self.resident[slot];
                    self.index.remove(&victim);
                    self.resident[slot] = page;
                    self.index.insert(page, slot);
                    Some(victim)
                } else {
                    self.index.insert(page, self.resident.len());
                    self.resident.push(page);
                    None
                }
            }
            fn remove(&mut self, page: PageId) -> bool {
                match self.index.remove(&page) {
                    Some(slot) => {
                        let last = self.resident.len() - 1;
                        self.resident.swap(slot, last);
                        self.resident.pop();
                        if slot < self.resident.len() {
                            self.index.insert(self.resident[slot], slot);
                        }
                        true
                    }
                    None => false,
                }
            }
        }

        for seed in [3u64, 17, 4242] {
            let mut dense = Tier2Cache::random(16, seed);
            let mut model = Reference {
                resident: Vec::new(),
                index: std::collections::HashMap::new(),
                capacity: 16,
                rng: gmt_sim::rng::seeded(seed),
            };
            let mut driver = gmt_sim::rng::seeded(seed ^ 0x5EED);
            for step in 0..4_000u64 {
                let page = PageId(driver.gen_range(0..64));
                if driver.gen_bool(0.3) {
                    assert_eq!(dense.remove(page), model.remove(page), "step {step}");
                } else if !dense.contains(page) {
                    assert!(!model.index.contains_key(&page), "step {step}");
                    assert_eq!(
                        dense.insert_evicting(page),
                        model.insert_evicting(page),
                        "step {step}"
                    );
                }
                assert_eq!(dense.len(), model.resident.len(), "step {step}");
            }
        }
    }

    #[test]
    fn random_eviction_spreads_victims() {
        let mut cache = Tier2Cache::random(8, 3);
        for p in 0..8 {
            cache.insert_evicting(PageId(p));
        }
        let mut victims = std::collections::HashSet::new();
        for p in 8..64 {
            if let Some(v) = cache.insert_evicting(PageId(p)) {
                victims.insert(v);
            }
        }
        assert!(
            victims.len() > 4,
            "random eviction hit only {} distinct victims",
            victims.len()
        );
    }
}
