//! Fluent construction of [`Gmt`] runtimes.

use gmt_mem::TierGeometry;
use gmt_pcie::{HostLinkConfig, TransferMethod};
use gmt_ssd::SsdConfig;

use crate::{ConfigError, Gmt, GmtConfig, MarkovScope, PolicyKind, PredictorKind, Tier2Insert};

/// A non-consuming builder for [`Gmt`] (and for the underlying
/// [`GmtConfig`], when only the configuration is needed).
///
/// # Examples
///
/// ```
/// use gmt_core::{GmtBuilder, PolicyKind};
/// use gmt_mem::TierGeometry;
///
/// let gmt = GmtBuilder::new(TierGeometry::from_tier1(64, 4.0, 2.0))
///     .policy(PolicyKind::Reuse)
///     .prefetch_degree(4)
///     .async_eviction(true)
///     .ssd_devices(2)
///     .build();
/// assert_eq!(gmt.config().prefetch_degree, 4);
/// ```
#[derive(Debug, Clone)]
pub struct GmtBuilder {
    config: GmtConfig,
}

impl GmtBuilder {
    /// Starts from the paper's defaults on the given capacities.
    pub fn new(geometry: TierGeometry) -> GmtBuilder {
        GmtBuilder {
            config: GmtConfig::new(geometry),
        }
    }

    /// Sets the eviction placement policy (default: GMT-Reuse).
    pub fn policy(&mut self, policy: PolicyKind) -> &mut GmtBuilder {
        self.config.policy = policy;
        self
    }

    /// Sets the Tier-1 ⇄ Tier-2 transfer mechanism (default: Hybrid-32T).
    pub fn transfer(&mut self, method: TransferMethod) -> &mut GmtBuilder {
        self.config.transfer = method;
        self
    }

    /// Overrides the Tier-2 insertion mode (default: per-policy).
    pub fn tier2_insert(&mut self, mode: Tier2Insert) -> &mut GmtBuilder {
        self.config.tier2_insert = Some(mode);
        self
    }

    /// Sets the PCIe path calibration.
    pub fn host_link(&mut self, link: HostLinkConfig) -> &mut GmtBuilder {
        self.config.host_link = link;
        self
    }

    /// Sets the SSD calibration.
    pub fn ssd(&mut self, ssd: SsdConfig) -> &mut GmtBuilder {
        self.config.ssd = ssd;
        self
    }

    /// Stripes Tier-3 across `devices` identical SSDs (default: 1).
    pub fn ssd_devices(&mut self, devices: usize) -> &mut GmtBuilder {
        self.config.ssd_devices = devices;
        self
    }

    /// Sets the §2.2 Tier-3-pressure bypass threshold (default: 0.8).
    pub fn bypass_threshold(&mut self, threshold: f64) -> &mut GmtBuilder {
        self.config.reuse.bypass_threshold = threshold;
        self
    }

    /// Sets the Markov predictor scope (default: global).
    pub fn markov_scope(&mut self, scope: MarkovScope) -> &mut GmtBuilder {
        self.config.reuse.markov_scope = scope;
        self
    }

    /// Sets the history predictor (default: the paper's Markov chain).
    pub fn predictor(&mut self, predictor: PredictorKind) -> &mut GmtBuilder {
        self.config.reuse.predictor = predictor;
        self
    }

    /// Sets the VTD sample budget (default: 200 000 pairs).
    pub fn sample_budget(&mut self, budget: usize) -> &mut GmtBuilder {
        self.config.reuse.sampler.sample_budget = budget;
        self
    }

    /// Enables sequential prefetching of `degree` pages (default: 0, off).
    pub fn prefetch_degree(&mut self, degree: usize) -> &mut GmtBuilder {
        self.config.prefetch_degree = degree;
        self
    }

    /// Moves eviction transfers off the critical path (default: false).
    pub fn async_eviction(&mut self, enabled: bool) -> &mut GmtBuilder {
        self.config.async_eviction = enabled;
        self
    }

    /// Sets the seed for stochastic choices (default: fixed).
    pub fn seed(&mut self, seed: u64) -> &mut GmtBuilder {
        self.config.seed = seed;
        self
    }

    /// The accumulated configuration.
    pub fn config(&self) -> GmtConfig {
        self.config
    }

    /// Builds the runtime, validating the configuration first.
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`]'s message if the accumulated
    /// configuration is degenerate; use [`GmtBuilder::try_build`] to
    /// handle the error instead.
    pub fn build(&self) -> Gmt {
        match self.try_build() {
            Ok(gmt) => gmt,
            // gmt-lint: allow(P1): documented panic; try_build is the typed-error path.
            Err(err) => panic!("invalid GMT configuration: {err}"),
        }
    }

    /// Builds the runtime, returning the validation error on a
    /// degenerate configuration instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] that
    /// [`GmtConfig::validate`] finds.
    ///
    /// # Examples
    ///
    /// ```
    /// use gmt_core::{ConfigError, GmtBuilder};
    /// use gmt_mem::TierGeometry;
    ///
    /// let mut builder = GmtBuilder::new(TierGeometry::from_tier1(16, 4.0, 2.0));
    /// builder.bypass_threshold(1.5);
    /// assert!(matches!(
    ///     builder.try_build(),
    ///     Err(ConfigError::BypassThresholdOutOfRange { .. })
    /// ));
    /// ```
    pub fn try_build(&self) -> Result<Gmt, ConfigError> {
        self.config.validate()?;
        Ok(Gmt::new(self.config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> TierGeometry {
        TierGeometry::from_tier1(32, 4.0, 2.0)
    }

    #[test]
    fn builder_defaults_match_config_defaults() {
        let built = GmtBuilder::new(geometry()).config();
        assert_eq!(built, GmtConfig::new(geometry()));
    }

    #[test]
    fn one_liner_and_staged_configuration_agree() {
        let one_liner = GmtBuilder::new(geometry())
            .policy(PolicyKind::Random)
            .prefetch_degree(2)
            .config();
        let mut staged = GmtBuilder::new(geometry());
        staged.policy(PolicyKind::Random);
        staged.prefetch_degree(2);
        assert_eq!(one_liner, staged.config());
    }

    #[test]
    fn every_knob_reaches_the_config() {
        let config = GmtBuilder::new(geometry())
            .policy(PolicyKind::TierOrder)
            .transfer(TransferMethod::DmaAsync)
            .tier2_insert(Tier2Insert::EvictRandom)
            .ssd_devices(4)
            .bypass_threshold(0.5)
            .markov_scope(MarkovScope::PerPage)
            .sample_budget(1_000)
            .prefetch_degree(8)
            .async_eviction(true)
            .seed(99)
            .config();
        assert_eq!(config.policy, PolicyKind::TierOrder);
        assert_eq!(config.transfer, TransferMethod::DmaAsync);
        assert_eq!(config.tier2_insert, Some(Tier2Insert::EvictRandom));
        assert_eq!(config.ssd_devices, 4);
        assert_eq!(config.reuse.bypass_threshold, 0.5);
        assert_eq!(config.reuse.markov_scope, MarkovScope::PerPage);
        assert_eq!(config.reuse.sampler.sample_budget, 1_000);
        assert_eq!(config.prefetch_degree, 8);
        assert!(config.async_eviction);
        assert_eq!(config.seed, 99);
    }

    #[test]
    fn build_produces_a_working_runtime() {
        use gmt_gpu::MemoryBackend;
        use gmt_mem::{PageId, WarpAccess};
        use gmt_sim::Time;
        let mut gmt = GmtBuilder::new(geometry()).build();
        let done = gmt.access(Time::ZERO, &WarpAccess::read(PageId(0)));
        assert!(done > Time::ZERO);
    }
}
