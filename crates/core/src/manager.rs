//! The 3-tier memory manager.

use std::collections::VecDeque;

use gmt_gpu::MemoryBackend;
use gmt_mem::{ClockList, PageId, PageTable, Tier, WarpAccess};
use gmt_pcie::{HostLink, TransferBatch};
use gmt_reuse::{MarkovPredictor, PageHistory, SamplingRegression, TierClassifier};
use gmt_sim::trace::{LinkDir, TierTag, TraceEvent, TraceSink};
use gmt_sim::Time;
use gmt_ssd::array::{ArrayConfig, SsdArray};
use gmt_ssd::host_io::{HostIo, HostIoConfig};
use rand::rngs::StdRng;
use rand::Rng;

use crate::tier2::Tier2Cache;
use crate::{GmtConfig, MarkovScope, PolicyKind, PredictorKind, Tier2Insert, TieringMetrics};

/// Per-page state maintained by the runtime.
#[derive(Debug, Clone)]
struct PageMeta {
    /// Which tier currently holds the page.
    tier: Tier,
    /// Whether the page has been modified since it last left the SSD.
    dirty: bool,
    /// When the page's in-flight transfer (if any) completes.
    ready_at: Time,
    /// Virtual-timestamp value at the page's last Tier-1 eviction, used to
    /// compute the actual RVTD when the page returns (§2.1.3 step 2).
    evicted_at_vt: Option<u64>,
    /// Page touches since the page last entered Tier-1 (1 = the demand
    /// fill itself). Distinguishes streaming pages from reused ones when
    /// no eviction history exists yet.
    touches_since_load: u32,
    /// The tier GMT-Reuse predicted at the last eviction (for Fig. 9).
    predicted: Option<Tier>,
    /// Last two known correct tiers (drives the Markov predictor).
    history: PageHistory,
}

impl Default for PageMeta {
    fn default() -> PageMeta {
        PageMeta {
            tier: Tier::Ssd,
            dirty: false,
            ready_at: Time::ZERO,
            evicted_at_vt: None,
            touches_since_load: 0,
            predicted: None,
            history: PageHistory::default(),
        }
    }
}

/// Sliding window over recent eviction predictions for the 80 %
/// Tier-3-pressure heuristic (§2.2).
#[derive(Debug, Clone)]
struct BypassWindow {
    recent: VecDeque<bool>,
    t3_count: usize,
    capacity: usize,
}

impl BypassWindow {
    fn new(capacity: usize) -> BypassWindow {
        BypassWindow {
            recent: VecDeque::with_capacity(capacity),
            t3_count: 0,
            capacity,
        }
    }

    fn push(&mut self, predicted_t3: bool) {
        // gmt-lint: allow(P1): len == capacity > 0 guarantees a front element.
        if self.recent.len() == self.capacity && self.recent.pop_front().expect("window non-empty")
        {
            self.t3_count -= 1;
        }
        self.recent.push_back(predicted_t3);
        if predicted_t3 {
            self.t3_count += 1;
        }
    }

    /// Fraction of recent evictions predicted Tier-3; `None` until the
    /// window has filled once.
    fn t3_fraction(&self) -> Option<f64> {
        (self.recent.len() == self.capacity).then(|| self.t3_count as f64 / self.capacity as f64)
    }
}

/// Histograms of miss-service latencies, per source tier.
///
/// The paper's §3.4 grounds its analysis in two numbers — a host-memory
/// fetch costs ≈50 µs and an SSD fetch ≈130 µs. These distributions are
/// the simulated equivalents, measured per miss at the warp's
/// observation point (including queueing).
#[derive(Debug, Clone, Default)]
pub struct LatencyBreakdown {
    /// Service time of Tier-1 misses satisfied from host memory (ns).
    pub tier2_fetch_ns: gmt_sim::stats::Histogram,
    /// Service time of Tier-1 misses satisfied from the SSD (ns).
    pub ssd_fetch_ns: gmt_sim::stats::Histogram,
}

/// A consistency snapshot of the runtime's tier state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierSnapshot {
    /// Pages resident in Tier-1 (GPU memory).
    pub tier1_pages: usize,
    /// Pages resident in Tier-2 (host memory).
    pub tier2_pages: usize,
    /// Pages resident only on the SSD.
    pub ssd_pages: usize,
    /// Dirty pages in Tier-1.
    pub dirty_tier1: usize,
    /// Dirty pages in Tier-2 (not yet written back).
    pub dirty_tier2: usize,
}

/// The GMT runtime (paper §2).
///
/// Implements [`MemoryBackend`]: feed it coalesced warp accesses via
/// [`gmt_gpu::Executor`] and read the [`TieringMetrics`] afterwards.
///
/// Like the paper's measurements, a run ends when the last access's data
/// is available: dirty pages still resident in Tier-1/Tier-2 are *not*
/// flushed at the end (the same convention applies to BaM and HMM, so
/// comparisons stay like-for-like; `snapshot()` exposes the residual
/// dirty state).
///
/// # Examples
///
/// ```
/// use gmt_core::{Gmt, GmtConfig, PolicyKind};
/// use gmt_gpu::{Executor, ExecutorConfig};
/// use gmt_mem::{PageId, TierGeometry, WarpAccess};
///
/// let geometry = TierGeometry::from_tier1(64, 4.0, 2.0);
/// let gmt = Gmt::new(GmtConfig::new(geometry).with_policy(PolicyKind::Reuse));
/// let trace = (0..3u64).flat_map(|_| (0..640).map(|p| WarpAccess::read(PageId(p))));
/// let out = Executor::new(ExecutorConfig::default()).run(gmt, trace);
/// let metrics = out.backend.metrics();
/// assert!(metrics.t1_misses > 0);
/// ```
#[derive(Debug)]
pub struct Gmt {
    config: GmtConfig,
    tier2_insert: Tier2Insert,
    classifier: TierClassifier,
    clock: ClockList,
    tier2: Tier2Cache,
    table: PageTable<PageMeta>,
    /// The coalesced-access counter ("virtual timestamp", §2.1.3).
    vt: u64,
    sampler: SamplingRegression,
    markov: MarkovPredictor,
    /// Per-page matrices when [`MarkovScope::PerPage`] is configured.
    per_page_markov: Option<Vec<MarkovPredictor>>,
    ssd: SsdArray,
    /// Host userspace I/O for Tier-2 → Tier-3 write-backs (libnvm, §2.3).
    host_io: HostIo,
    /// Host → device path (fetches from Tier-2).
    to_gpu: HostLink,
    /// Device → host path (evictions into Tier-2).
    to_host: HostLink,
    rng: StdRng,
    bypass: BypassWindow,
    metrics: TieringMetrics,
    latency: LatencyBreakdown,
    trace: TraceSink,
    /// Reused per-access miss buffers: `access` runs once per simulated
    /// event, so allocating these there would churn the allocator on the
    /// hottest path (A1). Taken with `mem::take` for the duration of the
    /// call and put back cleared, capacity intact.
    scratch_tier2: Vec<PageId>,
    scratch_ssd: Vec<PageId>,
}

/// Maps the memory model's [`Tier`] onto the trace vocabulary.
fn tier_tag(tier: Tier) -> TierTag {
    match tier {
        Tier::Gpu => TierTag::Gpu,
        Tier::Host => TierTag::Host,
        Tier::Ssd => TierTag::Ssd,
    }
}

impl Gmt {
    /// Builds a runtime from `config`.
    ///
    /// # Panics
    ///
    /// Panics with the [`crate::ConfigError`]'s message if
    /// [`GmtConfig::validate`] rejects `config` (zero-capacity tiers,
    /// prefetch degree overflowing Tier-1, out-of-range bypass
    /// threshold, ...). Use [`crate::GmtBuilder::try_build`] to handle
    /// the error instead.
    pub fn new(config: GmtConfig) -> Gmt {
        if let Err(err) = config.validate() {
            // gmt-lint: allow(P1): documented panic; GmtBuilder::try_build is the typed-error path.
            panic!("invalid GMT configuration: {err}");
        }
        let g = &config.geometry;
        // One root RNG seeds every stochastic component: child streams are
        // drawn from it (always, so the root stream does not depend on
        // which components happen to be stochastic in this configuration).
        let mut rng = gmt_sim::rng::seeded(config.seed);
        let tier2_seed: u64 = rng.gen();
        Gmt {
            tier2_insert: config.effective_tier2_insert(),
            classifier: TierClassifier::from_geometry(g),
            clock: ClockList::new(g.tier1_pages),
            tier2: match config.effective_tier2_insert() {
                Tier2Insert::EvictClock => Tier2Cache::clock(g.tier2_pages),
                Tier2Insert::EvictRandom => Tier2Cache::random(g.tier2_pages, tier2_seed),
                _ => Tier2Cache::fifo(g.tier2_pages),
            },
            table: PageTable::new(g.total_pages),
            vt: 0,
            sampler: SamplingRegression::new(config.reuse.sampler),
            markov: MarkovPredictor::new(),
            per_page_markov: (config.reuse.markov_scope == MarkovScope::PerPage)
                .then(|| vec![MarkovPredictor::new(); g.total_pages]),
            ssd: SsdArray::new(ArrayConfig {
                device: config.ssd,
                devices: config.ssd_devices.max(1),
                stripe_bytes: g.page_bytes,
            }),
            host_io: HostIo::new(HostIoConfig::default()),
            to_gpu: HostLink::new(config.host_link),
            to_host: HostLink::new(config.host_link),
            rng,
            bypass: BypassWindow::new(config.reuse.bypass_window.max(1)),
            metrics: TieringMetrics::default(),
            latency: LatencyBreakdown::default(),
            trace: TraceSink::disabled(),
            scratch_tier2: Vec::new(),
            scratch_ssd: Vec::new(),
            config,
        }
    }

    /// Turns on decision tracing into a fresh ring of `capacity` records
    /// and wires every component (SSD devices, both PCIe directions) into
    /// it. Returns a handle to the shared sink — clone it into an
    /// [`gmt_gpu::Executor`] via `attach_trace` to also capture warp
    /// issues.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_tracing(&mut self, capacity: usize) -> TraceSink {
        let sink = TraceSink::bounded(capacity);
        self.trace = sink.clone();
        self.ssd.attach_trace(&sink);
        self.to_gpu.attach_trace(&sink, LinkDir::ToGpu);
        self.to_host.attach_trace(&sink, LinkDir::ToHost);
        sink
    }

    /// The runtime's trace sink (disabled unless
    /// [`Gmt::enable_tracing`] was called).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &GmtConfig {
        &self.config
    }

    /// Counters accumulated so far.
    pub fn metrics(&self) -> TieringMetrics {
        self.metrics
    }

    /// Miss-service latency distributions (the §3.4 numbers, measured).
    pub fn latency_breakdown(&self) -> &LatencyBreakdown {
        &self.latency
    }

    /// The SSD device's own statistics (bytes, command counts).
    pub fn ssd_stats(&self) -> gmt_ssd::SsdStats {
        self.ssd.stats()
    }

    /// Pages currently resident in Tier-2.
    pub fn tier2_occupancy(&self) -> usize {
        self.tier2.len()
    }

    /// The regression fit currently used to project RVTD → RRD.
    pub fn current_fit(&self) -> gmt_reuse::LinearFit {
        self.sampler.fit()
    }

    /// Takes a consistency snapshot of where every page lives.
    pub fn snapshot(&self) -> TierSnapshot {
        let mut snap = TierSnapshot {
            tier1_pages: 0,
            tier2_pages: 0,
            ssd_pages: 0,
            dirty_tier1: 0,
            dirty_tier2: 0,
        };
        for (_, meta) in self.table.iter() {
            match meta.tier {
                Tier::Gpu => {
                    snap.tier1_pages += 1;
                    snap.dirty_tier1 += meta.dirty as usize;
                }
                Tier::Host => {
                    snap.tier2_pages += 1;
                    snap.dirty_tier2 += meta.dirty as usize;
                }
                Tier::Ssd => snap.ssd_pages += 1,
            }
        }
        snap
    }

    /// Verifies the runtime's structural invariants: the page table, the
    /// Tier-1 clock and the Tier-2 residency structure must agree, and
    /// every page must live in exactly one tier.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant. Intended
    /// for tests and debugging; O(total pages).
    pub fn check_invariants(&self) -> Result<(), String> {
        let snap = self.snapshot();
        if snap.tier1_pages != self.clock.len() {
            return Err(format!(
                "page table says {} Tier-1 pages but the clock holds {}",
                snap.tier1_pages,
                self.clock.len()
            ));
        }
        if snap.tier2_pages != self.tier2.len() {
            return Err(format!(
                "page table says {} Tier-2 pages but tier-2 holds {}",
                snap.tier2_pages,
                self.tier2.len()
            ));
        }
        if snap.tier1_pages + snap.tier2_pages + snap.ssd_pages != self.table.len() {
            return Err("tiers do not partition the address space".into());
        }
        for (page, meta) in self.table.iter() {
            let in_clock = self.clock.contains(page);
            let in_tier2 = self.tier2.contains(page);
            match meta.tier {
                Tier::Gpu if !in_clock => {
                    return Err(format!("{page} marked Tier-1 but absent from the clock"));
                }
                Tier::Host if !in_tier2 => {
                    return Err(format!("{page} marked Tier-2 but absent from tier-2"));
                }
                Tier::Ssd if in_clock || in_tier2 => {
                    return Err(format!("{page} marked SSD but resident in a memory tier"));
                }
                _ => {}
            }
            if in_clock && in_tier2 {
                return Err(format!("{page} duplicated across tiers"));
            }
        }
        Ok(())
    }

    fn page_bytes(&self) -> u64 {
        self.config.geometry.page_bytes
    }

    fn ssd_offset(&self, page: PageId) -> u64 {
        page.0 * self.page_bytes()
    }

    /// Bookkeeping when `page` re-enters Tier-1: its actual RVTD since the
    /// last eviction is now known, so the correct tier can be computed
    /// (Eq. 1 over the regression-projected RRD), the Markov chain
    /// trained, and the old prediction graded (Fig. 9).
    fn on_refill(&mut self, now: Time, page: PageId) {
        let fit = self.sampler.fit();
        let vt = self.vt;
        let classifier = self.classifier;
        let meta = self.table.get_mut(page);
        if let Some(evicted_vt) = meta.evicted_at_vt.take() {
            let rvtd = vt.saturating_sub(evicted_vt);
            let correct = classifier.classify_rvtd(rvtd, &fit);
            if let Some(predicted) = meta.predicted.take() {
                self.metrics.predictions += 1;
                if predicted == correct {
                    self.metrics.predictions_correct += 1;
                }
                self.trace.emit(
                    now,
                    TraceEvent::PredictionGraded {
                        page: page.0,
                        predicted: tier_tag(predicted),
                        actual: tier_tag(correct),
                        correct: predicted == correct,
                    },
                );
            }
            let mut history = self.table.get(page).history;
            let matrix = match &mut self.per_page_markov {
                Some(per_page) => &mut per_page[page.index()],
                None => &mut self.markov,
            };
            history.observe(correct, matrix);
            self.table.get_mut(page).history = history;
        }
    }

    /// Predicts the tier an eviction candidate's next reuse falls into.
    ///
    /// With history, this is the Markov chain's heaviest transition out of
    /// the last correct tier (§2.1.3 step 2). A page with no completed
    /// round trip falls back to a default strategy (the paper proceeds
    /// with a default until enough signal accumulates): pages that were
    /// never re-touched during their Tier-1 residency look like streams
    /// and default to the long-reuse class; anything with observed reuse
    /// defaults to Tier-2, TierOrder-style.
    fn predict_tier(&self, page: PageId) -> Tier {
        let meta = self.table.get(page);
        match meta.history.last() {
            Some(last) => match self.config.reuse.predictor {
                PredictorKind::Markov => match &self.per_page_markov {
                    Some(per_page) => per_page[page.index()].predict(last),
                    None => self.markov.predict(last),
                },
                PredictorKind::LastTier => last,
                PredictorKind::AlwaysHost => Tier::Host,
            },
            None if meta.touches_since_load <= 1 => Tier::Ssd,
            None => Tier::Host,
        }
    }

    /// Selects a victim and destination under GMT-Reuse: short-reuse
    /// candidates get another chance (bounded by `max_skips`), and the
    /// 80 % heuristic can force predicted-Tier-3 victims into Tier-2.
    fn reuse_select(&mut self) -> (PageId, Tier, Tier) {
        for _ in 0..self.config.reuse.max_skips {
            // gmt-lint: allow(P1): eviction only runs once tier-1 is full, so the clock is non-empty.
            let candidate = self.clock.candidate().expect("tier-1 is full");
            let predicted = self.predict_tier(candidate);
            if predicted == Tier::Gpu {
                self.metrics.short_reuse_keeps += 1;
                self.clock.skip_candidate();
                continue;
            }
            self.bypass.push(predicted == Tier::Ssd);
            let mut target = predicted;
            if predicted == Tier::Ssd {
                if let Some(f) = self.bypass.t3_fraction() {
                    if f > self.config.reuse.bypass_threshold {
                        target = Tier::Host;
                        self.metrics.forced_t2_placements += 1;
                    }
                }
            }
            let victim = self.clock.evict_candidate();
            debug_assert_eq!(victim, candidate);
            return (victim, target, predicted);
        }
        // Everything looks short-reuse: evict the clock's pick anyway.
        let victim = self.clock.evict_candidate();
        self.bypass.push(false);
        (victim, Tier::Host, Tier::Gpu)
    }

    /// Evicts one page from Tier-1 to make room; returns when the warp
    /// performing the eviction is done with it.
    fn evict_one(&mut self, now: Time) -> Time {
        let (victim, target, predicted) = match self.config.policy {
            PolicyKind::TierOrder => {
                let v = self.clock.evict_candidate();
                (v, Tier::Host, Tier::Host)
            }
            PolicyKind::Random => {
                let v = self.clock.evict_candidate();
                let t = if self.rng.gen_bool(0.5) {
                    Tier::Host
                } else {
                    Tier::Ssd
                };
                (v, t, t)
            }
            PolicyKind::Reuse => self.reuse_select(),
        };
        self.metrics.t1_evictions += 1;
        {
            let vt = self.vt;
            let meta = self.table.get_mut(victim);
            meta.evicted_at_vt = Some(vt);
            meta.predicted = (self.config.policy == PolicyKind::Reuse).then_some(predicted);
        }
        if self.trace.is_enabled() {
            self.trace.emit(
                now,
                TraceEvent::Eviction {
                    page: victim.0,
                    predicted: (self.config.policy == PolicyKind::Reuse)
                        .then(|| tier_tag(predicted)),
                    target: tier_tag(target),
                    dirty: self.table.get(victim).dirty,
                },
            );
        }
        match target {
            Tier::Host => self.place_in_tier2(now, victim),
            _ => self.bypass_to_ssd(now, victim),
        }
    }

    /// Places `victim` into Tier-2, spilling or rejecting per the
    /// configured insertion mode. Returns the eviction's critical-path
    /// completion time.
    fn place_in_tier2(&mut self, now: Time, victim: PageId) -> Time {
        let inserted = match self.tier2_insert {
            Tier2Insert::RejectWhenFull => self.tier2.insert_if_room(victim),
            _ => {
                if let Some(t2_victim) = self.tier2.insert_evicting(victim) {
                    self.drop_from_tier2(now, t2_victim);
                }
                true
            }
        };
        if !inserted {
            return self.bypass_to_ssd(now, victim);
        }
        self.metrics.t2_placements += 1;
        if self.trace.is_enabled() {
            self.trace.emit(
                now,
                TraceEvent::Tier2Place {
                    page: victim.0,
                    dirty: self.table.get(victim).dirty,
                },
            );
        }
        let batch = TransferBatch {
            pages: 1,
            page_bytes: self.page_bytes(),
            threads: 32,
        };
        let done = self.to_host.transfer(now, batch, self.config.transfer);
        self.table.get_mut(victim).tier = Tier::Host;
        self.table.get_mut(victim).ready_at = done;
        done
    }

    /// Handles a page leaving Tier-2 (FIFO spill): dirty pages are written
    /// back by host userspace I/O, off the GPU's critical path.
    fn drop_from_tier2(&mut self, now: Time, t2_victim: PageId) {
        let dirty = {
            let meta = self.table.get_mut(t2_victim);
            let dirty = meta.dirty;
            meta.tier = Tier::Ssd;
            meta.dirty = false;
            dirty
        };
        self.trace.emit(
            now,
            TraceEvent::Tier2Spill {
                page: t2_victim.0,
                dirty,
            },
        );
        if dirty {
            self.metrics.t2_writebacks += 1;
            let offset = self.ssd_offset(t2_victim);
            let bytes = self.page_bytes();
            // Host userspace I/O: off the GPU's critical path (§2.3).
            self.host_io.write(now, &mut self.ssd, offset, bytes);
        } else {
            self.metrics.t2_drops += 1;
        }
    }

    /// Bypasses `victim` straight to Tier-3: clean pages are simply
    /// dropped (their content is already on the SSD), dirty pages are
    /// written by the evicting warp through the GPU-direct NVMe path.
    fn bypass_to_ssd(&mut self, now: Time, victim: PageId) -> Time {
        let dirty = {
            let meta = self.table.get_mut(victim);
            let dirty = meta.dirty;
            meta.tier = Tier::Ssd;
            meta.dirty = false;
            dirty
        };
        if dirty {
            self.metrics.ssd_writes += 1;
            self.trace
                .emit(now, TraceEvent::SsdWriteBack { page: victim.0 });
            let offset = self.ssd_offset(victim);
            let bytes = self.page_bytes();
            self.ssd.write(now, offset, bytes)
        } else {
            self.metrics.discards += 1;
            self.trace
                .emit(now, TraceEvent::EvictDiscard { page: victim.0 });
            now
        }
    }
}

impl Gmt {
    /// Speculatively pulls `page` from the SSD into Tier-1 without gating
    /// any warp. No-op if the page is outside the address space, already
    /// off the SSD, or Tier-1 churn would be required and the clock's
    /// candidate is busy — prefetching never forces an eviction beyond
    /// what the policy would do anyway.
    fn prefetch(&mut self, now: Time, page: PageId) {
        if page.index() >= self.table.len() || self.table.get(page).tier != Tier::Ssd {
            return;
        }
        if self.clock.is_full() {
            self.evict_one(now);
        }
        self.metrics.prefetches += 1;
        self.trace.emit(now, TraceEvent::Prefetch { page: page.0 });
        let offset = self.ssd_offset(page);
        let bytes = self.page_bytes();
        let done = self.ssd.read(now, offset, bytes);
        self.clock.insert(page);
        self.on_refill(now, page);
        let meta = self.table.get_mut(page);
        meta.tier = Tier::Gpu;
        meta.ready_at = done;
        meta.touches_since_load = 0;
    }
}

impl MemoryBackend for Gmt {
    fn access(&mut self, now: Time, access: &WarpAccess) -> Time {
        self.metrics.accesses += 1;
        let mut ready = now;
        // Scratch buffers live on the struct; `take` swaps in empties
        // (no allocation) and the tail of this fn puts them back.
        let mut tier2_fetches: Vec<PageId> = std::mem::take(&mut self.scratch_tier2);
        let mut ssd_fetches: Vec<PageId> = std::mem::take(&mut self.scratch_ssd);
        for page in access.pages.iter() {
            assert!(
                page.index() < self.table.len(),
                "page {page} outside the configured address space"
            );
            // One coalesced transaction per distinct page: the virtual
            // timestamp advances per transaction (§2.1.3), keeping RVTD in
            // the same distinct-touch units the regression is trained on.
            self.vt += 1;
            self.trace.set_vt(self.vt);
            if !self.sampler.is_complete() {
                self.sampler.observe(page);
            }
            let meta = self.table.get(page);
            match meta.tier {
                Tier::Gpu => {
                    ready = ready.max(meta.ready_at);
                    self.clock.touch(page);
                    self.metrics.t1_hits += 1;
                    self.table.get_mut(page).touches_since_load += 1;
                    self.trace.emit(now, TraceEvent::Tier1Hit { page: page.0 });
                }
                Tier::Host => {
                    self.trace.emit(
                        now,
                        TraceEvent::Tier1Miss {
                            page: page.0,
                            resident: TierTag::Host,
                        },
                    );
                    tier2_fetches.push(page);
                }
                Tier::Ssd => {
                    self.trace.emit(
                        now,
                        TraceEvent::Tier1Miss {
                            page: page.0,
                            resident: TierTag::Ssd,
                        },
                    );
                    ssd_fetches.push(page);
                }
            }
        }

        let missing = tier2_fetches.len() + ssd_fetches.len();
        self.metrics.t1_misses += missing as u64;

        // Make room in Tier-1 — one eviction per incoming page beyond the
        // free slots. The evicting warp performs the transfer, so its
        // completion gates the warp, but it proceeds in parallel with the
        // fetch (opposite PCIe direction / staging buffers).
        let free_slots = self.clock.capacity() - self.clock.len();
        for _ in 0..missing.saturating_sub(free_slots) {
            let done = self.evict_one(now);
            if !self.config.async_eviction {
                ready = ready.max(done);
            }
        }

        // Every miss probes Tier-2 before touching the SSD (§3.4).
        let lookup = self.to_gpu.lookup_cost();
        let probe_done = now + lookup;

        if !tier2_fetches.is_empty() {
            self.metrics.t2_hits += tier2_fetches.len() as u64;
            let mut start = probe_done;
            for &page in &tier2_fetches {
                self.trace.emit(now, TraceEvent::Tier2Hit { page: page.0 });
                // An in-flight placement must land before it can be read.
                start = start.max(self.table.get(page).ready_at);
                self.tier2.remove(page);
            }
            let batch = TransferBatch {
                pages: tier2_fetches.len(),
                page_bytes: self.page_bytes(),
                threads: 32,
            };
            let done = self.to_gpu.transfer(start, batch, self.config.transfer);
            self.latency
                .tier2_fetch_ns
                .record(done.since(now).as_nanos());
            for &page in &tier2_fetches {
                self.clock.insert(page);
                self.on_refill(now, page);
                if self.trace.is_enabled() {
                    self.trace.emit(
                        now,
                        TraceEvent::Tier1Fill {
                            page: page.0,
                            source: TierTag::Host,
                            ready_ns: done.as_nanos(),
                        },
                    );
                }
                let meta = self.table.get_mut(page);
                meta.tier = Tier::Gpu;
                meta.ready_at = done;
                meta.touches_since_load = 1;
            }
            ready = ready.max(done);
        }

        for &page in &ssd_fetches {
            self.metrics.wasteful_lookups += 1;
            self.metrics.ssd_reads += 1;
            self.trace
                .emit(now, TraceEvent::WastefulLookup { page: page.0 });
            let offset = self.ssd_offset(page);
            let bytes = self.page_bytes();
            let done = self.ssd.read(probe_done, offset, bytes);
            self.latency.ssd_fetch_ns.record(done.since(now).as_nanos());
            self.clock.insert(page);
            self.on_refill(now, page);
            if self.trace.is_enabled() {
                self.trace.emit(
                    now,
                    TraceEvent::Tier1Fill {
                        page: page.0,
                        source: TierTag::Ssd,
                        ready_ns: done.as_nanos(),
                    },
                );
            }
            let meta = self.table.get_mut(page);
            meta.tier = Tier::Gpu;
            meta.ready_at = done;
            meta.touches_since_load = 1;
            ready = ready.max(done);
        }

        // Sequential prefetch (extension, off by default): pull the pages
        // following each demand SSD fetch in the background.
        if self.config.prefetch_degree > 0 {
            let degree = self.config.prefetch_degree as u64;
            for &p in &ssd_fetches {
                for d in 1..=degree {
                    self.prefetch(now, PageId(p.0 + d));
                }
            }
        }

        if access.write {
            for page in access.pages.iter() {
                self.table.get_mut(page).dirty = true;
            }
        }
        tier2_fetches.clear();
        ssd_fetches.clear();
        self.scratch_tier2 = tier2_fetches;
        self.scratch_ssd = ssd_fetches;
        ready
    }

    fn finish(&mut self, now: Time) -> Time {
        // Reap the trailing SSD completion events into the trace.
        self.ssd.flush_trace(now);
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmt_mem::TierGeometry;

    fn tiny_config(policy: PolicyKind) -> GmtConfig {
        GmtConfig::new(TierGeometry::from_tier1(8, 2.0, 2.0)).with_policy(policy)
    }

    fn read(gmt: &mut Gmt, now: Time, page: u64) -> Time {
        gmt.access(now, &WarpAccess::read(PageId(page)))
    }

    fn write(gmt: &mut Gmt, now: Time, page: u64) -> Time {
        gmt.access(now, &WarpAccess::write(PageId(page)))
    }

    #[test]
    fn cold_miss_goes_to_ssd_then_hits() {
        let mut gmt = Gmt::new(tiny_config(PolicyKind::Reuse));
        let t1 = read(&mut gmt, Time::ZERO, 0);
        assert!(t1 > Time::ZERO, "cold miss must cost SSD latency");
        let m = gmt.metrics();
        assert_eq!(m.ssd_reads, 1);
        assert_eq!(m.t1_misses, 1);
        let t2 = read(&mut gmt, t1, 0);
        assert_eq!(t2, t1, "hit in tier-1 is free");
        assert_eq!(gmt.metrics().t1_hits, 1);
    }

    #[test]
    fn tierorder_places_every_victim_in_tier2() {
        let mut gmt = Gmt::new(tiny_config(PolicyKind::TierOrder));
        // Fill tier-1 (8 pages) and stream 8 more: 8 evictions, all to T2.
        let mut now = Time::ZERO;
        for p in 0..16 {
            now = read(&mut gmt, now, p);
        }
        let m = gmt.metrics();
        assert_eq!(m.t1_evictions, 8);
        assert_eq!(m.t2_placements, 8);
        assert_eq!(gmt.tier2_occupancy(), 8);
    }

    #[test]
    fn tier2_hit_is_cheaper_than_ssd_read() {
        let mut gmt = Gmt::new(tiny_config(PolicyKind::TierOrder));
        let mut now = Time::ZERO;
        for p in 0..16 {
            now = read(&mut gmt, now, p);
        }
        // Page 0 was evicted to Tier-2. Re-reading it is a T2 hit.
        let before = now;
        let after_t2 = read(&mut gmt, before, 0);
        assert_eq!(gmt.metrics().t2_hits, 1);
        // Compare with a fresh SSD fetch at the same instant.
        let after_ssd = read(&mut gmt, before, 30);
        let t2_cost = after_t2.since(before);
        let ssd_cost = after_ssd.since(before);
        assert!(
            t2_cost.as_nanos() * 3 < ssd_cost.as_nanos(),
            "t2 {t2_cost:?} vs ssd {ssd_cost:?}"
        );
    }

    #[test]
    fn exclusive_tiers_no_duplication() {
        let mut gmt = Gmt::new(tiny_config(PolicyKind::TierOrder));
        let mut now = Time::ZERO;
        for p in 0..16 {
            now = read(&mut gmt, now, p);
        }
        // Promote page 0 back to Tier-1: it must leave Tier-2 (the
        // concurrent eviction refills the freed slot, so occupancy stays 8).
        now = read(&mut gmt, now, 0);
        assert!(
            !gmt.tier2.contains(PageId(0)),
            "no duplication across tiers"
        );
        assert_eq!(gmt.tier2_occupancy(), 8);
        // And it is now a Tier-1 hit.
        let hits_before = gmt.metrics().t1_hits;
        read(&mut gmt, now, 0);
        assert_eq!(gmt.metrics().t1_hits, hits_before + 1);
    }

    #[test]
    fn random_policy_splits_between_tiers() {
        let mut gmt = Gmt::new(tiny_config(PolicyKind::Random));
        let mut now = Time::ZERO;
        for p in 0..24 {
            now = read(&mut gmt, now, p);
        }
        let m = gmt.metrics();
        assert_eq!(m.t1_evictions, 16);
        assert!(m.t2_placements > 0, "some victims must go to tier-2");
        assert!(m.discards > 0, "some clean victims must be discarded");
        assert_eq!(m.t2_placements + m.discards + m.ssd_writes, 16);
    }

    #[test]
    fn dirty_bypass_writes_to_ssd() {
        let mut gmt = Gmt::new(tiny_config(PolicyKind::Random));
        let mut now = Time::ZERO;
        for p in 0..8 {
            now = write(&mut gmt, now, p);
        }
        for p in 8..24 {
            now = read(&mut gmt, now, p);
        }
        let m = gmt.metrics();
        assert!(
            m.ssd_writes > 0,
            "dirty victims bypassing tier-2 must be written"
        );
    }

    #[test]
    fn wasteful_lookups_counted_on_ssd_fallthrough() {
        let mut gmt = Gmt::new(tiny_config(PolicyKind::Reuse));
        let mut now = Time::ZERO;
        for p in 0..8 {
            now = read(&mut gmt, now, p);
        }
        let m = gmt.metrics();
        assert_eq!(
            m.wasteful_lookups, 8,
            "all cold misses probe tier-2 in vain"
        );
    }

    #[test]
    fn reuse_trains_predictor_on_round_trips() {
        let geometry = TierGeometry::from_tier1(8, 2.0, 2.0);
        let mut gmt = Gmt::new(GmtConfig::new(geometry).with_policy(PolicyKind::Reuse));
        // Cyclic scan over 24 pages: every page round-trips repeatedly.
        let mut now = Time::ZERO;
        for _ in 0..6 {
            for p in 0..24 {
                now = read(&mut gmt, now, p);
            }
        }
        let m = gmt.metrics();
        assert!(m.predictions > 0, "round trips must grade predictions");
        assert!(gmt.markov.total() > 0, "markov chain must have trained");
    }

    #[test]
    fn reuse_metrics_are_consistent() {
        let geometry = TierGeometry::from_tier1(16, 4.0, 2.0);
        let mut gmt = Gmt::new(GmtConfig::new(geometry).with_policy(PolicyKind::Reuse));
        let mut now = Time::ZERO;
        let mut rng = gmt_sim::rng::seeded(3);
        for _ in 0..2_000 {
            let p = rng.gen_range(0..geometry.total_pages as u64);
            now = read(&mut gmt, now, p);
        }
        let m = gmt.metrics();
        assert_eq!(m.t1_hits + m.t1_misses, 2_000);
        assert_eq!(m.t2_hits + m.wasteful_lookups, m.t1_misses);
        assert_eq!(
            m.t2_placements + m.discards + m.ssd_writes,
            m.t1_evictions,
            "every eviction must have exactly one destination"
        );
        // Tier-2 never exceeds capacity.
        assert!(gmt.tier2_occupancy() <= geometry.tier2_pages);
    }

    #[test]
    fn bypass_window_tracks_fraction() {
        let mut w = BypassWindow::new(4);
        assert_eq!(w.t3_fraction(), None);
        for _ in 0..3 {
            w.push(true);
        }
        assert_eq!(w.t3_fraction(), None, "window not yet full");
        w.push(false);
        assert_eq!(w.t3_fraction(), Some(0.75));
        w.push(true); // evicts the oldest `true`
        assert_eq!(w.t3_fraction(), Some(0.75));
        w.push(false);
        w.push(false);
        w.push(false);
        assert_eq!(w.t3_fraction(), Some(0.25));
    }

    #[test]
    fn scattered_access_faults_all_pages() {
        let mut gmt = Gmt::new(tiny_config(PolicyKind::Reuse));
        let access = WarpAccess::scattered(vec![PageId(0), PageId(1), PageId(2)], false);
        gmt.access(Time::ZERO, &access);
        let m = gmt.metrics();
        assert_eq!(m.t1_misses, 3);
        assert_eq!(m.ssd_reads, 3);
    }

    #[test]
    #[should_panic(expected = "outside the configured address space")]
    fn out_of_range_page_panics() {
        let mut gmt = Gmt::new(tiny_config(PolicyKind::Reuse));
        let total = gmt.config().geometry.total_pages as u64;
        read(&mut gmt, Time::ZERO, total);
    }

    #[test]
    fn latency_breakdown_reflects_the_tier_gap() {
        // §3.4: host fetches (~50 us) must be well below SSD fetches
        // (~130 us) in the measured distributions. Size the working set
        // to fit Tier-1 + Tier-2 so a cyclic scan produces Tier-2 hits
        // even under FIFO.
        let geometry = TierGeometry::from_tier1(8, 2.0, 0.9);
        let mut gmt = Gmt::new(GmtConfig::new(geometry).with_policy(PolicyKind::TierOrder));
        let mut now = Time::ZERO;
        for _ in 0..4 {
            for p in 0..geometry.total_pages as u64 {
                now = read(&mut gmt, now, p);
            }
        }
        let lat = gmt.latency_breakdown();
        assert!(
            lat.tier2_fetch_ns.count() > 0,
            "some tier-2 fetches must occur"
        );
        assert!(lat.ssd_fetch_ns.count() > 0, "some SSD fetches must occur");
        assert!(
            lat.tier2_fetch_ns.mean() * 2.0 < lat.ssd_fetch_ns.mean(),
            "tier-2 mean {} ns vs ssd mean {} ns",
            lat.tier2_fetch_ns.mean(),
            lat.ssd_fetch_ns.mean()
        );
    }

    #[test]
    fn forced_t2_heuristic_fires_under_tier3_pressure() {
        // A cyclic scan over >> T1+T2 pages: every RRD classifies long, so
        // without the 80% heuristic nothing would enter Tier-2.
        let geometry = TierGeometry::from_tier1(16, 2.0, 4.0);
        let mut gmt = Gmt::new(GmtConfig::new(geometry));
        let mut now = Time::ZERO;
        for _ in 0..6 {
            for p in 0..geometry.total_pages as u64 {
                now = read(&mut gmt, now, p);
            }
        }
        let m = gmt.metrics();
        assert!(
            m.forced_t2_placements > 0,
            "heuristic must fire on a long-RRD scan"
        );
        assert!(m.t2_hits > 0, "forced placements must convert into hits");
    }

    #[test]
    fn prefetch_stops_at_the_address_space_edge() {
        let geometry = TierGeometry::from_tier1(8, 2.0, 2.0);
        let mut config = GmtConfig::new(geometry);
        config.prefetch_degree = 7;
        let mut gmt = Gmt::new(config);
        // Touch the last page: prefetch targets beyond the space must be
        // ignored without panicking.
        let last = geometry.total_pages as u64 - 1;
        read(&mut gmt, Time::ZERO, last);
        assert_eq!(gmt.metrics().prefetches, 0);
        gmt.check_invariants().expect("invariants hold at the edge");
    }

    #[test]
    fn tierorder_churn_writes_dirty_tier2_spills_via_host_io() {
        let geometry = TierGeometry::from_tier1(4, 2.0, 4.0);
        let mut gmt = Gmt::new(GmtConfig::new(geometry).with_policy(PolicyKind::TierOrder));
        let mut now = Time::ZERO;
        // Dirty everything, then churn far past T1+T2 capacity so Tier-2's
        // FIFO must spill dirty pages to the SSD.
        for p in 0..geometry.total_pages as u64 {
            now = write(&mut gmt, now, p);
        }
        for p in 0..geometry.total_pages as u64 {
            now = read(&mut gmt, now, p);
        }
        let m = gmt.metrics();
        assert!(m.t2_writebacks > 0, "dirty spills must be written back");
        gmt.check_invariants().expect("invariants hold after churn");
    }

    #[test]
    fn prefetch_turns_sequential_misses_into_hits() {
        let geometry = TierGeometry::from_tier1(16, 4.0, 2.0);
        let mut plain = Gmt::new(GmtConfig::new(geometry));
        let mut config = GmtConfig::new(geometry);
        config.prefetch_degree = 4;
        let mut prefetching = Gmt::new(config);
        let mut now_a = Time::ZERO;
        let mut now_b = Time::ZERO;
        for p in 0..64 {
            now_a = read(&mut plain, now_a, p);
            now_b = read(&mut prefetching, now_b, p);
        }
        let a = plain.metrics();
        let b = prefetching.metrics();
        assert_eq!(a.prefetches, 0);
        assert!(
            b.prefetches > 0,
            "prefetcher must fire on a sequential scan"
        );
        assert!(
            b.t1_hits > a.t1_hits,
            "prefetched pages must convert misses into hits ({} vs {})",
            b.t1_hits,
            a.t1_hits
        );
    }

    #[test]
    fn async_eviction_never_slows_the_warp() {
        let geometry = TierGeometry::from_tier1(8, 2.0, 2.0);
        let sync_cfg = GmtConfig::new(geometry).with_policy(PolicyKind::TierOrder);
        let mut async_cfg = sync_cfg;
        async_cfg.async_eviction = true;
        let mut sync_gmt = Gmt::new(sync_cfg);
        let mut async_gmt = Gmt::new(async_cfg);
        let mut now_s = Time::ZERO;
        let mut now_a = Time::ZERO;
        for p in 0..48 {
            now_s = write(&mut sync_gmt, now_s, p);
            now_a = write(&mut async_gmt, now_a, p);
        }
        assert!(
            now_a <= now_s,
            "background eviction must not add critical-path time"
        );
    }
}
