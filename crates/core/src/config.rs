//! Configuration of the GMT runtime.

use gmt_mem::TierGeometry;
use gmt_pcie::{HostLinkConfig, TransferMethod};
use gmt_reuse::SamplerConfig;
use gmt_ssd::SsdConfig;
use serde::{Deserialize, Serialize};

/// Which Tier-1 eviction placement policy runs (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// GMT-TierOrder: every victim goes to Tier-2; Tier-2's own FIFO
    /// spills to Tier-3 (§2.1.1).
    TierOrder,
    /// GMT-Random: a fair coin decides Tier-2 vs Tier-3 (§2.1.2).
    Random,
    /// GMT-Reuse: the RRD predictor decides Tier-1/Tier-2/Tier-3
    /// (§2.1.3) — the paper's proposal.
    Reuse,
}

impl PolicyKind {
    /// All three policies, in the paper's presentation order.
    pub const ALL: [PolicyKind; 3] = [PolicyKind::TierOrder, PolicyKind::Random, PolicyKind::Reuse];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::TierOrder => "GMT-TierOrder",
            PolicyKind::Random => "GMT-Random",
            PolicyKind::Reuse => "GMT-Reuse",
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What happens when a victim should enter a full Tier-2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier2Insert {
    /// Evict the oldest Tier-2 page (FIFO, §2.2) to make room — used by
    /// GMT-TierOrder and GMT-Random.
    EvictFifo,
    /// Evict with a clock sweep (ablation; degenerates towards FIFO
    /// because exclusive tiers never re-reference resident pages).
    EvictClock,
    /// Evict a uniformly random resident page (ablation).
    EvictRandom,
    /// Reject the insertion and bypass to Tier-3 — GMT-Reuse's choice,
    /// since every Tier-2 resident is already in the same reuse
    /// equivalence class (§2.1.3 "Overview").
    RejectWhenFull,
}

/// Where the Markov predictor's 3×3 transition weights live.
///
/// The paper keeps per-page state "negligible"; sharing one global matrix
/// is the default here, with a per-page variant for ablation (pages with
/// idiosyncratic patterns predict better per-page; sparse histories train
/// slower).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MarkovScope {
    /// One transition matrix shared by all pages (default).
    Global,
    /// One transition matrix per page.
    PerPage,
}

/// Which history predictor GMT-Reuse consults at eviction time.
///
/// The paper's Fig. 4c shows per-page RRDs that *alternate* between
/// evictions — a pattern a 1-level "same as last time" predictor gets
/// wrong every single time, which is exactly why §2.1.3 builds the
/// 2-level-history Markov chain. The alternatives are kept for ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredictorKind {
    /// The paper's 3-state Markov chain over 2-level history (Fig. 5).
    Markov,
    /// Predict the page's last correct tier (1-level history).
    LastTier,
    /// Always predict Tier-2 (history-blind TierOrder-flavoured default).
    AlwaysHost,
}

/// Knobs specific to GMT-Reuse.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReuseConfig {
    /// VTD sampling / regression pipeline parameters.
    pub sampler: SamplerConfig,
    /// Transition-weight sharing for the Markov predictor.
    pub markov_scope: MarkovScope,
    /// The history predictor (default: the paper's Markov chain).
    pub predictor: PredictorKind,
    /// Fraction of recent Tier-3 predictions beyond which predicted-Tier-3
    /// victims are forced into Tier-2 anyway (paper §2.2: 80 %).
    pub bypass_threshold: f64,
    /// Number of recent evictions the threshold is measured over.
    pub bypass_window: usize,
    /// Maximum short-reuse candidates skipped per eviction before the
    /// clock's pick is evicted regardless (guards against livelock when
    /// every resident page predicts short-reuse).
    // gmt-lint: allow(C1): zero legitimately disables skipping, so every usize is valid.
    pub max_skips: usize,
}

impl Default for ReuseConfig {
    fn default() -> ReuseConfig {
        ReuseConfig {
            sampler: SamplerConfig::default(),
            markov_scope: MarkovScope::Global,
            predictor: PredictorKind::Markov,
            bypass_threshold: 0.8,
            bypass_window: 128,
            max_skips: 8,
        }
    }
}

/// A degenerate configuration caught by [`GmtConfig::validate`].
///
/// Each variant names the offending knob and carries the rejected value,
/// so a bad `GMT_T1_PAGES` surfaces as a one-line message instead of a
/// panic deep inside the manager.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// Tier-1 has zero pages.
    ZeroTier1,
    /// Tier-2 has zero pages.
    ZeroTier2,
    /// The address space holds zero pages.
    ZeroAddressSpace,
    /// Pages are zero bytes long.
    ZeroPageBytes,
    /// The sequential prefetch degree is at least the whole of Tier-1,
    /// so a single demand fetch would evict every resident page.
    PrefetchOverflowsTier1 {
        /// Configured prefetch degree.
        degree: usize,
        /// Tier-1 capacity in pages.
        tier1_pages: usize,
    },
    /// The §2.2 bypass threshold is outside `[0, 1]` (0–100 %).
    BypassThresholdOutOfRange {
        /// Configured threshold.
        threshold: f64,
    },
    /// The bypass window measures the Tier-3 fraction over zero evictions.
    ZeroBypassWindow,
    /// Tier-3 is striped over zero SSD devices.
    ZeroSsdDevices,
    /// The SSD timing model rejected one of its knobs.
    InvalidSsd {
        /// The device model's description of the bad knob.
        reason: &'static str,
    },
    /// The PCIe link calibration rejected one of its knobs.
    InvalidHostLink {
        /// The link model's description of the bad knob.
        reason: &'static str,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroTier1 => write!(f, "tier-1 must hold at least one page"),
            ConfigError::ZeroTier2 => write!(f, "tier-2 must hold at least one page"),
            ConfigError::ZeroAddressSpace => {
                write!(f, "the address space must hold at least one page")
            }
            ConfigError::ZeroPageBytes => write!(f, "pages must be at least one byte"),
            ConfigError::PrefetchOverflowsTier1 {
                degree,
                tier1_pages,
            } => write!(
                f,
                "prefetch degree {degree} would churn the whole of tier-1 \
                 ({tier1_pages} pages) on every demand fetch"
            ),
            ConfigError::BypassThresholdOutOfRange { threshold } => write!(
                f,
                "bypass threshold {threshold} is outside [0, 1] (0-100 %)"
            ),
            ConfigError::ZeroBypassWindow => {
                write!(f, "the bypass window must cover at least one eviction")
            }
            ConfigError::ZeroSsdDevices => {
                write!(f, "tier-3 must stripe over at least one SSD device")
            }
            ConfigError::InvalidSsd { reason } => write!(f, "ssd: {reason}"),
            ConfigError::InvalidHostLink { reason } => write!(f, "host link: {reason}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full configuration of a [`crate::Gmt`] instance.
///
/// # Examples
///
/// ```
/// use gmt_core::{GmtConfig, PolicyKind};
/// use gmt_mem::TierGeometry;
///
/// let config = GmtConfig {
///     policy: PolicyKind::Reuse,
///     ..GmtConfig::new(TierGeometry::default())
/// };
/// assert_eq!(config.policy, PolicyKind::Reuse);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GmtConfig {
    /// Tier capacities.
    pub geometry: TierGeometry,
    /// Eviction placement policy.
    pub policy: PolicyKind,
    /// Tier-1 ⇄ Tier-2 transfer mechanism (paper default: Hybrid-32T).
    pub transfer: TransferMethod,
    /// Tier-2 insertion behaviour when full. `None` picks the paper's
    /// default for the policy (FIFO for TierOrder/Random, reject for
    /// Reuse).
    pub tier2_insert: Option<Tier2Insert>,
    /// PCIe GPU ⇄ host path calibration.
    pub host_link: HostLinkConfig,
    /// SSD calibration.
    pub ssd: SsdConfig,
    /// Number of identical SSDs striped at page granularity (BaM-style
    /// arrays; the paper's platform has 1).
    pub ssd_devices: usize,
    /// GMT-Reuse knobs.
    pub reuse: ReuseConfig,
    /// Sequential prefetch degree: on every demand SSD fetch of page `p`,
    /// also fetch up to this many following pages in the background.
    /// `0` (the default) reproduces the paper's demand-only movement
    /// (§2 common parameter 2); non-zero values implement the
    /// prefetching extension the paper leaves open.
    pub prefetch_degree: usize,
    /// Perform eviction transfers asynchronously instead of on the
    /// faulting warp's critical path — the §5 "future work" background
    /// orchestration. Defaults to `false` (the published behaviour).
    pub async_eviction: bool,
    /// Seed for GMT-Random's coin and any other stochastic choice.
    // gmt-lint: allow(C1): any u64 is a valid PRNG seed; there is no range to check.
    pub seed: u64,
}

impl GmtConfig {
    /// The paper's default runtime for the given capacities: GMT-Reuse
    /// with Hybrid-32T transfers.
    pub fn new(geometry: TierGeometry) -> GmtConfig {
        GmtConfig {
            geometry,
            policy: PolicyKind::Reuse,
            transfer: TransferMethod::hybrid_32t(),
            tier2_insert: None,
            host_link: HostLinkConfig::default(),
            ssd: SsdConfig::default(),
            ssd_devices: 1,
            reuse: ReuseConfig::default(),
            prefetch_degree: 0,
            async_eviction: false,
            seed: 0x6d74, // "mt"
        }
    }

    /// Same configuration with a different policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> GmtConfig {
        self.policy = policy;
        self
    }

    /// Rejects degenerate configurations before they can panic deep in
    /// the manager: zero-capacity tiers or pages, a prefetch degree that
    /// would churn all of Tier-1 per fetch, and out-of-range GMT-Reuse
    /// bypass knobs.
    ///
    /// [`GmtBuilder::build`](crate::GmtBuilder::build) and
    /// [`Gmt::new`](crate::Gmt::new) call this and panic with the error's
    /// message; fallible callers (CLIs parsing `GMT_T1_PAGES`, services
    /// admitting tenant configs) should call it directly.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found.
    ///
    /// # Examples
    ///
    /// ```
    /// use gmt_core::{ConfigError, GmtConfig};
    /// use gmt_mem::TierGeometry;
    ///
    /// let mut config = GmtConfig::new(TierGeometry::from_tier1(64, 4.0, 2.0));
    /// assert!(config.validate().is_ok());
    /// config.prefetch_degree = 64;
    /// assert!(matches!(
    ///     config.validate(),
    ///     Err(ConfigError::PrefetchOverflowsTier1 { .. })
    /// ));
    /// ```
    pub fn validate(&self) -> Result<(), ConfigError> {
        let g = &self.geometry;
        if g.tier1_pages == 0 {
            return Err(ConfigError::ZeroTier1);
        }
        if g.tier2_pages == 0 {
            return Err(ConfigError::ZeroTier2);
        }
        if g.total_pages == 0 {
            return Err(ConfigError::ZeroAddressSpace);
        }
        if g.page_bytes == 0 {
            return Err(ConfigError::ZeroPageBytes);
        }
        if self.prefetch_degree >= g.tier1_pages {
            return Err(ConfigError::PrefetchOverflowsTier1 {
                degree: self.prefetch_degree,
                tier1_pages: g.tier1_pages,
            });
        }
        let threshold = self.reuse.bypass_threshold;
        if !(0.0..=1.0).contains(&threshold) {
            return Err(ConfigError::BypassThresholdOutOfRange { threshold });
        }
        if self.reuse.bypass_window == 0 {
            return Err(ConfigError::ZeroBypassWindow);
        }
        if self.ssd_devices == 0 {
            return Err(ConfigError::ZeroSsdDevices);
        }
        self.ssd
            .validate()
            .map_err(|reason| ConfigError::InvalidSsd { reason })?;
        self.host_link
            .validate()
            .map_err(|reason| ConfigError::InvalidHostLink { reason })?;
        Ok(())
    }

    /// The effective Tier-2 insertion mode (resolving the per-policy
    /// default).
    pub fn effective_tier2_insert(&self) -> Tier2Insert {
        self.tier2_insert.unwrap_or(match self.policy {
            PolicyKind::TierOrder | PolicyKind::Random => Tier2Insert::EvictFifo,
            PolicyKind::Reuse => Tier2Insert::RejectWhenFull,
        })
    }
}

impl Default for GmtConfig {
    fn default() -> GmtConfig {
        GmtConfig::new(TierGeometry::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_match_paper() {
        assert_eq!(PolicyKind::Reuse.to_string(), "GMT-Reuse");
        assert_eq!(PolicyKind::TierOrder.to_string(), "GMT-TierOrder");
        assert_eq!(PolicyKind::Random.to_string(), "GMT-Random");
    }

    #[test]
    fn tier2_insert_defaults_follow_policy() {
        let base = GmtConfig::default();
        assert_eq!(
            base.with_policy(PolicyKind::TierOrder)
                .effective_tier2_insert(),
            Tier2Insert::EvictFifo
        );
        assert_eq!(
            base.with_policy(PolicyKind::Reuse).effective_tier2_insert(),
            Tier2Insert::RejectWhenFull
        );
    }

    #[test]
    fn explicit_tier2_insert_overrides() {
        let c = GmtConfig {
            tier2_insert: Some(Tier2Insert::EvictFifo),
            ..GmtConfig::default()
        };
        assert_eq!(c.effective_tier2_insert(), Tier2Insert::EvictFifo);
    }

    #[test]
    fn validate_accepts_the_defaults_and_names_each_degeneracy() {
        use gmt_mem::TierGeometry;
        assert_eq!(GmtConfig::default().validate(), Ok(()));

        let mut zero_t1 = GmtConfig::default();
        zero_t1.geometry.tier1_pages = 0;
        assert_eq!(zero_t1.validate(), Err(ConfigError::ZeroTier1));

        let mut zero_t2 = GmtConfig::default();
        zero_t2.geometry.tier2_pages = 0;
        assert_eq!(zero_t2.validate(), Err(ConfigError::ZeroTier2));

        let mut prefetch = GmtConfig::new(TierGeometry::from_tier1(8, 2.0, 2.0));
        prefetch.prefetch_degree = 8;
        assert!(matches!(
            prefetch.validate(),
            Err(ConfigError::PrefetchOverflowsTier1 {
                degree: 8,
                tier1_pages: 8
            })
        ));
        prefetch.prefetch_degree = 7;
        assert_eq!(prefetch.validate(), Ok(()));

        for bad in [-0.1, 1.1, f64::NAN] {
            let mut config = GmtConfig::default();
            config.reuse.bypass_threshold = bad;
            assert!(
                matches!(
                    config.validate(),
                    Err(ConfigError::BypassThresholdOutOfRange { .. })
                ),
                "threshold {bad} must be rejected"
            );
        }

        let mut window = GmtConfig::default();
        window.reuse.bypass_window = 0;
        assert_eq!(window.validate(), Err(ConfigError::ZeroBypassWindow));

        let devices = GmtConfig {
            ssd_devices: 0,
            ..GmtConfig::default()
        };
        assert_eq!(devices.validate(), Err(ConfigError::ZeroSsdDevices));

        let mut ssd = GmtConfig::default();
        ssd.ssd.channels = 0;
        assert_eq!(
            ssd.validate(),
            Err(ConfigError::InvalidSsd {
                reason: "channels must be at least one flash channel",
            })
        );

        let mut link = GmtConfig::default();
        link.host_link.link_bytes_per_sec = 0.0;
        assert_eq!(
            link.validate(),
            Err(ConfigError::InvalidHostLink {
                reason: "link_bytes_per_sec must be finite and positive",
            })
        );
    }

    #[test]
    fn config_errors_render_readable_messages() {
        let err = ConfigError::PrefetchOverflowsTier1 {
            degree: 9,
            tier1_pages: 4,
        };
        let msg = err.to_string();
        assert!(msg.contains('9') && msg.contains('4'), "{msg}");
        assert!(ConfigError::ZeroTier1.to_string().contains("tier-1"));
    }

    #[test]
    fn default_reuse_knobs_match_paper() {
        let r = ReuseConfig::default();
        assert_eq!(r.bypass_threshold, 0.8);
        assert_eq!(r.sampler.batch_size, 10_000);
    }
}
