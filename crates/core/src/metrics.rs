//! Runtime counters backing every evaluation figure.

use serde::{Deserialize, Serialize};

/// Counters collected by the tiering runtimes (GMT, BaM, HMM share this
/// shape so figures compare like for like).
///
/// The mapping to paper artifacts:
///
/// * Fig. 8b — `ssd_reads + ssd_writes (+ t2_writebacks)` vs BaM's,
/// * Fig. 9 — `predictions_correct / predictions`,
/// * Fig. 10a — `wasteful_lookups / t1_misses`,
/// * Fig. 10b — `t2_placements` and `t2_hits` vs BaM's SSD transfers.
///
/// # Examples
///
/// ```
/// use gmt_core::TieringMetrics;
/// let m = TieringMetrics {
///     t1_hits: 90,
///     t1_misses: 10,
///     t2_hits: 6,
///     wasteful_lookups: 4,
///     ..TieringMetrics::default()
/// };
/// assert_eq!(m.t1_hit_rate(), 0.9);
/// assert_eq!(m.t2_hit_rate(), 0.6);
/// assert_eq!(m.wasteful_lookup_rate(), 0.4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TieringMetrics {
    /// Coalesced warp accesses serviced.
    pub accesses: u64,
    /// Page touches that hit Tier-1.
    pub t1_hits: u64,
    /// Page touches that missed Tier-1.
    pub t1_misses: u64,
    /// Tier-1 misses satisfied from Tier-2 (useful lookups).
    pub t2_hits: u64,
    /// Tier-1 misses that probed Tier-2 and fell through to the SSD
    /// (unsuccessful lookups adding ~50 ns to the critical path, §3.4).
    pub wasteful_lookups: u64,
    /// Pages read from the SSD into Tier-1.
    pub ssd_reads: u64,
    /// Dirty pages written from Tier-1 to the SSD (bypass write-backs).
    pub ssd_writes: u64,
    /// Pages evicted from Tier-1 (any destination).
    pub t1_evictions: u64,
    /// Tier-1 victims placed into Tier-2.
    pub t2_placements: u64,
    /// Tier-1 victims bypassed to Tier-3 while clean (no I/O at all).
    pub discards: u64,
    /// Dirty Tier-2 victims written to the SSD by host I/O (off the
    /// GPU's critical path).
    pub t2_writebacks: u64,
    /// Clean Tier-2 victims dropped.
    pub t2_drops: u64,
    /// Eviction candidates kept in Tier-1 because GMT-Reuse predicted
    /// short reuse.
    pub short_reuse_keeps: u64,
    /// Predicted-Tier-3 victims forced into Tier-2 by the 80 % heuristic
    /// (§2.2).
    pub forced_t2_placements: u64,
    /// Pages speculatively fetched by the sequential prefetcher
    /// (0 unless `prefetch_degree > 0`).
    pub prefetches: u64,
    /// GMT-Reuse tier predictions whose correctness became known.
    pub predictions: u64,
    /// ... of which matched the correct tier (Fig. 9).
    pub predictions_correct: u64,
}

impl TieringMetrics {
    /// Tier-1 hit rate over page touches.
    pub fn t1_hit_rate(&self) -> f64 {
        ratio(self.t1_hits, self.t1_hits + self.t1_misses)
    }

    /// Fraction of Tier-1 misses satisfied from Tier-2.
    pub fn t2_hit_rate(&self) -> f64 {
        ratio(self.t2_hits, self.t1_misses)
    }

    /// Fraction of Tier-1 misses whose Tier-2 probe was wasted (Fig. 10a).
    pub fn wasteful_lookup_rate(&self) -> f64 {
        ratio(self.wasteful_lookups, self.t1_misses)
    }

    /// GMT-Reuse prediction accuracy (Fig. 9).
    pub fn prediction_accuracy(&self) -> f64 {
        ratio(self.predictions_correct, self.predictions)
    }

    /// Total SSD I/O operations on the GPU's critical path plus host
    /// write-backs (Fig. 8b compares this against BaM).
    pub fn ssd_ios(&self) -> u64 {
        self.ssd_reads + self.ssd_writes + self.t2_writebacks
    }

    /// Pages moved between Tier-1 and Tier-2 in either direction
    /// (Fig. 10b's PCIe-traffic numerator).
    pub fn tier12_transfers(&self) -> u64 {
        self.t2_placements + self.t2_hits
    }

    /// Adds every counter of `other` into `self`.
    ///
    /// Multi-tenant runtimes keep one `TieringMetrics` per tenant;
    /// merging them all reconstitutes the hierarchy-wide aggregate, so
    /// per-tenant accounting loses nothing relative to a single global
    /// bookkeeper.
    ///
    /// # Examples
    ///
    /// ```
    /// use gmt_core::TieringMetrics;
    /// let mut total = TieringMetrics { t1_hits: 1, ..TieringMetrics::default() };
    /// total.merge(&TieringMetrics { t1_hits: 2, t1_misses: 1, ..TieringMetrics::default() });
    /// assert_eq!(total.t1_hits, 3);
    /// assert_eq!(total.t1_misses, 1);
    /// ```
    pub fn merge(&mut self, other: &TieringMetrics) {
        let TieringMetrics {
            accesses,
            t1_hits,
            t1_misses,
            t2_hits,
            wasteful_lookups,
            ssd_reads,
            ssd_writes,
            t1_evictions,
            t2_placements,
            discards,
            t2_writebacks,
            t2_drops,
            short_reuse_keeps,
            forced_t2_placements,
            prefetches,
            predictions,
            predictions_correct,
        } = other;
        self.accesses += accesses;
        self.t1_hits += t1_hits;
        self.t1_misses += t1_misses;
        self.t2_hits += t2_hits;
        self.wasteful_lookups += wasteful_lookups;
        self.ssd_reads += ssd_reads;
        self.ssd_writes += ssd_writes;
        self.t1_evictions += t1_evictions;
        self.t2_placements += t2_placements;
        self.discards += discards;
        self.t2_writebacks += t2_writebacks;
        self.t2_drops += t2_drops;
        self.short_reuse_keeps += short_reuse_keeps;
        self.forced_t2_placements += forced_t2_placements;
        self.prefetches += prefetches;
        self.predictions += predictions;
        self.predictions_correct += predictions_correct;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_zero_on_empty_metrics() {
        let m = TieringMetrics::default();
        assert_eq!(m.t1_hit_rate(), 0.0);
        assert_eq!(m.t2_hit_rate(), 0.0);
        assert_eq!(m.prediction_accuracy(), 0.0);
        assert_eq!(m.wasteful_lookup_rate(), 0.0);
    }

    #[test]
    fn derived_rates() {
        let m = TieringMetrics {
            t1_hits: 75,
            t1_misses: 25,
            t2_hits: 10,
            wasteful_lookups: 15,
            predictions: 20,
            predictions_correct: 18,
            ..TieringMetrics::default()
        };
        assert_eq!(m.t1_hit_rate(), 0.75);
        assert_eq!(m.t2_hit_rate(), 0.4);
        assert_eq!(m.wasteful_lookup_rate(), 0.6);
        assert_eq!(m.prediction_accuracy(), 0.9);
    }

    #[test]
    fn merge_sums_every_field() {
        let a = TieringMetrics {
            accesses: 1,
            t1_hits: 2,
            t1_misses: 3,
            t2_hits: 4,
            wasteful_lookups: 5,
            ssd_reads: 6,
            ssd_writes: 7,
            t1_evictions: 8,
            t2_placements: 9,
            discards: 10,
            t2_writebacks: 11,
            t2_drops: 12,
            short_reuse_keeps: 13,
            forced_t2_placements: 14,
            prefetches: 15,
            predictions: 16,
            predictions_correct: 17,
        };
        let mut merged = a;
        merged.merge(&a);
        assert_eq!(merged.accesses, 2);
        assert_eq!(merged.t1_hits, 4);
        assert_eq!(merged.wasteful_lookups, 10);
        assert_eq!(merged.short_reuse_keeps, 26);
        assert_eq!(merged.predictions_correct, 34);
        let mut identity = TieringMetrics::default();
        identity.merge(&a);
        assert_eq!(identity, a, "merging into zero is the identity");
    }

    #[test]
    fn io_totals() {
        let m = TieringMetrics {
            ssd_reads: 5,
            ssd_writes: 3,
            t2_writebacks: 2,
            t2_placements: 7,
            t2_hits: 4,
            ..TieringMetrics::default()
        };
        assert_eq!(m.ssd_ios(), 10);
        assert_eq!(m.tier12_transfers(), 11);
    }
}
