//! The GMT runtime: a GPU-orchestrated 3-tier memory hierarchy.
//!
//! This crate implements the paper's primary contribution — the tiering
//! runtime that fields every coalesced warp access against GPU memory
//! (Tier-1), host memory (Tier-2) and the SSD (Tier-3), with *the GPU*
//! orchestrating all critical-path transfers:
//!
//! * Tier-1 uses clock replacement; misses always fill into Tier-1
//!   directly from whichever tier holds the page (the up-path bypasses
//!   Tier-2, as in BaM — §2, common parameter 4).
//! * On every Tier-1 eviction, a [`PolicyKind`] decides where the victim
//!   goes: always Tier-2 (**GMT-TierOrder**), a coin flip
//!   (**GMT-Random**), or the reuse predictor (**GMT-Reuse**, §2.1.3)
//!   combining VTD sampling + OLS regression, Eq. 1 classification and the
//!   3-state Markov chain — plus the 80 % Tier-3-pressure heuristic
//!   (§2.2) that keeps Tier-2 utilized when predictions skew long.
//! * Tier-1 ⇄ Tier-2 moves use the Hybrid-32T transfer engine (§2.3);
//!   Tier-1 ⇄ Tier-3 moves use BaM-style GPU-direct NVMe; Tier-2 → Tier-3
//!   write-backs use host userspace I/O off the critical path.
//!
//! The entry point is [`Gmt`], which implements
//! [`gmt_gpu::MemoryBackend`] and can be replayed by [`gmt_gpu::Executor`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod config;
mod manager;
mod metrics;
mod tier2;

pub use builder::GmtBuilder;
pub use config::{
    ConfigError, GmtConfig, MarkovScope, PolicyKind, PredictorKind, ReuseConfig, Tier2Insert,
};
pub use manager::{Gmt, LatencyBreakdown, TierSnapshot};
pub use metrics::TieringMetrics;
