//! Property tests for [`TieringMetrics`]: every derived rate must stay
//! finite (never NaN, never a panic) on arbitrary counter values,
//! including the zero-access / zero-prediction edges, and `merge` must
//! behave like element-wise addition.

use gmt_core::TieringMetrics;
use proptest::prelude::*;

/// Counters capped so sums like `t1_hits + t1_misses` cannot overflow.
fn counter() -> impl Strategy<Value = u64> {
    0..u64::MAX / 8
}

fn metrics() -> impl Strategy<Value = TieringMetrics> {
    (
        (
            counter(),
            counter(),
            counter(),
            counter(),
            counter(),
            counter(),
        ),
        (
            counter(),
            counter(),
            counter(),
            counter(),
            counter(),
            counter(),
        ),
        (counter(), counter(), counter(), counter(), counter()),
    )
        .prop_map(|(a, b, c)| TieringMetrics {
            accesses: a.0,
            t1_hits: a.1,
            t1_misses: a.2,
            t2_hits: a.3,
            wasteful_lookups: a.4,
            ssd_reads: a.5,
            ssd_writes: b.0,
            t1_evictions: b.1,
            t2_placements: b.2,
            discards: b.3,
            t2_writebacks: b.4,
            t2_drops: b.5,
            short_reuse_keeps: c.0,
            forced_t2_placements: c.1,
            prefetches: c.2,
            predictions: c.3,
            predictions_correct: c.4,
        })
}

proptest! {
    #[test]
    fn rates_are_finite_on_arbitrary_counters(m in metrics()) {
        for rate in [
            m.t1_hit_rate(),
            m.t2_hit_rate(),
            m.wasteful_lookup_rate(),
            m.prediction_accuracy(),
        ] {
            prop_assert!(rate.is_finite(), "rate {rate} is not finite for {m:?}");
            prop_assert!(rate >= 0.0);
        }
    }

    // The zero-denominator edges specifically: zeroing the fields a
    // rate divides by must yield 0.0, not NaN or a panic.
    #[test]
    fn zero_denominators_yield_zero(m in metrics()) {
        let no_touches = TieringMetrics { t1_hits: 0, t1_misses: 0, ..m };
        prop_assert_eq!(no_touches.t1_hit_rate(), 0.0);
        let no_misses = TieringMetrics { t1_misses: 0, ..m };
        prop_assert_eq!(no_misses.t2_hit_rate(), 0.0);
        prop_assert_eq!(no_misses.wasteful_lookup_rate(), 0.0);
        let no_predictions = TieringMetrics { predictions: 0, ..m };
        prop_assert_eq!(no_predictions.prediction_accuracy(), 0.0);
    }

    #[test]
    fn rates_with_nonzero_denominators_land_in_unit_interval(
        hits in counter(),
        misses in 1..u64::MAX / 8,
        predictions in 1..u64::MAX / 8,
    ) {
        let m = TieringMetrics {
            t1_hits: hits,
            t1_misses: misses,
            t2_hits: hits.min(misses),
            wasteful_lookups: misses - hits.min(misses),
            predictions,
            predictions_correct: hits.min(predictions),
            ..TieringMetrics::default()
        };
        prop_assert!((0.0..=1.0).contains(&m.t1_hit_rate()));
        prop_assert!((0.0..=1.0).contains(&m.t2_hit_rate()));
        prop_assert!((0.0..=1.0).contains(&m.wasteful_lookup_rate()));
        prop_assert!((0.0..=1.0).contains(&m.prediction_accuracy()));
    }

    // `merge` is element-wise addition: zero is its identity and the
    // derived totals of a merge match the sums of the parts.
    #[test]
    fn merge_acts_like_addition(a in metrics(), b in metrics()) {
        let mut left = a;
        left.merge(&b);
        let mut right = b;
        right.merge(&a);
        prop_assert_eq!(left, right, "merge must commute");
        prop_assert_eq!(left.ssd_ios(), a.ssd_ios() + b.ssd_ios());
        prop_assert_eq!(
            left.tier12_transfers(),
            a.tier12_transfers() + b.tier12_transfers()
        );
        let mut with_zero = a;
        with_zero.merge(&TieringMetrics::default());
        prop_assert_eq!(with_zero, a, "zero is the merge identity");
    }
}
