//! SSSP over a GAP-Kron graph (from the BaM evaluation).
//!
//! Bellman-Ford-style relaxation rounds: the first round touches every
//! vertex, subsequent rounds touch a shrinking active set (distances
//! stabilize). Relaxations write neighbors' distance pages. The profile
//! is high reuse (Table 2: 79.96 %) with Tier-3-biased cross-round
//! distances plus a Tier-1/Tier-2 component from hubs — slightly softer
//! than PageRank's, matching Fig. 7.

use gmt_mem::{PageId, WarpAccess};
use rand::Rng;

use crate::kron::{scale_bits_for_pages, CsrLayout, KronConfig, KronGraph};
use crate::util::push_scattered;
use crate::{Workload, WorkloadScale};

/// The SSSP workload.
///
/// # Examples
///
/// ```
/// use gmt_workloads::{sssp::Sssp, Workload, WorkloadScale};
/// let w = Sssp::with_scale(&WorkloadScale::tiny());
/// assert!(w.trace(0).iter().any(|a| a.write));
/// ```
#[derive(Debug, Clone)]
pub struct Sssp {
    graph: KronGraph,
    layout: CsrLayout,
    /// Fraction of vertices active in each relaxation round.
    round_activity: Vec<f64>,
}

impl Sssp {
    /// Generates a GAP-Kron graph sized near the scale; five relaxation
    /// rounds with geometrically shrinking activity.
    pub fn with_scale(scale: &WorkloadScale) -> Sssp {
        Sssp::on_graph(
            KronGraph::generate(
                KronConfig::gap(scale_bits_for_pages(scale.total_pages)),
                0x555,
            ),
            vec![1.0, 0.6, 0.35, 0.2, 0.1],
        )
    }

    /// Runs over an explicit graph with explicit per-round activity.
    ///
    /// # Panics
    ///
    /// Panics if `round_activity` is empty or has values outside `[0, 1]`.
    pub fn on_graph(graph: KronGraph, round_activity: Vec<f64>) -> Sssp {
        assert!(!round_activity.is_empty(), "sssp needs at least one round");
        assert!(
            round_activity.iter().all(|f| (0.0..=1.0).contains(f)),
            "activity fractions must be in [0, 1]"
        );
        let layout = CsrLayout::for_graph(&graph);
        Sssp {
            graph,
            layout,
            round_activity,
        }
    }
}

impl Workload for Sssp {
    fn name(&self) -> &'static str {
        "SSSP"
    }

    fn total_pages(&self) -> usize {
        self.layout.total_pages()
    }

    fn trace(&self, seed: u64) -> Vec<WarpAccess> {
        let g = &self.graph;
        let layout = &self.layout;
        let epp = layout.entries_per_page();
        let mut rng = gmt_sim::rng::seeded(seed ^ 0x5550);
        let mut out = Vec::new();
        for &activity in &self.round_activity {
            let active: Vec<u32> = (0..g.vertices)
                .filter(|_| rng.gen::<f64>() < activity)
                .collect();
            for chunk in active.chunks(32) {
                let offset_pages: Vec<PageId> = chunk
                    .iter()
                    .map(|&v| PageId(layout.offset_page(v)))
                    .collect();
                push_scattered(&mut out, offset_pages, false);
                let mut edge_pages = Vec::new();
                let mut dist_reads = Vec::new();
                let mut relaxations = Vec::new();
                for &v in chunk {
                    let (start, end) = (
                        g.offsets[v as usize] as u64,
                        g.offsets[v as usize + 1] as u64,
                    );
                    let mut i = start;
                    while i < end {
                        edge_pages.push(PageId(layout.edge_page(i)));
                        i = (i / epp + 1) * epp;
                    }
                    dist_reads.push(PageId(layout.value_page(v)));
                    for &u in g.neighbors(v) {
                        // A quarter of relaxations improve the neighbor's
                        // distance (a write); the rest only read it.
                        if rng.gen::<f64>() < 0.25 {
                            relaxations.push(PageId(layout.value_page(u)));
                        } else {
                            dist_reads.push(PageId(layout.value_page(u)));
                        }
                    }
                }
                push_scattered(&mut out, edge_pages, false);
                push_scattered(&mut out, dist_reads, false);
                push_scattered(&mut out, relaxations, true);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Sssp {
        Sssp::on_graph(KronGraph::generate(KronConfig::gap(12), 5), vec![1.0, 0.5])
    }

    #[test]
    fn rounds_shrink() {
        let w = small();
        let full = Sssp::on_graph(KronGraph::generate(KronConfig::gap(12), 5), vec![1.0]);
        let trace_two = w.trace(1).len();
        let trace_one = full.trace(1).len();
        assert!(
            trace_two < trace_one * 2,
            "second round must be smaller than the first"
        );
        assert!(trace_two > trace_one, "second round must add accesses");
    }

    #[test]
    fn relaxations_write_distance_pages() {
        let w = small();
        let trace = w.trace(1);
        assert!(
            trace.iter().any(|a| a.write),
            "sssp must relax some distances"
        );
    }

    #[test]
    fn traces_vary_with_seed() {
        let w = small();
        assert_ne!(w.trace(1), w.trace(2), "active sets are seed-dependent");
    }
}
