//! The paper's nine evaluation applications (Table 2) as warp-access
//! trace generators, plus the GAP-Kron graph substrate they run on.
//!
//! GMT never inspects a kernel's arithmetic — only the *page-level access
//! stream* it emits. Each generator here reproduces the corresponding
//! application's documented memory behaviour: its array layout, its sweep
//! structure, and — the two quantities that drive every result in the
//! paper — its page-reuse percentage and the tier bias of its Remaining
//! Reuse Distances (Fig. 7):
//!
//! | Workload | Reuse character | RRD bias |
//! |---|---|---|
//! | [`lavamd::LavaMd`] | very low (≈1 %) | Tier-1 |
//! | [`pathfinder::Pathfinder`] | low (≈19 %) | Tier-1 |
//! | [`bfs::Bfs`] | medium (≈33 %) | Tier-2 |
//! | [`multivectoradd::MultiVectorAdd`] | medium (40 %) | Tier-2 |
//! | [`srad::Srad`] | high (≈83 %) | Tier-2 |
//! | [`backprop::Backprop`] | high (≈94 %) | Tier-2 |
//! | [`pagerank::PageRank`] | high (≈90 %) | Tier-3 |
//! | [`sssp::Sssp`] | high (≈80 %) | Tier-3 |
//! | [`hotspot::Hotspot`] | high (≈81 %) | Tier-3 |
//!
//! Regular applications size themselves to a [`WorkloadScale`] derived
//! from the tier geometry (working set = over-subscription × capacity);
//! graph applications are sized by their graph, and the geometry is
//! derived *from* them (paper §3.5) via
//! [`gmt_mem::TierGeometry::from_total`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backprop;
pub mod bfs;
pub mod compose;
pub mod hotspot;
pub mod kron;
pub mod lavamd;
pub mod multivectoradd;
pub mod pagerank;
pub mod pathfinder;
pub mod srad;
pub mod sssp;
pub mod synthetic;

mod scale;
mod util;

pub use compose::Shifted;
pub use scale::WorkloadScale;

use gmt_mem::WarpAccess;

/// An application whose page-access trace can be replayed through any
/// tiering runtime.
///
/// Workloads are `Send + Sync`: they are immutable once constructed
/// (generation state lives in `trace`'s locals), so harnesses can share
/// them across threads and cache them in statics.
pub trait Workload: Send + Sync {
    /// The paper's name for the application.
    fn name(&self) -> &'static str;

    /// Extent of the address space the trace touches, in pages.
    fn total_pages(&self) -> usize;

    /// Generates the access trace. The same `(workload, seed)` pair always
    /// produces the identical trace, so paired runs across runtimes see
    /// the same accesses.
    fn trace(&self, seed: u64) -> Vec<WarpAccess>;
}

/// The full Table-2 suite at a given scale, in the paper's figure order.
///
/// Graph applications receive the scale only to size their synthetic
/// GAP-Kron graph proportionally.
pub fn suite(scale: &WorkloadScale) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(lavamd::LavaMd::with_scale(scale)),
        Box::new(pathfinder::Pathfinder::with_scale(scale)),
        Box::new(bfs::Bfs::with_scale(scale)),
        Box::new(multivectoradd::MultiVectorAdd::with_scale(scale)),
        Box::new(srad::Srad::with_scale(scale)),
        Box::new(backprop::Backprop::with_scale(scale)),
        Box::new(pagerank::PageRank::with_scale(scale)),
        Box::new(sssp::Sssp::with_scale(scale)),
        Box::new(hotspot::Hotspot::with_scale(scale)),
    ]
}

/// The non-graph subset used by the paper's Fig. 13 (the Tier-1 = 32 GB
/// experiment doubles dataset sizes, which only regular applications can
/// do freely).
pub fn non_graph_suite(scale: &WorkloadScale) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(lavamd::LavaMd::with_scale(scale)),
        Box::new(pathfinder::Pathfinder::with_scale(scale)),
        Box::new(multivectoradd::MultiVectorAdd::with_scale(scale)),
        Box::new(srad::Srad::with_scale(scale)),
        Box::new(backprop::Backprop::with_scale(scale)),
        Box::new(hotspot::Hotspot::with_scale(scale)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_all_nine_in_paper_order() {
        let names: Vec<_> = suite(&WorkloadScale::tiny())
            .iter()
            .map(|w| w.name())
            .collect();
        assert_eq!(
            names,
            vec![
                "lavaMD",
                "Pathfinder",
                "BFS",
                "MultiVectorAdd",
                "Srad",
                "Backprop",
                "PageRank",
                "SSSP",
                "Hotspot"
            ]
        );
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        for w in suite(&WorkloadScale::tiny()) {
            let a = w.trace(42);
            let b = w.trace(42);
            assert_eq!(a, b, "{} trace must be reproducible", w.name());
        }
    }

    #[test]
    fn traces_stay_inside_declared_address_space() {
        for w in suite(&WorkloadScale::tiny()) {
            let limit = w.total_pages() as u64;
            for access in w.trace(7) {
                for page in access.pages.iter() {
                    assert!(page.0 < limit, "{} touched {page} >= {limit}", w.name());
                }
            }
        }
    }

    #[test]
    fn traces_are_non_trivial() {
        for w in suite(&WorkloadScale::tiny()) {
            let trace = w.trace(7);
            assert!(
                trace.len() > w.total_pages() / 2,
                "{} trace suspiciously short: {} accesses over {} pages",
                w.name(),
                trace.len(),
                w.total_pages()
            );
        }
    }
}
