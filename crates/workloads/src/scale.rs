//! Sizing workloads relative to the memory hierarchy.

use gmt_mem::TierGeometry;
use serde::{Deserialize, Serialize};

/// How large a workload's data set is, in pages.
///
/// The paper sizes non-graph datasets so the working set over-subscribes
/// Tier-1 + Tier-2 by a chosen factor (2 by default, 4 in Fig. 11). A
/// `WorkloadScale` carries that resolved page count plus the geometry it
/// came from so graph workloads can size their synthetic graph
/// proportionally.
///
/// # Examples
///
/// ```
/// use gmt_mem::TierGeometry;
/// use gmt_workloads::WorkloadScale;
///
/// let geometry = TierGeometry::from_tier1(512, 4.0, 2.0);
/// let scale = WorkloadScale::for_geometry(&geometry);
/// assert_eq!(scale.total_pages, geometry.total_pages);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadScale {
    /// Pages the data set should span (the trace address-space extent).
    pub total_pages: usize,
}

impl WorkloadScale {
    /// Sizes the working set to fill the geometry's configured
    /// over-subscription.
    pub fn for_geometry(geometry: &TierGeometry) -> WorkloadScale {
        WorkloadScale {
            total_pages: geometry.total_pages,
        }
    }

    /// An explicit page count.
    ///
    /// # Panics
    ///
    /// Panics if `total_pages` is below the minimum a workload can
    /// meaningfully partition (64).
    pub fn pages(total_pages: usize) -> WorkloadScale {
        assert!(
            total_pages >= 64,
            "workloads need at least 64 pages to partition"
        );
        WorkloadScale { total_pages }
    }

    /// A documentation/test scale: small enough for doctests, large enough
    /// for every workload's array partitioning to be non-degenerate.
    pub fn tiny() -> WorkloadScale {
        WorkloadScale { total_pages: 128 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_geometry_matches_total() {
        let g = TierGeometry::from_tier1(100, 4.0, 2.0);
        assert_eq!(WorkloadScale::for_geometry(&g).total_pages, 1000);
    }

    #[test]
    #[should_panic(expected = "at least 64 pages")]
    fn degenerate_scale_rejected() {
        let _ = WorkloadScale::pages(10);
    }
}
