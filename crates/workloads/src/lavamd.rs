//! LavaMD: particle simulation over a 3-D grid of boxes with cutoff-radius
//! neighbor interactions (Rodinia).
//!
//! Each box's particle data is streamed as the box is processed; only a
//! small fraction of boxes read a neighbor's page again shortly after the
//! neighbor was processed. The result is the paper's Table-2/Fig.-7
//! profile: very low page reuse (≈1 %) concentrated entirely in the
//! Tier-1 distance range — the workload where an extra tier helps least
//! (and where GMT-Reuse can even lose slightly for lack of history).

use gmt_mem::{PageId, WarpAccess};
use rand::Rng;

use crate::{Workload, WorkloadScale};

/// The LavaMD workload.
///
/// # Examples
///
/// ```
/// use gmt_workloads::{lavamd::LavaMd, Workload, WorkloadScale};
/// let w = LavaMd::with_scale(&WorkloadScale::tiny());
/// assert_eq!(w.name(), "lavaMD");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LavaMd {
    /// Boxes per grid dimension.
    dim: usize,
    /// Fraction of boxes that re-read a neighbor's page.
    neighbor_fraction: f64,
}

impl LavaMd {
    /// Sizes the box grid to fill the scale (2 pages per box).
    pub fn with_scale(scale: &WorkloadScale) -> LavaMd {
        LavaMd::new(scale, 0.05)
    }

    /// Explicit neighbor-interaction fraction (the cutoff radius knob).
    ///
    /// # Panics
    ///
    /// Panics if `neighbor_fraction` is outside `[0, 1]`.
    pub fn new(scale: &WorkloadScale, neighbor_fraction: f64) -> LavaMd {
        assert!(
            (0.0..=1.0).contains(&neighbor_fraction),
            "neighbor fraction must be in [0, 1]"
        );
        let boxes = scale.total_pages / 2;
        let dim = (boxes as f64).cbrt().floor() as usize;
        LavaMd {
            dim: dim.max(2),
            neighbor_fraction,
        }
    }

    fn boxes(&self) -> usize {
        self.dim * self.dim * self.dim
    }

    fn position_page(&self, b: usize) -> PageId {
        PageId((2 * b) as u64)
    }

    fn force_page(&self, b: usize) -> PageId {
        PageId((2 * b + 1) as u64)
    }
}

impl Workload for LavaMd {
    fn name(&self) -> &'static str {
        "lavaMD"
    }

    fn total_pages(&self) -> usize {
        2 * self.boxes()
    }

    fn trace(&self, seed: u64) -> Vec<WarpAccess> {
        let mut rng = gmt_sim::rng::seeded(seed);
        let mut out = Vec::with_capacity(3 * self.boxes());
        let plane = self.dim * self.dim;
        for b in 0..self.boxes() {
            out.push(WarpAccess::read(self.position_page(b)));
            // Cutoff-radius interactions: occasionally a recently-processed
            // neighbor box's positions are read again (x-, y- or z-adjacent,
            // all *behind* the sweep so the reuse distance stays short).
            if rng.gen::<f64>() < self.neighbor_fraction {
                let back = match rng.gen_range(0..3u8) {
                    0 => 1,
                    1 => self.dim,
                    _ => plane,
                };
                if b >= back {
                    out.push(WarpAccess::read(self.position_page(b - back)));
                }
            }
            out.push(WarpAccess::write(self.force_page(b)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn reuse_fraction(w: &LavaMd) -> f64 {
        let trace = w.trace(3);
        let mut touches: HashMap<u64, usize> = HashMap::new();
        for a in &trace {
            for p in a.pages.iter() {
                *touches.entry(p.0).or_default() += 1;
            }
        }
        let reused = touches.values().filter(|&&c| c > 1).count();
        reused as f64 / touches.len() as f64
    }

    #[test]
    fn page_reuse_is_very_low() {
        let w = LavaMd::with_scale(&WorkloadScale::pages(4_000));
        let fraction = reuse_fraction(&w);
        assert!(fraction < 0.06, "reuse fraction {fraction} not lavaMD-like");
    }

    #[test]
    fn neighbor_reads_look_backwards_only() {
        let w = LavaMd::with_scale(&WorkloadScale::tiny());
        let trace = w.trace(9);
        let mut max_seen: i64 = -1;
        for a in &trace {
            for p in a.pages.iter() {
                let b = (p.0 / 2) as i64;
                assert!(
                    b <= max_seen + 1,
                    "box {b} read before the sweep reached it (at {max_seen})"
                );
                max_seen = max_seen.max(b);
            }
        }
    }

    #[test]
    fn every_box_is_processed() {
        let w = LavaMd::with_scale(&WorkloadScale::tiny());
        let trace = w.trace(1);
        let writes = trace.iter().filter(|a| a.write).count();
        assert_eq!(writes, w.boxes());
    }
}
