//! Pathfinder: dynamic programming over a grid, row-by-row (Rodinia).
//!
//! A large cost "wall" is streamed one row at a time while two small
//! result rows ping-pong; almost all reuse lands on the tiny result rows,
//! so the RRD distribution sits ≈100 % inside Tier-1 (paper Fig. 7) and
//! the page-reuse percentage stays low (Table 2: 19.47 %).

use gmt_mem::{PageId, WarpAccess};

use crate::{Workload, WorkloadScale};

/// The Pathfinder workload.
///
/// # Examples
///
/// ```
/// use gmt_workloads::{pathfinder::Pathfinder, Workload, WorkloadScale};
/// let w = Pathfinder::with_scale(&WorkloadScale::tiny());
/// assert!(w.trace(0).len() > w.total_pages());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pathfinder {
    /// Pages per grid row.
    cols: usize,
    /// Grid rows.
    rows: usize,
}

impl Pathfinder {
    /// Sizes the wall to fill the scale with ~64 rows.
    pub fn with_scale(scale: &WorkloadScale) -> Pathfinder {
        let cols = (scale.total_pages / 66).max(1);
        let rows = (scale.total_pages - 2 * cols) / cols;
        Pathfinder { cols, rows }
    }

    fn wall_page(&self, r: usize, c: usize) -> PageId {
        PageId((r * self.cols + c) as u64)
    }

    fn result_page(&self, parity: usize, c: usize) -> PageId {
        PageId((self.rows * self.cols + parity * self.cols + c) as u64)
    }
}

impl Workload for Pathfinder {
    fn name(&self) -> &'static str {
        "Pathfinder"
    }

    fn total_pages(&self) -> usize {
        (self.rows + 2) * self.cols
    }

    fn trace(&self, _seed: u64) -> Vec<WarpAccess> {
        let mut out = Vec::with_capacity(3 * self.rows * self.cols);
        for r in 0..self.rows {
            let (prev, cur) = (r % 2, (r + 1) % 2);
            for c in 0..self.cols {
                out.push(WarpAccess::read(self.wall_page(r, c)));
                out.push(WarpAccess::read(self.result_page(prev, c)));
                out.push(WarpAccess::write(self.result_page(cur, c)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Pathfinder {
        Pathfinder::with_scale(&WorkloadScale::pages(660))
    }

    #[test]
    fn wall_pages_are_streamed_once() {
        let w = small();
        let trace = w.trace(0);
        let wall0 = w.wall_page(0, 0);
        assert_eq!(
            trace
                .iter()
                .filter(|a| a.pages.iter().any(|p| p == wall0))
                .count(),
            1
        );
    }

    #[test]
    fn result_rows_are_hot() {
        let w = small();
        let trace = w.trace(0);
        let res = w.result_page(0, 0);
        let touches = trace
            .iter()
            .filter(|a| a.pages.iter().any(|p| p == res))
            .count();
        assert!(
            touches >= w.rows / 2,
            "result page touched only {touches} times"
        );
    }

    #[test]
    fn reused_pages_are_a_small_fraction() {
        let w = small();
        let reused = 2 * w.cols; // only the result rows
        let fraction = reused as f64 / w.total_pages() as f64;
        assert!(fraction < 0.25, "reuse fraction {fraction}");
    }

    #[test]
    fn wall_dominates_address_space() {
        let w = small();
        assert!(w.rows * w.cols > w.total_pages() * 9 / 10);
    }
}
