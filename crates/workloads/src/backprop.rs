//! Backprop: layer-by-layer forward pass and backward propagation
//! (Rodinia).
//!
//! Every training step touches each layer's weight pages twice — once on
//! the forward pass, once (with an update, so dirty) on the backward pass
//! — and then the next step starts over. Reuse is near-total (Table 2:
//! 93.5 %) with forward→backward distances spread across the Tier-2
//! range, and the dirty backward writes are exactly the traffic a host
//! memory tier absorbs; Backprop is GMT-Reuse's single biggest speedup
//! (Fig. 8a) and by far the most I/O-intensive application (Table 2:
//! 6.8 TB).

use gmt_mem::{PageId, WarpAccess};

use crate::{Workload, WorkloadScale};

/// The Backprop workload.
///
/// # Examples
///
/// ```
/// use gmt_workloads::{backprop::Backprop, Workload, WorkloadScale};
/// let w = Backprop::with_scale(&WorkloadScale::tiny());
/// assert!(w.trace(0).iter().any(|a| a.write));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backprop {
    layers: usize,
    layer_pages: usize,
    batches: usize,
}

impl Backprop {
    /// A 16-layer network filling the scale, trained for 6 batches.
    pub fn with_scale(scale: &WorkloadScale) -> Backprop {
        Backprop::new(scale, 16, 6)
    }

    /// Explicit network depth and batch count.
    ///
    /// # Panics
    ///
    /// Panics if `layers` or `batches` is zero.
    pub fn new(scale: &WorkloadScale, layers: usize, batches: usize) -> Backprop {
        assert!(
            layers > 0 && batches > 0,
            "layers and batches must be positive"
        );
        let layers = layers.min(scale.total_pages);
        Backprop {
            layers,
            layer_pages: (scale.total_pages / layers).max(1),
            batches,
        }
    }

    fn weight_page(&self, layer: usize, p: usize) -> PageId {
        PageId((layer * self.layer_pages + p) as u64)
    }
}

impl Workload for Backprop {
    fn name(&self) -> &'static str {
        "Backprop"
    }

    fn total_pages(&self) -> usize {
        self.layers * self.layer_pages
    }

    fn trace(&self, _seed: u64) -> Vec<WarpAccess> {
        let mut out = Vec::with_capacity(2 * self.batches * self.layers * self.layer_pages);
        for _ in 0..self.batches {
            // Forward: read weights layer by layer.
            for layer in 0..self.layers {
                for p in 0..self.layer_pages {
                    out.push(WarpAccess::read(self.weight_page(layer, p)));
                }
            }
            // Backward: revisit layers in reverse, updating weights.
            for layer in (0..self.layers).rev() {
                for p in 0..self.layer_pages {
                    out.push(WarpAccess::write(self.weight_page(layer, p)));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_weight_page_is_touched_twice_per_batch() {
        let w = Backprop::with_scale(&WorkloadScale::pages(320));
        let trace = w.trace(0);
        let mut counts = vec![0u32; w.total_pages()];
        for a in &trace {
            for p in a.pages.iter() {
                counts[p.index()] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 2 * w.batches as u32));
    }

    #[test]
    fn late_layers_have_short_fwd_bwd_distance() {
        let w = Backprop::with_scale(&WorkloadScale::pages(320));
        let trace = w.trace(0);
        let first_batch = &trace[..2 * w.total_pages()];
        let gap_of = |page: PageId| {
            let pos: Vec<usize> = first_batch
                .iter()
                .enumerate()
                .filter(|(_, a)| a.pages.first() == page)
                .map(|(i, _)| i)
                .collect();
            pos[1] - pos[0]
        };
        let last_layer_gap = gap_of(w.weight_page(w.layers - 1, 0));
        let first_layer_gap = gap_of(w.weight_page(0, 0));
        assert!(
            first_layer_gap > 4 * last_layer_gap,
            "layer-0 gap {first_layer_gap} vs last-layer gap {last_layer_gap}"
        );
    }

    #[test]
    fn backward_pass_dirties_everything() {
        let w = Backprop::with_scale(&WorkloadScale::tiny());
        let trace = w.trace(0);
        let writes = trace.iter().filter(|a| a.write).count();
        assert_eq!(writes * 2, trace.len());
    }
}
