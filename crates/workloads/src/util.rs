//! Shared trace-building helpers.

use gmt_mem::{PageId, WarpAccess};

/// Deduplicates `pages` (preserving first-occurrence order) and emits them
/// as scattered warp accesses of at most 32 distinct pages each — the
/// shape a divergent warp instruction produces after coalescing.
pub(crate) fn push_scattered(out: &mut Vec<WarpAccess>, mut pages: Vec<PageId>, write: bool) {
    if pages.is_empty() {
        return;
    }
    let mut seen = std::collections::HashSet::with_capacity(pages.len());
    pages.retain(|p| seen.insert(*p));
    for chunk in pages.chunks(32) {
        out.push(WarpAccess::scattered(chunk.to_vec(), write));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_chunking() {
        let mut out = Vec::new();
        let pages: Vec<PageId> = (0..70).map(|i| PageId(i % 35)).collect();
        push_scattered(&mut out, pages, false);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].pages.len(), 32);
        assert_eq!(out[1].pages.len(), 3);
    }

    #[test]
    fn empty_input_emits_nothing() {
        let mut out = Vec::new();
        push_scattered(&mut out, Vec::new(), true);
        assert!(out.is_empty());
    }
}
