//! GAP-Kron synthetic graph generation (RMAT) and its page layout.
//!
//! The paper's three graph applications (BFS, SSSP, PageRank) run on the
//! GAP benchmark suite's Kronecker graph. We generate the same family of
//! graphs with the GAP parameters (A = 0.57, B = 0.19, C = 0.19,
//! edge factor 16) and lay the CSR arrays out over 64 KB pages so vertex
//! and edge accesses map to page accesses the way the BaM-modified
//! applications see them.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// RMAT generation parameters (defaults are GAP-Kron's).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KronConfig {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Directed edges per vertex.
    pub edge_factor: u32,
    /// RMAT quadrant probabilities (the fourth is the remainder).
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Apply GAP's random vertex relabeling, which destroys the artificial
    /// id-locality of raw RMAT (hubs clustered at low ids). Off by
    /// default: the clustered layout is itself a realistic CSR-on-disk
    /// layout (hot vertices packed together by a preprocessing step).
    pub permute: bool,
}

impl KronConfig {
    /// GAP-Kron parameters at the given scale.
    pub fn gap(scale: u32) -> KronConfig {
        KronConfig {
            scale,
            edge_factor: 16,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            permute: false,
        }
    }

    /// GAP parameters with the random vertex permutation applied.
    pub fn gap_permuted(scale: u32) -> KronConfig {
        KronConfig {
            permute: true,
            ..KronConfig::gap(scale)
        }
    }
}

/// A directed graph in CSR form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KronGraph {
    /// Number of vertices (a power of two).
    pub vertices: u32,
    /// CSR row offsets, length `vertices + 1`.
    pub offsets: Vec<u32>,
    /// CSR column indices (edge targets), length = edge count.
    pub targets: Vec<u32>,
}

impl KronGraph {
    /// Generates an RMAT graph.
    ///
    /// # Panics
    ///
    /// Panics if `config.scale` exceeds 28 (the `u32` CSR would overflow)
    /// or the probabilities are not a sub-distribution.
    pub fn generate(config: KronConfig, seed: u64) -> KronGraph {
        assert!(config.scale <= 28, "scale too large for u32 CSR");
        let (a, b, c) = (config.a, config.b, config.c);
        assert!(
            a >= 0.0 && b >= 0.0 && c >= 0.0 && a + b + c <= 1.0,
            "invalid RMAT quadrants"
        );
        let vertices = 1u32 << config.scale;
        let edges = vertices as usize * config.edge_factor as usize;
        let mut rng = gmt_sim::rng::seeded(seed);
        // Optional GAP-style relabeling (a seeded Fisher-Yates shuffle).
        let relabel: Option<Vec<u32>> = config.permute.then(|| {
            let mut map: Vec<u32> = (0..vertices).collect();
            for i in (1..map.len()).rev() {
                map.swap(i, rng.gen_range(0..=i));
            }
            map
        });
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(edges);
        for _ in 0..edges {
            let (mut src, mut dst) = (0u32, 0u32);
            for _ in 0..config.scale {
                src <<= 1;
                dst <<= 1;
                let r: f64 = rng.gen();
                if r < a {
                    // top-left: neither bit set
                } else if r < a + b {
                    dst |= 1;
                } else if r < a + b + c {
                    src |= 1;
                } else {
                    src |= 1;
                    dst |= 1;
                }
            }
            match &relabel {
                Some(map) => pairs.push((map[src as usize], map[dst as usize])),
                None => pairs.push((src, dst)),
            }
        }
        // Counting-sort into CSR.
        let mut degree = vec![0u32; vertices as usize + 1];
        for &(src, _) in &pairs {
            degree[src as usize + 1] += 1;
        }
        let mut offsets = degree;
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; edges];
        for &(src, dst) in &pairs {
            let slot = cursor[src as usize] as usize;
            targets[slot] = dst;
            cursor[src as usize] += 1;
        }
        KronGraph {
            vertices,
            offsets,
            targets,
        }
    }

    /// Number of directed edges.
    pub fn edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: u32) -> u32 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// The neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.targets[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }
}

/// The CSR arrays laid out contiguously over 64 KB pages, the way the
/// BaM-modified graph applications place them on the SSD:
/// `[offsets | per-vertex values | edge targets]`, 8 bytes per entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrLayout {
    vertices: u64,
    edges: u64,
    entries_per_page: u64,
}

impl CsrLayout {
    /// Lays out a graph with the given counts on `page_bytes` pages.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes < 8`.
    pub fn new(vertices: u64, edges: u64, page_bytes: u64) -> CsrLayout {
        assert!(page_bytes >= 8, "pages must hold at least one entry");
        CsrLayout {
            vertices,
            edges,
            entries_per_page: page_bytes / 8,
        }
    }

    /// Lays out `graph` on 64 KB pages.
    pub fn for_graph(graph: &KronGraph) -> CsrLayout {
        CsrLayout::new(graph.vertices as u64, graph.edges() as u64, 64 * 1024)
    }

    fn offsets_pages(&self) -> u64 {
        self.vertices.div_ceil(self.entries_per_page).max(1)
    }

    fn values_pages(&self) -> u64 {
        self.offsets_pages()
    }

    fn targets_pages(&self) -> u64 {
        self.edges.div_ceil(self.entries_per_page).max(1)
    }

    /// Total pages the three arrays span.
    pub fn total_pages(&self) -> usize {
        (self.offsets_pages() + self.values_pages() + self.targets_pages()) as usize
    }

    /// Page holding vertex `v`'s CSR offset.
    pub fn offset_page(&self, v: u32) -> u64 {
        v as u64 / self.entries_per_page
    }

    /// Page holding vertex `v`'s per-vertex value (distance, rank, …).
    pub fn value_page(&self, v: u32) -> u64 {
        self.offsets_pages() + v as u64 / self.entries_per_page
    }

    /// Page holding the `i`-th edge target.
    pub fn edge_page(&self, i: u64) -> u64 {
        self.offsets_pages() + self.values_pages() + i / self.entries_per_page
    }

    /// CSR entries per page (8192 for 8-byte entries on 64 KB pages).
    pub fn entries_per_page(&self) -> u64 {
        self.entries_per_page
    }
}

/// Picks the RMAT scale whose CSR footprint best approaches
/// `total_pages` 64 KB pages (clamped to keep generation tractable:
/// 2^12 – 2^20 vertices).
///
/// # Examples
///
/// ```
/// let bits = gmt_workloads::kron::scale_bits_for_pages(128);
/// assert!((12..=20).contains(&bits));
/// ```
pub fn scale_bits_for_pages(total_pages: usize) -> u32 {
    // One vertex costs 16 bytes of vertex arrays + 16 × 8 bytes of edges.
    let target_vertices = (total_pages as u64 * 64 * 1024 / 144).max(1);
    let bits = 63 - target_vertices.leading_zeros() as u64;
    (bits as u32).clamp(12, 20)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_bits_are_clamped_and_monotone() {
        assert_eq!(scale_bits_for_pages(1), 12);
        assert_eq!(scale_bits_for_pages(10_000_000), 20);
        assert!(scale_bits_for_pages(128) <= scale_bits_for_pages(1024));
    }

    fn small() -> KronGraph {
        KronGraph::generate(KronConfig::gap(10), 1)
    }

    #[test]
    fn edge_count_matches_config() {
        let g = small();
        assert_eq!(g.vertices, 1024);
        assert_eq!(g.edges(), 1024 * 16);
        assert_eq!(*g.offsets.last().unwrap() as usize, g.edges());
    }

    #[test]
    fn csr_is_consistent() {
        let g = small();
        let mut total = 0u64;
        for v in 0..g.vertices {
            assert_eq!(g.neighbors(v).len() as u32, g.degree(v));
            total += g.degree(v) as u64;
        }
        assert_eq!(total as usize, g.edges());
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // RMAT without permutation concentrates degree on low vertex ids.
        let g = small();
        let low: u64 = (0..64).map(|v| g.degree(v) as u64).sum();
        let high: u64 = (g.vertices - 64..g.vertices)
            .map(|v| g.degree(v) as u64)
            .sum();
        assert!(low > high * 4, "low-id degree {low} vs high-id {high}");
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(small(), small());
        assert_ne!(
            KronGraph::generate(KronConfig::gap(10), 1).targets,
            KronGraph::generate(KronConfig::gap(10), 2).targets
        );
    }

    #[test]
    fn permutation_spreads_hub_degree() {
        let raw = KronGraph::generate(KronConfig::gap(12), 3);
        let permuted = KronGraph::generate(KronConfig::gap_permuted(12), 3);
        assert_eq!(raw.edges(), permuted.edges());
        let low_mass = |g: &KronGraph| -> u64 { (0..64).map(|v| g.degree(v) as u64).sum() };
        assert!(
            low_mass(&permuted) < low_mass(&raw) / 2,
            "permutation must break low-id hub clustering: {} vs {}",
            low_mass(&permuted),
            low_mass(&raw)
        );
        // Degree skew itself survives relabeling.
        let max_deg = (0..permuted.vertices)
            .map(|v| permuted.degree(v))
            .max()
            .unwrap();
        assert!(
            max_deg > 16 * 4,
            "hubs must survive relabeling, max degree {max_deg}"
        );
    }

    #[test]
    fn layout_partitions_do_not_overlap() {
        let layout = CsrLayout::new(10_000, 160_000, 64 * 1024);
        let last_offset = layout.offset_page(9_999);
        let first_value = layout.value_page(0);
        let last_value = layout.value_page(9_999);
        let first_edge = layout.edge_page(0);
        assert!(last_offset < first_value);
        assert!(last_value < first_edge);
        let last_edge = layout.edge_page(159_999);
        assert_eq!(layout.total_pages() as u64, last_edge + 1);
    }

    #[test]
    fn layout_for_graph_covers_everything() {
        let g = small();
        let layout = CsrLayout::for_graph(&g);
        let total = layout.total_pages() as u64;
        assert!(layout.offset_page(g.vertices - 1) < total);
        assert!(layout.value_page(g.vertices - 1) < total);
        assert!(layout.edge_page(g.edges() as u64 - 1) < total);
    }
}
