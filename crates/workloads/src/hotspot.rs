//! Hotspot: thermal simulation iterating over a grid (Rodinia).
//!
//! Every iteration streams the whole temperature-in, power, and
//! temperature-out arrays, so pages are reused heavily (Table 2: 81 %)
//! but always at *full-sweep* distance — beyond Tier-1 + Tier-2, i.e.
//! ≈100 % Tier-3-biased RRDs (Fig. 7). The paper uses Hotspot to show why
//! the 80 % heuristic matters: a literal predictor would leave Tier-2
//! empty, yet forcing a slice of each sweep into host memory cuts SSD
//! reads by ~73 % (§3.3).

use gmt_mem::{PageId, WarpAccess};

use crate::{Workload, WorkloadScale};

/// The Hotspot workload.
///
/// # Examples
///
/// ```
/// use gmt_workloads::{hotspot::Hotspot, Workload, WorkloadScale};
/// let w = Hotspot::with_scale(&WorkloadScale::tiny());
/// assert!(w.trace(0).len() > 5 * w.total_pages());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hotspot {
    grid_pages: usize,
    iterations: usize,
}

impl Hotspot {
    /// Three equal arrays (temp ping, temp pong, power) filling the
    /// scale; 8 iterations.
    pub fn with_scale(scale: &WorkloadScale) -> Hotspot {
        Hotspot::new(scale, 8)
    }

    /// Explicit iteration count.
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is zero.
    pub fn new(scale: &WorkloadScale, iterations: usize) -> Hotspot {
        assert!(iterations > 0, "hotspot needs at least one iteration");
        Hotspot {
            grid_pages: (scale.total_pages / 3).max(1),
            iterations,
        }
    }

    fn temp_page(&self, parity: usize, i: usize) -> PageId {
        PageId((parity * self.grid_pages + i) as u64)
    }

    fn power_page(&self, i: usize) -> PageId {
        PageId((2 * self.grid_pages + i) as u64)
    }
}

impl Workload for Hotspot {
    fn name(&self) -> &'static str {
        "Hotspot"
    }

    fn total_pages(&self) -> usize {
        3 * self.grid_pages
    }

    fn trace(&self, _seed: u64) -> Vec<WarpAccess> {
        let mut out = Vec::with_capacity(3 * self.iterations * self.grid_pages);
        for iter in 0..self.iterations {
            let (src, dst) = (iter % 2, (iter + 1) % 2);
            for i in 0..self.grid_pages {
                out.push(WarpAccess::read(self.temp_page(src, i)));
                out.push(WarpAccess::read(self.power_page(i)));
                out.push(WarpAccess::write(self.temp_page(dst, i)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_is_reread_every_iteration() {
        let w = Hotspot::with_scale(&WorkloadScale::pages(300));
        let trace = w.trace(0);
        let target = w.power_page(0);
        let touches = trace.iter().filter(|a| a.pages.first() == target).count();
        assert_eq!(touches, w.iterations);
    }

    #[test]
    fn reuse_distance_spans_the_whole_sweep() {
        let w = Hotspot::with_scale(&WorkloadScale::pages(300));
        let trace = w.trace(0);
        let target = w.power_page(0);
        let pos: Vec<usize> = trace
            .iter()
            .enumerate()
            .filter(|(_, a)| a.pages.first() == target)
            .map(|(i, _)| i)
            .collect();
        // Gap of 3 accesses per grid page = one full sweep.
        assert_eq!(pos[1] - pos[0], 3 * w.grid_pages);
    }

    #[test]
    fn temp_arrays_ping_pong() {
        let w = Hotspot::with_scale(&WorkloadScale::pages(300));
        let trace = w.trace(0);
        // Iteration 0 writes parity 1; iteration 1 reads parity 1.
        let first_write = trace.iter().find(|a| a.write).expect("has writes");
        assert_eq!(first_write.pages.first(), w.temp_page(1, 0));
    }
}
