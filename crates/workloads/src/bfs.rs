//! BFS over a GAP-Kron graph, with data-dependent vertex/edge accesses
//! (from the BaM evaluation).
//!
//! Level-synchronous BFS from the highest-degree vertex: each frontier
//! chunk reads CSR offset pages (coalesced), edge-target pages
//! (scattered), and writes distance pages for newly discovered vertices.
//! Pages holding many vertices are revisited level after level at medium
//! distances, giving the paper's medium-reuse, Tier-2-biased profile
//! (Table 2: 32.86 %).

use gmt_mem::{PageId, WarpAccess};

use crate::kron::{scale_bits_for_pages, CsrLayout, KronConfig, KronGraph};
use crate::util::push_scattered;
use crate::{Workload, WorkloadScale};

/// The BFS workload (graph generated at construction).
///
/// # Examples
///
/// ```
/// use gmt_workloads::{bfs::Bfs, Workload, WorkloadScale};
/// let w = Bfs::with_scale(&WorkloadScale::tiny());
/// assert!(w.total_pages() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Bfs {
    graph: KronGraph,
    layout: CsrLayout,
}

impl Bfs {
    /// Generates a GAP-Kron graph sized near the scale.
    pub fn with_scale(scale: &WorkloadScale) -> Bfs {
        Bfs::on_graph(KronGraph::generate(
            KronConfig::gap(scale_bits_for_pages(scale.total_pages)),
            0xB_F5,
        ))
    }

    /// Runs BFS over an explicit graph.
    pub fn on_graph(graph: KronGraph) -> Bfs {
        let layout = CsrLayout::for_graph(&graph);
        Bfs { graph, layout }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &KronGraph {
        &self.graph
    }
}

impl Workload for Bfs {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn total_pages(&self) -> usize {
        self.layout.total_pages()
    }

    fn trace(&self, _seed: u64) -> Vec<WarpAccess> {
        let g = &self.graph;
        let layout = &self.layout;
        let mut out = Vec::new();
        let mut visited = vec![false; g.vertices as usize];
        let source = 0u32; // RMAT's densest vertex
        visited[source as usize] = true;
        let mut frontier = vec![source];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for chunk in frontier.chunks(32) {
                // Read CSR offsets for the chunk.
                let offset_pages: Vec<PageId> = chunk
                    .iter()
                    .map(|&v| PageId(layout.offset_page(v)))
                    .collect();
                push_scattered(&mut out, offset_pages, false);
                // Read edge-target pages; discover neighbors.
                let mut edge_pages = Vec::new();
                let mut discovered = Vec::new();
                for &v in chunk {
                    let (start, end) = (
                        g.offsets[v as usize] as u64,
                        g.offsets[v as usize + 1] as u64,
                    );
                    let epp = layout.entries_per_page();
                    let mut i = start;
                    while i < end {
                        edge_pages.push(PageId(layout.edge_page(i)));
                        i = (i / epp + 1) * epp; // next page boundary
                    }
                    for &u in g.neighbors(v) {
                        if !visited[u as usize] {
                            visited[u as usize] = true;
                            discovered.push(u);
                        }
                    }
                }
                push_scattered(&mut out, edge_pages, false);
                // Write distances for the newly discovered vertices.
                let dist_pages: Vec<PageId> = discovered
                    .iter()
                    .map(|&u| PageId(layout.value_page(u)))
                    .collect();
                push_scattered(&mut out, dist_pages, true);
                next.extend(discovered);
            }
            frontier = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Bfs {
        Bfs::on_graph(KronGraph::generate(KronConfig::gap(12), 5))
    }

    #[test]
    fn bfs_reaches_most_of_the_graph() {
        let w = small();
        let trace = w.trace(0);
        // Discovered vertices = distance writes; kron graphs are mostly one
        // giant connected component reachable from the hub.
        let discovered: usize = trace
            .iter()
            .filter(|a| a.write)
            .map(|a| a.pages.len())
            .sum::<usize>();
        assert!(discovered >= 1, "some vertices must be discovered");
        let reads = trace.iter().filter(|a| !a.write).count();
        assert!(reads > 0);
    }

    #[test]
    fn trace_has_scattered_accesses() {
        let w = small();
        let divergent = w.trace(0).iter().filter(|a| a.pages.len() > 1).count();
        assert!(
            divergent > 0,
            "graph traversal must produce divergent accesses"
        );
    }

    #[test]
    fn offset_pages_are_reused_across_levels() {
        let w = small();
        let trace = w.trace(0);
        let mut counts = std::collections::HashMap::new();
        for a in &trace {
            for p in a.pages.iter() {
                *counts.entry(p).or_insert(0u32) += 1;
            }
        }
        let reused = counts.values().filter(|&&c| c > 1).count();
        assert!(reused > 0, "CSR pages must be revisited");
    }
}
