//! MultiVectorAdd: linear algebra with a repeatedly-accessed output vector
//! (from the BaM evaluation).
//!
//! `k` input vectors are streamed once each and accumulated into one
//! output vector: `out[i] += in_j[i]` for every pass `j`. Input pages are
//! touched once; every output page is re-touched once per pass at a
//! *constant* reuse distance of about two vector lengths — the behaviour
//! the paper highlights in Fig. 4b (identical RRD at every Tier-1
//! eviction) and classifies as medium reuse with Tier-2 bias.

use gmt_mem::{PageId, WarpAccess};

use crate::{Workload, WorkloadScale};

/// The MultiVectorAdd workload.
///
/// # Examples
///
/// ```
/// use gmt_workloads::{multivectoradd::MultiVectorAdd, Workload, WorkloadScale};
/// let w = MultiVectorAdd::with_scale(&WorkloadScale::tiny());
/// let trace = w.trace(1);
/// assert!(!trace.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiVectorAdd {
    inputs: usize,
    vector_pages: usize,
}

impl MultiVectorAdd {
    /// Sizes `inputs + 1` equal vectors to fill the scale. Five inputs
    /// put the output vector's constant reuse distance squarely in the
    /// Tier-2 class at the paper's default 4:1 capacity ratio.
    pub fn with_scale(scale: &WorkloadScale) -> MultiVectorAdd {
        MultiVectorAdd::new(scale, 5)
    }

    /// Explicit input-vector count.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is zero or the scale is too small to give each
    /// vector a page.
    pub fn new(scale: &WorkloadScale, inputs: usize) -> MultiVectorAdd {
        assert!(inputs > 0, "need at least one input vector");
        let vector_pages = scale.total_pages / (inputs + 1);
        assert!(
            vector_pages > 0,
            "scale too small for {inputs} input vectors"
        );
        MultiVectorAdd {
            inputs,
            vector_pages,
        }
    }

    /// Pages per vector.
    pub fn vector_pages(&self) -> usize {
        self.vector_pages
    }

    fn out_page(&self, i: usize) -> PageId {
        PageId(i as u64)
    }

    fn in_page(&self, j: usize, i: usize) -> PageId {
        PageId(((1 + j) * self.vector_pages + i) as u64)
    }
}

impl Workload for MultiVectorAdd {
    fn name(&self) -> &'static str {
        "MultiVectorAdd"
    }

    fn total_pages(&self) -> usize {
        (self.inputs + 1) * self.vector_pages
    }

    fn trace(&self, _seed: u64) -> Vec<WarpAccess> {
        let mut out = Vec::with_capacity(2 * self.inputs * self.vector_pages);
        for j in 0..self.inputs {
            for i in 0..self.vector_pages {
                out.push(WarpAccess::read(self.in_page(j, i)));
                out.push(WarpAccess::write(self.out_page(i)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_pages_are_reused_once_per_pass() {
        let w = MultiVectorAdd::new(&WorkloadScale::pages(100), 4);
        let trace = w.trace(0);
        let out0 = w.out_page(0);
        let touches = trace
            .iter()
            .filter(|a| a.pages.iter().any(|p| p == out0))
            .count();
        assert_eq!(touches, 4);
    }

    #[test]
    fn input_pages_are_streamed_once() {
        let w = MultiVectorAdd::new(&WorkloadScale::pages(100), 4);
        let trace = w.trace(0);
        let in00 = w.in_page(0, 0);
        let touches = trace
            .iter()
            .filter(|a| a.pages.iter().any(|p| p == in00))
            .count();
        assert_eq!(touches, 1);
    }

    #[test]
    fn output_reuse_distance_is_constant() {
        // Positions of out[3] accesses must be evenly spaced: constant RRD
        // is the Fig. 4b signature.
        let w = MultiVectorAdd::new(&WorkloadScale::pages(100), 4);
        let trace = w.trace(0);
        let target = w.out_page(3);
        let positions: Vec<usize> = trace
            .iter()
            .enumerate()
            .filter(|(_, a)| a.pages.iter().any(|p| p == target))
            .map(|(i, _)| i)
            .collect();
        let gaps: Vec<usize> = positions.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps.windows(2).all(|g| g[0] == g[1]), "gaps vary: {gaps:?}");
    }

    #[test]
    fn writes_go_only_to_output() {
        let w = MultiVectorAdd::with_scale(&WorkloadScale::tiny());
        for a in w.trace(0) {
            if a.write {
                for page in a.pages.iter() {
                    assert!(
                        (page.0 as usize) < w.vector_pages(),
                        "write to input page {page}"
                    );
                }
            }
        }
    }
}
