//! PageRank over a GAP-Kron graph (from the BaM evaluation).
//!
//! Power iterations: every iteration sweeps all vertices, reading CSR
//! offsets and edge targets plus the *old* rank of every neighbor
//! (scattered, data-dependent) and writing the vertex's new rank. Pages
//! are reused heavily (Table 2: 90.42 %) but mostly at full-sweep
//! distances — the Tier-3-biased profile of Fig. 7 — with the alternating
//! eviction-time RRD pattern of Fig. 4c (pages alternate between
//! intra-iteration hub reuse and cross-iteration sweep reuse).

use gmt_mem::{PageId, WarpAccess};

use crate::kron::{scale_bits_for_pages, CsrLayout, KronConfig, KronGraph};
use crate::util::push_scattered;
use crate::{Workload, WorkloadScale};

/// The PageRank workload.
///
/// # Examples
///
/// ```
/// use gmt_workloads::{pagerank::PageRank, Workload, WorkloadScale};
/// let w = PageRank::with_scale(&WorkloadScale::tiny());
/// assert_eq!(w.name(), "PageRank");
/// ```
#[derive(Debug, Clone)]
pub struct PageRank {
    graph: KronGraph,
    layout: CsrLayout,
    iterations: usize,
}

impl PageRank {
    /// Generates a GAP-Kron graph sized near the scale; 3 iterations.
    pub fn with_scale(scale: &WorkloadScale) -> PageRank {
        PageRank::on_graph(
            KronGraph::generate(
                KronConfig::gap(scale_bits_for_pages(scale.total_pages)),
                0x9A6E,
            ),
            3,
        )
    }

    /// Runs over an explicit graph.
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is zero.
    pub fn on_graph(graph: KronGraph, iterations: usize) -> PageRank {
        assert!(iterations > 0, "pagerank needs at least one iteration");
        let layout = CsrLayout::for_graph(&graph);
        PageRank {
            graph,
            layout,
            iterations,
        }
    }
}

impl Workload for PageRank {
    fn name(&self) -> &'static str {
        "PageRank"
    }

    fn total_pages(&self) -> usize {
        self.layout.total_pages()
    }

    fn trace(&self, _seed: u64) -> Vec<WarpAccess> {
        let g = &self.graph;
        let layout = &self.layout;
        let epp = layout.entries_per_page();
        let mut out = Vec::new();
        for _ in 0..self.iterations {
            let vertices: Vec<u32> = (0..g.vertices).collect();
            for chunk in vertices.chunks(32) {
                let offset_pages: Vec<PageId> = chunk
                    .iter()
                    .map(|&v| PageId(layout.offset_page(v)))
                    .collect();
                push_scattered(&mut out, offset_pages, false);
                let mut edge_pages = Vec::new();
                let mut rank_reads = Vec::new();
                for &v in chunk {
                    let (start, end) = (
                        g.offsets[v as usize] as u64,
                        g.offsets[v as usize + 1] as u64,
                    );
                    let mut i = start;
                    while i < end {
                        edge_pages.push(PageId(layout.edge_page(i)));
                        i = (i / epp + 1) * epp;
                    }
                    for &u in g.neighbors(v) {
                        rank_reads.push(PageId(layout.value_page(u)));
                    }
                }
                push_scattered(&mut out, edge_pages, false);
                push_scattered(&mut out, rank_reads, false);
                let own_ranks: Vec<PageId> = chunk
                    .iter()
                    .map(|&v| PageId(layout.value_page(v)))
                    .collect();
                push_scattered(&mut out, own_ranks, true);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PageRank {
        PageRank::on_graph(KronGraph::generate(KronConfig::gap(12), 5), 2)
    }

    #[test]
    fn every_vertex_rank_is_written_each_iteration() {
        let w = small();
        let trace = w.trace(0);
        let writes: usize = trace
            .iter()
            .filter(|a| a.write)
            .map(|a| a.pages.len())
            .sum();
        // 32-vertex chunks usually share one value page, so counts are in
        // pages; each chunk writes at least one page per iteration.
        let chunks = w.graph.vertices.div_ceil(32) as usize;
        assert!(writes >= chunks * w.iterations);
    }

    #[test]
    fn hub_rank_pages_dominate_reads() {
        let w = small();
        let trace = w.trace(0);
        let hub_page = PageId(w.layout.value_page(0));
        let hub_reads = trace
            .iter()
            .filter(|a| !a.write && a.pages.iter().any(|p| p == hub_page))
            .count();
        assert!(
            hub_reads > w.iterations * 10,
            "hub page read only {hub_reads} times"
        );
    }

    #[test]
    fn iterations_multiply_trace_length() {
        let one = PageRank::on_graph(KronGraph::generate(KronConfig::gap(12), 5), 1);
        let two = small();
        assert_eq!(one.trace(0).len() * 2, two.trace(0).len());
    }
}
