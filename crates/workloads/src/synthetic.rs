//! Synthetic access patterns for calibration, testing and library users.
//!
//! The nine paper applications cover specific reuse profiles; these
//! generators let users dial in *arbitrary* profiles — skewed point
//! accesses, pure streams, strided sweeps — to probe how a policy reacts
//! to a pattern before committing to a port.

use gmt_mem::{PageId, WarpAccess};
use gmt_sim::Zipf;
use rand::Rng;

use crate::{Workload, WorkloadScale};

/// Zipf-popular point accesses, optionally with writes.
///
/// # Examples
///
/// ```
/// use gmt_workloads::{synthetic::ZipfLoop, Workload, WorkloadScale};
/// let w = ZipfLoop::new(&WorkloadScale::tiny(), 0.9, 0.1, 1_000);
/// assert_eq!(w.trace(1).len(), 1_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfLoop {
    pages: u64,
    skew: f64,
    write_fraction: f64,
    accesses: usize,
}

impl ZipfLoop {
    /// A Zipf loop over the scale's pages.
    ///
    /// # Panics
    ///
    /// Panics if `skew` is negative or `write_fraction` is outside
    /// `[0, 1]`.
    pub fn new(scale: &WorkloadScale, skew: f64, write_fraction: f64, accesses: usize) -> ZipfLoop {
        assert!(skew >= 0.0, "skew must be non-negative");
        assert!(
            (0.0..=1.0).contains(&write_fraction),
            "write fraction must be in [0, 1]"
        );
        ZipfLoop {
            pages: scale.total_pages as u64,
            skew,
            write_fraction,
            accesses,
        }
    }
}

impl Workload for ZipfLoop {
    fn name(&self) -> &'static str {
        "ZipfLoop"
    }

    fn total_pages(&self) -> usize {
        self.pages as usize
    }

    fn trace(&self, seed: u64) -> Vec<WarpAccess> {
        let zipf = Zipf::new(self.pages, self.skew);
        let mut rng = gmt_sim::rng::seeded(seed);
        (0..self.accesses)
            .map(|_| {
                let page = PageId(zipf.sample(&mut rng));
                if rng.gen::<f64>() < self.write_fraction {
                    WarpAccess::write(page)
                } else {
                    WarpAccess::read(page)
                }
            })
            .collect()
    }
}

/// Repeated sequential sweeps over the whole address space — the
/// pathological stream every insertion policy must not cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SequentialScan {
    pages: usize,
    passes: usize,
}

impl SequentialScan {
    /// `passes` read-only sweeps over the scale's pages.
    pub fn new(scale: &WorkloadScale, passes: usize) -> SequentialScan {
        SequentialScan {
            pages: scale.total_pages,
            passes,
        }
    }
}

impl Workload for SequentialScan {
    fn name(&self) -> &'static str {
        "SequentialScan"
    }

    fn total_pages(&self) -> usize {
        self.pages
    }

    fn trace(&self, _seed: u64) -> Vec<WarpAccess> {
        (0..self.passes)
            .flat_map(|_| (0..self.pages as u64).map(|p| WarpAccess::read(PageId(p))))
            .collect()
    }
}

/// Strided sweeps: touches every `stride`-th page, then rotates the
/// offset — a cache-adversarial pattern with tunable spatial locality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StridedSweep {
    pages: usize,
    stride: usize,
    rounds: usize,
}

impl StridedSweep {
    /// Strided sweeps over the scale's pages.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn new(scale: &WorkloadScale, stride: usize, rounds: usize) -> StridedSweep {
        assert!(stride > 0, "stride must be positive");
        StridedSweep {
            pages: scale.total_pages,
            stride,
            rounds,
        }
    }
}

impl Workload for StridedSweep {
    fn name(&self) -> &'static str {
        "StridedSweep"
    }

    fn total_pages(&self) -> usize {
        self.pages
    }

    fn trace(&self, _seed: u64) -> Vec<WarpAccess> {
        let mut out = Vec::with_capacity(self.rounds * self.pages.div_ceil(self.stride));
        for round in 0..self.rounds {
            let offset = round % self.stride;
            let mut p = offset;
            while p < self.pages {
                out.push(WarpAccess::read(PageId(p as u64)));
                p += self.stride;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_loop_respects_write_fraction_extremes() {
        let scale = WorkloadScale::tiny();
        let all_reads = ZipfLoop::new(&scale, 0.5, 0.0, 500);
        assert!(all_reads.trace(1).iter().all(|a| !a.write));
        let all_writes = ZipfLoop::new(&scale, 0.5, 1.0, 500);
        assert!(all_writes.trace(1).iter().all(|a| a.write));
    }

    #[test]
    fn sequential_scan_touches_every_page_per_pass() {
        let w = SequentialScan::new(&WorkloadScale::tiny(), 3);
        let trace = w.trace(0);
        assert_eq!(trace.len(), 3 * w.total_pages());
        assert_eq!(trace[0].pages.first(), PageId(0));
    }

    #[test]
    fn strided_sweep_rotates_offsets() {
        let w = StridedSweep::new(&WorkloadScale::tiny(), 4, 4);
        let trace = w.trace(0);
        // Across stride rounds, all pages are eventually touched.
        let mut touched = vec![false; w.total_pages()];
        for a in &trace {
            touched[a.pages.first().index()] = true;
        }
        assert!(touched.iter().all(|&t| t));
    }

    #[test]
    fn zipf_skew_concentrates_touches() {
        let scale = WorkloadScale::pages(1_000);
        let skewed = ZipfLoop::new(&scale, 1.0, 0.0, 5_000);
        let trace = skewed.trace(3);
        let rank0_touches = trace
            .iter()
            .filter(|a| a.pages.first() == PageId(0))
            .count();
        assert!(
            rank0_touches > 200,
            "rank 0 touched only {rank0_touches} times"
        );
    }
}
