//! Combinators for placing workloads into a shared address space.
//!
//! Multi-tenant serving runs several workloads against *one* tiered
//! hierarchy. Each tenant keeps its own private page numbering
//! (`0..total_pages`); [`Shifted`] relocates that range to a base
//! offset in the global namespace so tenants never alias each other's
//! pages and the hierarchy can attribute any global page back to its
//! tenant by range lookup.

use gmt_mem::{PageId, WarpAccess};

use crate::Workload;

/// A workload relocated to `base..base + inner.total_pages()` of a
/// larger shared address space.
///
/// The trace is the inner workload's trace with every page id offset by
/// `base`; determinism, access counts and reuse structure are untouched.
///
/// # Examples
///
/// ```
/// use gmt_workloads::synthetic::SequentialScan;
/// use gmt_workloads::{Shifted, Workload, WorkloadScale};
///
/// let scan = SequentialScan::new(&WorkloadScale::tiny(), 1);
/// let span = scan.total_pages();
/// let shifted = Shifted::new(scan, 1_000);
/// assert_eq!(shifted.total_pages(), 1_000 + span);
/// let first = shifted.trace(7)[0].pages.first();
/// assert!(first.0 >= 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct Shifted<W> {
    inner: W,
    base: u64,
}

impl<W: Workload> Shifted<W> {
    /// Relocates `inner` to start at page `base`.
    pub fn new(inner: W, base: u64) -> Shifted<W> {
        Shifted { inner, base }
    }

    /// The first page of the relocated range.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The relocated workload.
    pub fn inner(&self) -> &W {
        &self.inner
    }
}

impl<W: Workload> Workload for Shifted<W> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    /// Extent of the *global* space the trace touches: the shifted
    /// range's end, so `base` pages below it are left untouched.
    fn total_pages(&self) -> usize {
        self.base as usize + self.inner.total_pages()
    }

    fn trace(&self, seed: u64) -> Vec<WarpAccess> {
        self.inner
            .trace(seed)
            .into_iter()
            .map(|access| {
                let pages: Vec<PageId> = access
                    .pages
                    .iter()
                    .map(|p| PageId(p.0 + self.base))
                    .collect();
                WarpAccess::scattered(pages, access.write)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::ZipfLoop;
    use crate::WorkloadScale;

    #[test]
    fn shift_by_zero_is_identity() {
        let zipf = ZipfLoop::new(&WorkloadScale::tiny(), 0.8, 0.1, 500);
        let plain = zipf.trace(3);
        let shifted = Shifted::new(zipf, 0);
        assert_eq!(shifted.trace(3), plain);
    }

    #[test]
    fn every_page_lands_in_the_relocated_range() {
        let zipf = ZipfLoop::new(&WorkloadScale::tiny(), 0.8, 0.1, 500);
        let span = zipf.total_pages() as u64;
        let base = 4_096;
        let shifted = Shifted::new(zipf, base);
        assert_eq!(shifted.total_pages() as u64, base + span);
        for access in shifted.trace(3) {
            for page in access.pages.iter() {
                assert!(page.0 >= base && page.0 < base + span);
            }
        }
    }

    #[test]
    fn shifting_preserves_structure() {
        let zipf = ZipfLoop::new(&WorkloadScale::tiny(), 0.8, 0.1, 500);
        let plain = zipf.trace(9);
        let shifted = Shifted::new(zipf, 128).trace(9);
        assert_eq!(plain.len(), shifted.len());
        for (a, b) in plain.iter().zip(&shifted) {
            assert_eq!(a.write, b.write);
            assert_eq!(a.pages.len(), b.pages.len());
            for (pa, pb) in a.pages.iter().zip(b.pages.iter()) {
                assert_eq!(pa.0 + 128, pb.0);
            }
        }
    }
}
