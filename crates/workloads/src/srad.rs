//! Srad: speckle-reducing anisotropic diffusion over an image grid
//! (Rodinia).
//!
//! Each iteration runs two kernels (srad1 computes diffusion
//! coefficients, srad2 applies them), so every image block is swept twice
//! per iteration. The within-iteration re-sweep gives the high page reuse
//! (Table 2: 83 %) at block-sized distances — squarely in the Tier-2
//! range (Fig. 7) — which is why Srad is one of GMT-Reuse's biggest wins.

use gmt_mem::{PageId, WarpAccess};

use crate::{Workload, WorkloadScale};

/// The Srad workload.
///
/// # Examples
///
/// ```
/// use gmt_workloads::{srad::Srad, Workload, WorkloadScale};
/// let w = Srad::with_scale(&WorkloadScale::tiny());
/// assert!(w.trace(0).len() >= 4 * w.total_pages());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Srad {
    image_pages: usize,
    /// Pages processed per tile before moving on (srad1 + srad2 both run
    /// per tile).
    block_pages: usize,
    iterations: usize,
}

impl Srad {
    /// Sizes the image to the scale, tiled at 35% of the image, 4 iterations.
    pub fn with_scale(scale: &WorkloadScale) -> Srad {
        Srad::new(scale, 35, 4)
    }

    /// Explicit tile size (percent of the image) and iteration count.
    ///
    /// # Panics
    ///
    /// Panics if `block_pct` is 0 or greater than 100, or if `iterations`
    /// is zero.
    pub fn new(scale: &WorkloadScale, block_pct: usize, iterations: usize) -> Srad {
        assert!(
            (1..=100).contains(&block_pct),
            "block percentage must be in 1..=100"
        );
        assert!(iterations > 0, "srad needs at least one iteration");
        Srad {
            image_pages: scale.total_pages,
            block_pages: (scale.total_pages * block_pct / 100).max(1),
            iterations,
        }
    }
}

impl Workload for Srad {
    fn name(&self) -> &'static str {
        "Srad"
    }

    fn total_pages(&self) -> usize {
        self.image_pages
    }

    fn trace(&self, _seed: u64) -> Vec<WarpAccess> {
        let mut out = Vec::with_capacity(2 * self.iterations * self.image_pages);
        for _ in 0..self.iterations {
            let mut start = 0;
            while start < self.image_pages {
                let end = (start + self.block_pages).min(self.image_pages);
                // srad1: read the block (compute coefficients).
                for p in start..end {
                    out.push(WarpAccess::read(PageId(p as u64)));
                }
                // srad2: read-modify-write the same block.
                for p in start..end {
                    out.push(WarpAccess::write(PageId(p as u64)));
                }
                start = end;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_page_is_reused() {
        let w = Srad::with_scale(&WorkloadScale::pages(400));
        let trace = w.trace(0);
        let mut counts = vec![0u32; w.total_pages()];
        for a in &trace {
            for p in a.pages.iter() {
                counts[p.index()] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 2 * w.iterations as u32));
    }

    #[test]
    fn rereads_happen_at_block_distance() {
        let w = Srad::with_scale(&WorkloadScale::pages(400));
        let trace = w.trace(0);
        // Page 0's first two touches are one block apart.
        let positions: Vec<usize> = trace
            .iter()
            .enumerate()
            .filter(|(_, a)| a.pages.first() == PageId(0))
            .map(|(i, _)| i)
            .collect();
        let gap = positions[1] - positions[0];
        assert_eq!(gap, w.block_pages);
    }

    #[test]
    fn half_the_accesses_are_writes() {
        let w = Srad::with_scale(&WorkloadScale::tiny());
        let trace = w.trace(0);
        let writes = trace.iter().filter(|a| a.write).count();
        assert_eq!(writes * 2, trace.len());
    }
}
