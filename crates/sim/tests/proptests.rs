//! Property tests for the simulation substrate.

use gmt_sim::stats::{Histogram, Summary};
use gmt_sim::{Dur, FifoServer, Link, ServerPool, Time};
use proptest::prelude::*;

proptest! {
    #[test]
    fn histogram_fraction_below_is_exact_at_power_of_two_boundaries(
        values in proptest::collection::vec(0u64..100_000, 1..300),
        exp in 1u32..18,
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let threshold = 1u64 << exp;
        let exact = values.iter().filter(|&&v| v < threshold).count() as f64
            / values.len() as f64;
        let est = h.fraction_below(threshold);
        prop_assert!((est - exact).abs() < 1e-9, "at 2^{exp}: {est} vs exact {exact}");
    }

    #[test]
    fn histogram_fraction_below_is_monotone(
        values in proptest::collection::vec(0u64..100_000, 1..200),
        thresholds in proptest::collection::vec(0u64..200_000, 2..16),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = thresholds;
        sorted.sort_unstable();
        let fracs: Vec<f64> = sorted.iter().map(|&t| h.fraction_below(t)).collect();
        for pair in fracs.windows(2) {
            prop_assert!(pair[0] <= pair[1] + 1e-12);
        }
    }

    #[test]
    fn fifo_server_conserves_work(
        services in proptest::collection::vec(1u64..10_000, 1..100),
    ) {
        let mut server = FifoServer::new();
        let mut last = Time::ZERO;
        for &s in &services {
            last = server.submit(Time::ZERO, Dur::from_nanos(s));
        }
        // All submitted at t=0: the last completion equals total work.
        let total: u64 = services.iter().sum();
        prop_assert_eq!(last.as_nanos(), total);
        prop_assert_eq!(server.busy_time().as_nanos(), total);
        prop_assert_eq!(server.served(), services.len() as u64);
    }

    #[test]
    fn pool_is_no_slower_than_single_server_and_no_faster_than_ideal(
        services in proptest::collection::vec(1u64..10_000, 1..100),
        servers in 1usize..16,
    ) {
        let mut pool = ServerPool::new(servers);
        let mut single = FifoServer::new();
        let mut pool_last = Time::ZERO;
        let mut single_last = Time::ZERO;
        for &s in &services {
            pool_last = pool_last.max(pool.submit(Time::ZERO, Dur::from_nanos(s)));
            single_last = single.submit(Time::ZERO, Dur::from_nanos(s));
        }
        let total: u64 = services.iter().sum();
        let max = *services.iter().max().unwrap();
        prop_assert!(pool_last <= single_last, "pool slower than one server");
        let ideal = (total / servers as u64).max(max);
        prop_assert!(pool_last.as_nanos() >= ideal.min(total), "pool beat the ideal bound");
    }

    #[test]
    fn link_never_exceeds_configured_bandwidth(
        transfers in proptest::collection::vec(1u64..1_000_000, 1..50),
        gbps in 1u64..64,
    ) {
        let bw = gbps as f64 * 1e9;
        let mut link = Link::new(bw, Dur::ZERO);
        let mut last = Time::ZERO;
        for &bytes in &transfers {
            last = link.transfer(Time::ZERO, bytes);
        }
        let total: u64 = transfers.iter().sum();
        let elapsed = last.as_nanos() as f64 / 1e9;
        let achieved = total as f64 / elapsed.max(1e-12);
        prop_assert!(achieved <= bw * 1.01, "achieved {achieved:.3e} over {bw:.3e}");
    }

    #[test]
    fn summary_mean_is_between_min_and_max(
        values in proptest::collection::vec(-1e6f64..1e6, 1..200),
    ) {
        let mut s = Summary::new();
        for &v in &values {
            s.observe(v);
        }
        let (min, max) = (s.min().unwrap(), s.max().unwrap());
        prop_assert!(min <= s.mean() + 1e-9 && s.mean() <= max + 1e-9);
        prop_assert_eq!(s.count(), values.len() as u64);
    }

    #[test]
    fn time_duration_arithmetic_is_consistent(
        a in 0u64..1_000_000_000,
        b in 0u64..1_000_000_000,
    ) {
        let t = Time::from_nanos(a);
        let d = Dur::from_nanos(b);
        prop_assert_eq!((t + d).since(t), d);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!(t.since(t + d), Dur::ZERO);
    }
}
