//! Differential property tests: the hierarchical timing wheel
//! ([`gmt_sim::events::EventQueue`]) against the retained binary-heap
//! reference ([`gmt_sim::events::reference::HeapQueue`]).
//!
//! The heap is the executable spec: any random interleaving of
//! schedule / cancel / pop must produce *identical* `EventId`s,
//! identical lengths, and identical `(time, payload)` pop sequences —
//! including the FIFO order of events scheduled at the same instant.

use gmt_sim::events::{reference::HeapQueue, EventId, EventQueue};
use gmt_sim::Time;
use proptest::prelude::*;

/// One step of a randomized workload against both queues, decoded from
/// a `(selector, value)` pair (the vendored proptest shim has no
/// `prop_oneof`, so the op mix is decoded by hand).
#[derive(Debug, Clone)]
enum Op {
    /// Schedule `gap` ns after the current virtual now.
    Schedule { gap: u64 },
    /// Pop one event from both queues.
    Pop,
    /// Cancel the `value % live`-th still-live id (no-op when none).
    Cancel { idx: usize },
    /// Compare `next_time` on both queues (must not perturb either).
    Peek,
}

/// Gaps span several wheel levels, with a deliberate mass at zero so
/// same-instant FIFO ties are exercised constantly.
fn decode(sel: u8, value: u64) -> Op {
    match sel {
        0 => Op::Schedule { gap: 0 },
        1 => Op::Schedule { gap: value % 64 },
        2 => Op::Schedule { gap: value % 4_096 },
        3 => Op::Schedule {
            gap: value % 1_000_000,
        },
        4 => Op::Schedule {
            gap: value % (1 << 40),
        },
        5 | 6 => Op::Pop,
        7 => Op::Cancel {
            idx: value as usize,
        },
        _ => Op::Peek,
    }
}

proptest! {
    #[test]
    fn wheel_matches_heap_on_random_interleavings(
        raw in proptest::collection::vec((0u8..9, 0u64..u64::MAX), 1..600),
    ) {
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        let mut live: Vec<EventId> = Vec::new();
        let mut payload = 0u64;

        for (sel, value) in raw {
            match decode(sel, value) {
                Op::Schedule { gap } => {
                    let at = Time::from_nanos(wheel.now().as_nanos() + gap);
                    let a = wheel.schedule(at, payload);
                    let b = heap.schedule(at, payload);
                    prop_assert_eq!(a, b, "ids diverged");
                    live.push(a);
                    payload += 1;
                }
                Op::Pop => {
                    let a = wheel.pop();
                    let b = heap.pop();
                    prop_assert_eq!(a, b, "pop diverged");
                    prop_assert_eq!(wheel.now(), heap.now());
                }
                Op::Cancel { idx } => {
                    if !live.is_empty() {
                        let id = live.swap_remove(idx % live.len());
                        prop_assert_eq!(wheel.cancel(id), heap.cancel(id));
                        // A second cancel of the same id is a no-op on both.
                        prop_assert_eq!(wheel.cancel(id), heap.cancel(id));
                    }
                }
                Op::Peek => {
                    prop_assert_eq!(wheel.next_time(), heap.next_time());
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.is_empty(), heap.is_empty());
        }

        // Drain both to the end: the full remaining sequence must match.
        loop {
            let a = wheel.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn fifo_ties_pop_in_schedule_order(
        instants in proptest::collection::vec(0u64..16u64, 2..200),
    ) {
        // Many events landing on very few instants: within one instant,
        // both queues must pop in schedule order (seq order).
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        for (i, t) in instants.iter().enumerate() {
            let at = Time::from_nanos(*t);
            wheel.schedule(at, i as u64);
            heap.schedule(at, i as u64);
        }
        let mut last: Option<(Time, u64)> = None;
        while let Some(a) = wheel.pop() {
            let b = heap.pop().expect("heap drains in lockstep");
            prop_assert_eq!(a, b);
            if let Some((lt, lp)) = last {
                prop_assert!(a.0 >= lt, "time went backwards");
                if a.0 == lt {
                    prop_assert!(a.1 > lp, "FIFO tie order violated");
                }
            }
            last = Some(a);
        }
        prop_assert!(heap.pop().is_none());
    }
}
