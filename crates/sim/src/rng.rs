//! Deterministic random-number helpers.
//!
//! Every stochastic component in the workspace (workload generators, the
//! GMT-Random policy, the Zipf micro-benchmark) takes an explicit seed so
//! that experiments are exactly reproducible run-to-run.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic RNG from a `u64` seed.
///
/// # Examples
///
/// ```
/// use rand::Rng;
/// let mut a = gmt_sim::rng::seeded(7);
/// let mut b = gmt_sim::rng::seeded(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream index.
///
/// SplitMix64 finalizer — changing either input decorrelates the output,
/// letting one experiment seed fan out into independent per-component
/// streams.
///
/// # Examples
///
/// ```
/// let a = gmt_sim::rng::derive(42, 0);
/// let b = gmt_sim::rng::derive(42, 1);
/// assert_ne!(a, b);
/// ```
pub fn derive(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(123);
        let mut b = seeded(123);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn derive_decorrelates_streams() {
        let seeds: Vec<u64> = (0..64).map(|i| derive(99, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn derive_is_pure() {
        assert_eq!(derive(5, 9), derive(5, 9));
    }
}
