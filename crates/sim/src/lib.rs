//! Discrete-event simulation substrate for the GMT reproduction.
//!
//! This crate provides the timing vocabulary shared by every hardware model
//! in the workspace:
//!
//! * [`Time`] and [`Dur`] — nanosecond-granularity virtual time,
//! * [`FifoServer`], [`ServerPool`], [`Link`] — queueing resources used to
//!   model DMA engines, SSD channels and PCIe links,
//! * [`Zipf`] — the skewed access generator used by the paper's transfer
//!   micro-benchmark (Fig. 6b),
//! * [`stats`] — counters and log-bucketed histograms for experiment output,
//! * [`rng`] — deterministic, seedable random number helpers.
//!
//! # Examples
//!
//! Model a DMA engine as a single FIFO server with a 2 µs per-call overhead:
//!
//! ```
//! use gmt_sim::{FifoServer, Time, Dur};
//!
//! let mut dma = FifoServer::new();
//! let t0 = Time::ZERO;
//! let first = dma.submit(t0, Dur::from_micros(2));
//! let second = dma.submit(t0, Dur::from_micros(2));
//! assert_eq!(first, Time::ZERO + Dur::from_micros(2));
//! // The second request queues behind the first.
//! assert_eq!(second, Time::ZERO + Dur::from_micros(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod server;
mod time;
mod zipf;

pub mod events;
pub mod rng;
pub mod stats;
pub mod trace;

pub use server::{FifoServer, Link, ServerPool};
pub use time::{Dur, Time};
pub use zipf::Zipf;
