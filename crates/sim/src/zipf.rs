//! Zipf-distributed sampling over `{0, …, n-1}`.
//!
//! The paper's transfer micro-benchmark (Fig. 6b) draws page addresses from a
//! Zipf distribution whose skew is swept from 0 (uniform) to 1 (heavily
//! skewed). `rand` does not ship a Zipf sampler, so we implement
//! rejection-inversion sampling after Hörmann & Derflinger ("Rejection-
//! inversion to generate variates from monotone discrete distributions",
//! 1996) — the same algorithm used by `rand_distr`.

use rand::Rng;

/// A Zipf distribution over ranks `0..n` with exponent `s >= 0`.
///
/// Rank `k` (0-based) is drawn with probability proportional to
/// `1 / (k + 1)^s`. `s = 0` degenerates to the uniform distribution.
///
/// # Examples
///
/// ```
/// use gmt_sim::Zipf;
/// use rand::{SeedableRng, rngs::StdRng};
///
/// let zipf = Zipf::new(1000, 0.99);
/// let mut rng = StdRng::seed_from_u64(7);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    n: u64,
    s: f64,
    // Precomputed constants for rejection-inversion.
    h_x1: f64,
    h_integral_x1: f64,
    h_integral_n: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `{0, …, n-1}` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or if `s` is negative or not finite.
    pub fn new(n: u64, s: f64) -> Zipf {
        assert!(n > 0, "zipf support must be non-empty");
        assert!(
            s.is_finite() && s >= 0.0,
            "zipf exponent must be finite and non-negative"
        );
        let h_integral_x1 = h_integral(1.5, s) - 1.0;
        let h_integral_n = h_integral(n as f64 + 0.5, s);
        let h_x1 = h(1.5, s) - 1.0;
        Zipf {
            n,
            s,
            h_x1,
            h_integral_x1,
            h_integral_n,
        }
    }

    /// Number of ranks in the support.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew exponent.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Draws a 0-based rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.s == 0.0 {
            return rng.gen_range(0..self.n);
        }
        loop {
            let u = self.h_integral_n + rng.gen::<f64>() * (self.h_integral_x1 - self.h_integral_n);
            let x = h_integral_inverse(u, self.s);
            let k64 = x.round().clamp(1.0, self.n as f64);
            let k = k64 as u64;
            // Accept k if u falls under the histogram bar for k.
            if u >= h_integral(k64 + 0.5, self.s) - h(k64, self.s)
                || u >= h_integral(k64 + 0.5, self.s) - self.h_x1 + 1.0 && k == 1
            {
                return k - 1;
            }
        }
    }
}

/// `H(x)`, the integral of `x^-s`.
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - s) * log_x) * log_x
}

/// `h(x) = x^-s`.
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// Inverse of `h_integral`.
fn h_integral_inverse(x: f64, s: f64) -> f64 {
    let mut t = x * (1.0 - s);
    if t < -1.0 {
        t = -1.0;
    }
    (helper1(t) * x).exp()
}

/// `log(1+x)/x`, stable near zero.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `(exp(x)-1)/x`, stable near zero.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + 0.25 * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn freq(n: u64, s: f64, draws: usize) -> Vec<f64> {
        let zipf = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        counts
            .into_iter()
            .map(|c| c as f64 / draws as f64)
            .collect()
    }

    #[test]
    fn uniform_when_s_is_zero() {
        let f = freq(10, 0.0, 100_000);
        for p in f {
            assert!((p - 0.1).abs() < 0.01, "uniform probability off: {p}");
        }
    }

    #[test]
    fn skew_one_matches_harmonic_weights() {
        let n = 8u64;
        let f = freq(n, 1.0, 400_000);
        let hn: f64 = (1..=n).map(|k| 1.0 / k as f64).sum();
        for (k, p) in f.iter().enumerate() {
            let expected = 1.0 / ((k + 1) as f64) / hn;
            assert!(
                (p - expected).abs() < 0.01,
                "rank {k}: got {p}, expected {expected}"
            );
        }
    }

    #[test]
    fn higher_skew_concentrates_mass_on_rank_zero() {
        let low = freq(100, 0.2, 50_000)[0];
        let high = freq(100, 0.99, 50_000)[0];
        assert!(
            high > low * 3.0,
            "rank-0 mass: low-skew {low}, high-skew {high}"
        );
    }

    #[test]
    fn samples_stay_in_range() {
        let zipf = Zipf::new(3, 0.7);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn singleton_support() {
        let zipf = Zipf::new(1, 0.9);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(zipf.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "support must be non-empty")]
    fn zero_support_rejected() {
        let _ = Zipf::new(0, 0.5);
    }
}
