//! Counters and histograms for collecting experiment metrics.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A saturating event counter.
///
/// # Examples
///
/// ```
/// use gmt_sim::stats::Counter;
/// let mut hits = Counter::default();
/// hits.add(3);
/// hits.incr();
/// assert_eq!(hits.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n` events.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Adds one event.
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A log2-bucketed histogram of `u64` values.
///
/// Bucket `i` holds values `v` with `floor(log2(v)) == i` (bucket 0 also
/// holds 0). Used for reuse-distance and RRD distributions (paper Fig. 7),
/// where the quantities span many orders of magnitude.
///
/// # Examples
///
/// ```
/// use gmt_sim::stats::Histogram;
/// let mut h = Histogram::new();
/// h.record(1);
/// h.record(1000);
/// assert_eq!(h.count(), 2);
/// assert!(h.mean() > 400.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let bucket = if value <= 1 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value.
    ///
    /// Returns `None` if the histogram is empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value.
    ///
    /// Returns `None` if the histogram is empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Returns `(bucket_lower_bound, count)` pairs for non-empty buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (if i == 0 { 0 } else { 1u64 << i }, *c))
    }

    /// Fraction of recorded values that are `< threshold`.
    ///
    /// Exact at bucket boundaries; within a bucket the mass is assumed
    /// uniform. Used to split an RRD distribution at tier-capacity lines.
    pub fn fraction_below(&self, threshold: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mut below = 0.0f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let lo = if i == 0 { 0u64 } else { 1u64 << i };
            let hi = 1u64 << (i + 1); // exclusive
            if hi <= threshold {
                below += c as f64;
            } else if lo < threshold {
                let span = (hi - lo) as f64;
                below += c as f64 * (threshold - lo) as f64 / span;
            }
        }
        below / self.count as f64
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Streaming mean/min/max summary of `f64` observations.
///
/// # Examples
///
/// ```
/// use gmt_sim::stats::Summary;
/// let mut s = Summary::new();
/// s.observe(1.0);
/// s.observe(3.0);
/// assert_eq!(s.mean(), 2.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Summary {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of observations (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new();
        c.add(u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets, vec![(0, 2), (2, 2), (1024, 1)]);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1024));
    }

    #[test]
    fn fraction_below_exact_at_boundaries() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 4, 8, 16, 32, 64, 128] {
            h.record(v);
        }
        // 1 is in bucket 0; threshold 2 puts exactly bucket 0 below.
        assert!((h.fraction_below(2) - 1.0 / 8.0).abs() < 1e-9);
        assert!((h.fraction_below(256) - 1.0).abs() < 1e-9);
        assert_eq!(h.fraction_below(0), 0.0);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Some(500));
        assert_eq!(a.min(), Some(5));
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.fraction_below(100), 0.0);
    }

    #[test]
    fn summary_tracks_extremes() {
        let mut s = Summary::new();
        for v in [3.0, -1.0, 10.0] {
            s.observe(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 4.0);
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.max(), Some(10.0));
    }
}
