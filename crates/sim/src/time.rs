//! Virtual time for the simulation: nanosecond instants and durations.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the simulated clock, in nanoseconds since simulation start.
///
/// `Time` is a transparent `u64` newtype so it can be stored densely in page
/// tables and event queues.
///
/// # Examples
///
/// ```
/// use gmt_sim::{Time, Dur};
///
/// let t = Time::ZERO + Dur::from_micros(130);
/// assert_eq!(t.as_nanos(), 130_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use gmt_sim::Dur;
///
/// let d = Dur::from_micros(50);
/// assert_eq!(d * 2, Dur::from_micros(100));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Dur(u64);

impl Time {
    /// The start of the simulation.
    pub const ZERO: Time = Time(0);

    /// The largest representable instant (used as "never").
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant from a raw nanosecond count.
    pub const fn from_nanos(ns: u64) -> Time {
        Time(ns)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use gmt_sim::{Time, Dur};
    /// let a = Time::from_nanos(100);
    /// let b = Time::from_nanos(250);
    /// assert_eq!(b.since(a), Dur::from_nanos(150));
    /// assert_eq!(a.since(b), Dur::ZERO);
    /// ```
    pub fn since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }
}

impl Dur {
    /// The zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Dur {
        Dur(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Dur {
        Dur(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Dur {
        Dur(ms * 1_000_000)
    }

    /// Creates a duration from (fractional) seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Dur {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative"
        );
        Dur((secs * 1e9).round() as u64)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this duration expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration needed to move `bytes` over a channel of `bytes_per_sec`.
    ///
    /// # Examples
    ///
    /// ```
    /// use gmt_sim::Dur;
    /// // 64 KiB over ~3.2 GB/s is ~20.5 us.
    /// let d = Dur::for_bytes(64 * 1024, 3.2e9);
    /// assert!(d > Dur::from_micros(20) && d < Dur::from_micros(21));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not strictly positive.
    pub fn for_bytes(bytes: u64, bytes_per_sec: f64) -> Dur {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        Dur::from_secs_f64(bytes as f64 / bytes_per_sec)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, rhs: Dur) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    fn sub(self, rhs: Dur) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        // gmt-lint: allow(P1): underflow means a causality bug; a loud panic beats wrapping time.
        Dur(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl SubAssign for Dur {
    fn sub_assign(&mut self, rhs: Dur) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", Dur(self.0))
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = Time::from_nanos(1_000);
        let t2 = t + Dur::from_nanos(500);
        assert_eq!(t2.as_nanos(), 1_500);
        assert_eq!(t2.since(t), Dur::from_nanos(500));
        assert_eq!(t.since(t2), Dur::ZERO);
    }

    #[test]
    fn dur_constructors_agree() {
        assert_eq!(Dur::from_micros(1), Dur::from_nanos(1_000));
        assert_eq!(Dur::from_millis(1), Dur::from_micros(1_000));
        assert_eq!(Dur::from_secs_f64(1.0), Dur::from_millis(1_000));
    }

    #[test]
    fn for_bytes_matches_manual_math() {
        let d = Dur::for_bytes(1_000_000_000, 1e9);
        assert_eq!(d, Dur::from_secs_f64(1.0));
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(Dur::from_nanos(3).to_string(), "3ns");
        assert_eq!(Dur::from_micros(50).to_string(), "50.000us");
        assert_eq!(Dur::from_millis(7).to_string(), "7.000ms");
        assert_eq!(Dur::from_secs_f64(2.5).to_string(), "2.500s");
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(Time::MAX + Dur::from_nanos(1), Time::MAX);
        assert_eq!(
            Dur::from_nanos(5).saturating_sub(Dur::from_nanos(9)),
            Dur::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "duration underflow")]
    fn strict_sub_panics_on_underflow() {
        let _ = Dur::from_nanos(1) - Dur::from_nanos(2);
    }

    #[test]
    fn sum_of_durations() {
        let total: Dur = [Dur::from_nanos(1), Dur::from_nanos(2), Dur::from_nanos(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Dur::from_nanos(6));
    }

    #[test]
    fn min_max_ordering() {
        let a = Time::from_nanos(10);
        let b = Time::from_nanos(20);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
