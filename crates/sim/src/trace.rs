//! Structured decision-trace observability.
//!
//! Every tiering decision the runtimes make — Tier-1 hits and misses,
//! evictions with their predicted and actual destination, Tier-2
//! placements and wasteful lookups, SSD submissions with instantaneous
//! queue depth, PCIe batch transfers — can be recorded as a typed
//! [`TraceEvent`] stamped with the virtual clock ([`Time`]) and the
//! runtime's global virtual-timestamp counter (`vt`).
//!
//! The collector is a [`TraceSink`]: a cheaply cloneable handle to a
//! bounded ring buffer. A disabled sink (the default) stores nothing and
//! makes [`TraceSink::emit`] a single branch on `None`, so instrumented
//! hot paths cost nothing when tracing is off. All components of one
//! runtime share clones of the same sink, which keeps the record stream
//! globally ordered exactly as decisions were made.
//!
//! Records export to line-oriented JSON ([`to_jsonl`]) and CSV
//! ([`to_csv`]). Both writers are hand-rolled over integers and fixed
//! strings only, so identical configurations and seeds produce
//! byte-identical files — the property the golden-trace regression tests
//! rely on.
//!
//! # Examples
//!
//! ```
//! use gmt_sim::trace::{TraceEvent, TraceSink, TierTag};
//! use gmt_sim::Time;
//!
//! let sink = TraceSink::bounded(16);
//! sink.set_vt(1);
//! sink.emit(Time::from_nanos(130), TraceEvent::Tier1Hit { page: 7 });
//! sink.emit(
//!     Time::from_nanos(260),
//!     TraceEvent::Tier1Miss { page: 9, resident: TierTag::Ssd },
//! );
//! let jsonl = gmt_sim::trace::to_jsonl(&sink.snapshot());
//! assert!(jsonl.starts_with(r#"{"t":130,"vt":1,"ev":"t1_hit","page":7}"#));
//! ```

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use crate::Time;

/// The tier a page lives in (or moves to), as named by the paper:
/// Tier-1 is GPU memory, Tier-2 host memory, Tier-3 the SSD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TierTag {
    /// Tier-1: GPU HBM.
    Gpu,
    /// Tier-2: host DRAM.
    Host,
    /// Tier-3: NVMe SSD.
    Ssd,
}

impl TierTag {
    /// Short stable label used by the exporters (`t1`/`t2`/`t3`).
    pub fn label(self) -> &'static str {
        match self {
            TierTag::Gpu => "t1",
            TierTag::Host => "t2",
            TierTag::Ssd => "t3",
        }
    }
}

impl fmt::Display for TierTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Direction of a PCIe batch relative to the GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkDir {
    /// GPU → host (evictions, write-backs).
    ToHost,
    /// Host → GPU (fills).
    ToGpu,
}

impl LinkDir {
    /// Stable label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            LinkDir::ToHost => "to_host",
            LinkDir::ToGpu => "to_gpu",
        }
    }
}

/// One traced decision or hardware interaction.
///
/// Pages are raw `u64` frame numbers (the numeric value of the owning
/// crate's `PageId`): this crate sits below the memory model in the
/// dependency graph, so it cannot name that type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// The accessed page was already resident in Tier-1.
    Tier1Hit {
        /// Accessed page.
        page: u64,
    },
    /// The accessed page missed Tier-1; `resident` is where the lookup
    /// ultimately found it.
    Tier1Miss {
        /// Accessed page.
        page: u64,
        /// Tier the page was fetched from (`Host` or `Ssd`).
        resident: TierTag,
    },
    /// A page was installed into Tier-1.
    Tier1Fill {
        /// Filled page.
        page: u64,
        /// Tier the data came from.
        source: TierTag,
        /// Virtual instant the fill's data transfer completes, in ns.
        ready_ns: u64,
    },
    /// A Tier-1 victim was selected for eviction. `target` is the
    /// placement the policy *intended*; the outcome is recorded
    /// separately ([`TraceEvent::Tier2Place`], [`TraceEvent::EvictDiscard`],
    /// [`TraceEvent::SsdWriteBack`]) because a full Tier-2 can overrule
    /// the intent.
    Eviction {
        /// Evicted page.
        page: u64,
        /// The reuse predictor's forecast tier, when a predictor ran.
        predicted: Option<TierTag>,
        /// Tier the policy chose to send the victim to.
        target: TierTag,
        /// Whether the victim held dirty data.
        dirty: bool,
    },
    /// An evicted page actually entered Tier-2.
    Tier2Place {
        /// Placed page.
        page: u64,
        /// Whether the page carried dirty data into Tier-2.
        dirty: bool,
    },
    /// Tier-2 spilled a resident page to make room (FIFO/clock/random
    /// insertion modes).
    Tier2Spill {
        /// Spilled page.
        page: u64,
        /// Whether the spilled page had to be written to the SSD.
        dirty: bool,
    },
    /// A clean Tier-1 victim was dropped without any data movement.
    EvictDiscard {
        /// Discarded page.
        page: u64,
    },
    /// A dirty Tier-1 victim was written straight back to the SSD.
    SsdWriteBack {
        /// Written-back page.
        page: u64,
    },
    /// A Tier-1 miss was served from Tier-2.
    Tier2Hit {
        /// Hit page.
        page: u64,
    },
    /// A Tier-1 miss probed Tier-2 and found nothing (paper §2.1's
    /// "wasteful lookup").
    WastefulLookup {
        /// Probed page.
        page: u64,
    },
    /// A past tier prediction was graded on the page's next touch.
    PredictionGraded {
        /// Re-touched page.
        page: u64,
        /// Tier the predictor had forecast.
        predicted: TierTag,
        /// Tier that would have been optimal in hindsight.
        actual: TierTag,
        /// Whether the forecast matched.
        correct: bool,
    },
    /// A page fetch was issued by the sequential prefetcher, not demand.
    Prefetch {
        /// Prefetched page.
        page: u64,
    },
    /// A command entered an SSD device.
    SsdSubmit {
        /// Index of the device within its array.
        device: u32,
        /// `true` for writes, `false` for reads.
        write: bool,
        /// Payload size in bytes.
        bytes: u64,
        /// Commands in flight on this device *including* this one.
        queue_depth: u32,
    },
    /// A previously submitted SSD command finished.
    SsdComplete {
        /// Index of the device within its array.
        device: u32,
        /// `true` for writes, `false` for reads.
        write: bool,
        /// Commands still in flight on this device after this completion.
        queue_depth: u32,
    },
    /// A command was pushed onto an NVMe submission ring.
    RingSubmit {
        /// Command identifier assigned by the ring.
        cid: u16,
        /// `true` for writes, `false` for reads.
        write: bool,
        /// Ring occupancy *including* this command.
        queue_depth: u32,
    },
    /// A completion was reaped from an NVMe completion ring.
    RingComplete {
        /// Command identifier being completed.
        cid: u16,
        /// Ring occupancy after reaping this completion.
        queue_depth: u32,
    },
    /// A batch of pages crossed the PCIe link.
    PcieBatch {
        /// Transfer direction.
        direction: LinkDir,
        /// Number of 4 KiB pages in the batch.
        pages: u32,
        /// Total payload bytes.
        bytes: u64,
        /// `true` when moved by zero-copy mapped stores rather than DMA.
        zero_copy: bool,
        /// End-to-end batch latency in ns.
        latency_ns: u64,
    },
    /// A warp-level access entered the runtime.
    WarpAccess {
        /// First page of the access.
        page: u64,
        /// `true` for stores.
        write: bool,
    },
}

impl TraceEvent {
    /// The exporters' stable event name.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Tier1Hit { .. } => "t1_hit",
            TraceEvent::Tier1Miss { .. } => "t1_miss",
            TraceEvent::Tier1Fill { .. } => "t1_fill",
            TraceEvent::Eviction { .. } => "evict",
            TraceEvent::Tier2Place { .. } => "t2_place",
            TraceEvent::Tier2Spill { .. } => "t2_spill",
            TraceEvent::EvictDiscard { .. } => "evict_discard",
            TraceEvent::SsdWriteBack { .. } => "ssd_writeback",
            TraceEvent::Tier2Hit { .. } => "t2_hit",
            TraceEvent::WastefulLookup { .. } => "wasteful_lookup",
            TraceEvent::PredictionGraded { .. } => "prediction",
            TraceEvent::Prefetch { .. } => "prefetch",
            TraceEvent::SsdSubmit { .. } => "ssd_submit",
            TraceEvent::SsdComplete { .. } => "ssd_complete",
            TraceEvent::RingSubmit { .. } => "ring_submit",
            TraceEvent::RingComplete { .. } => "ring_complete",
            TraceEvent::PcieBatch { .. } => "pcie_batch",
            TraceEvent::WarpAccess { .. } => "warp_access",
        }
    }
}

/// One trace record: an event plus its two timestamps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual instant the event was recorded.
    pub at: Time,
    /// The runtime's global virtual-timestamp counter (one tick per
    /// coalesced memory transaction) at recording time.
    pub vt: u64,
    /// The tenant on whose behalf the event happened, when the recording
    /// runtime serves more than one workload stream (`gmt-serve`).
    /// Single-tenant runtimes never set it, and the exporters omit it
    /// when absent, so their output is unchanged from the pre-tenant
    /// schema.
    pub tenant: Option<u32>,
    /// The event itself.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// Renders the record as one line of JSON (no trailing newline).
    ///
    /// Field order is fixed and all values are integers, booleans or
    /// fixed strings, so the output is byte-stable across runs and
    /// platforms.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"t\":");
        s.push_str(&self.at.as_nanos().to_string());
        s.push_str(",\"vt\":");
        s.push_str(&self.vt.to_string());
        if let Some(tenant) = self.tenant {
            s.push_str(",\"tenant\":");
            s.push_str(&tenant.to_string());
        }
        s.push_str(",\"ev\":\"");
        s.push_str(self.event.name());
        s.push('"');
        let mut field = |name: &str, value: &str| {
            s.push_str(",\"");
            s.push_str(name);
            s.push_str("\":");
            s.push_str(value);
        };
        fn quoted(v: &str) -> String {
            format!("\"{v}\"")
        }
        match &self.event {
            TraceEvent::Tier1Hit { page }
            | TraceEvent::EvictDiscard { page }
            | TraceEvent::SsdWriteBack { page }
            | TraceEvent::Tier2Hit { page }
            | TraceEvent::WastefulLookup { page }
            | TraceEvent::Prefetch { page } => field("page", &page.to_string()),
            TraceEvent::Tier1Miss { page, resident } => {
                field("page", &page.to_string());
                field("resident", &quoted(resident.label()));
            }
            TraceEvent::Tier1Fill {
                page,
                source,
                ready_ns,
            } => {
                field("page", &page.to_string());
                field("source", &quoted(source.label()));
                field("ready", &ready_ns.to_string());
            }
            TraceEvent::Eviction {
                page,
                predicted,
                target,
                dirty,
            } => {
                field("page", &page.to_string());
                match predicted {
                    Some(p) => field("predicted", &quoted(p.label())),
                    None => field("predicted", "null"),
                }
                field("target", &quoted(target.label()));
                field("dirty", &dirty.to_string());
            }
            TraceEvent::Tier2Place { page, dirty } | TraceEvent::Tier2Spill { page, dirty } => {
                field("page", &page.to_string());
                field("dirty", &dirty.to_string());
            }
            TraceEvent::PredictionGraded {
                page,
                predicted,
                actual,
                correct,
            } => {
                field("page", &page.to_string());
                field("predicted", &quoted(predicted.label()));
                field("actual", &quoted(actual.label()));
                field("correct", &correct.to_string());
            }
            TraceEvent::SsdSubmit {
                device,
                write,
                bytes,
                queue_depth,
            } => {
                field("device", &device.to_string());
                field("write", &write.to_string());
                field("bytes", &bytes.to_string());
                field("depth", &queue_depth.to_string());
            }
            TraceEvent::SsdComplete {
                device,
                write,
                queue_depth,
            } => {
                field("device", &device.to_string());
                field("write", &write.to_string());
                field("depth", &queue_depth.to_string());
            }
            TraceEvent::RingSubmit {
                cid,
                write,
                queue_depth,
            } => {
                field("cid", &cid.to_string());
                field("write", &write.to_string());
                field("depth", &queue_depth.to_string());
            }
            TraceEvent::RingComplete { cid, queue_depth } => {
                field("cid", &cid.to_string());
                field("depth", &queue_depth.to_string());
            }
            TraceEvent::PcieBatch {
                direction,
                pages,
                bytes,
                zero_copy,
                latency_ns,
            } => {
                field("dir", &quoted(direction.label()));
                field("pages", &pages.to_string());
                field("bytes", &bytes.to_string());
                field("zero_copy", &zero_copy.to_string());
                field("latency", &latency_ns.to_string());
            }
            TraceEvent::WarpAccess { page, write } => {
                field("page", &page.to_string());
                field("write", &write.to_string());
            }
        }
        s.push('}');
        s
    }
}

/// Renders records as line-delimited JSON, one record per line.
///
/// The output ends with a newline when `records` is non-empty, and is
/// byte-identical for identical record sequences.
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 96);
    for r in records {
        out.push_str(&r.to_json_line());
        out.push('\n');
    }
    out
}

/// CSV column header matching [`to_csv`]'s rows.
///
/// `id` is the event's primary identifier (page, device index or ring
/// command id); `tier`/`tier2` carry the event's tier labels (target and
/// predicted, respectively, for evictions; actual and predicted for
/// prediction grades); `flag` is the event's boolean (dirty, write,
/// zero-copy or correct); `depth`, `bytes` and `latency_ns` are filled
/// where the event defines them; `tenant` is the serving tenant id,
/// empty for single-tenant runtimes.
pub const CSV_HEADER: &str = "t_ns,vt,event,id,tier,tier2,flag,depth,bytes,latency_ns,tenant";

/// Renders records as CSV with the [`CSV_HEADER`] columns.
///
/// Absent fields are left empty. Like [`to_jsonl`], the output is
/// byte-stable for identical record sequences.
pub fn to_csv(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(64 + records.len() * 48);
    out.push_str(CSV_HEADER);
    out.push('\n');
    for r in records {
        let id: String;
        let mut tier = "";
        let mut tier2 = "";
        let mut flag = String::new();
        let mut depth = String::new();
        let mut bytes = String::new();
        let mut latency = String::new();
        match &r.event {
            TraceEvent::Tier1Hit { page }
            | TraceEvent::EvictDiscard { page }
            | TraceEvent::SsdWriteBack { page }
            | TraceEvent::Tier2Hit { page }
            | TraceEvent::WastefulLookup { page }
            | TraceEvent::Prefetch { page } => id = page.to_string(),
            TraceEvent::Tier1Miss { page, resident } => {
                id = page.to_string();
                tier = resident.label();
            }
            TraceEvent::Tier1Fill {
                page,
                source,
                ready_ns,
            } => {
                id = page.to_string();
                tier = source.label();
                latency = ready_ns.to_string();
            }
            TraceEvent::Eviction {
                page,
                predicted,
                target,
                dirty,
            } => {
                id = page.to_string();
                tier = target.label();
                tier2 = predicted.map_or("", TierTag::label);
                flag = dirty.to_string();
            }
            TraceEvent::Tier2Place { page, dirty } | TraceEvent::Tier2Spill { page, dirty } => {
                id = page.to_string();
                flag = dirty.to_string();
            }
            TraceEvent::PredictionGraded {
                page,
                predicted,
                actual,
                correct,
            } => {
                id = page.to_string();
                tier = actual.label();
                tier2 = predicted.label();
                flag = correct.to_string();
            }
            TraceEvent::SsdSubmit {
                device,
                write,
                bytes: b,
                queue_depth,
            } => {
                id = device.to_string();
                flag = write.to_string();
                depth = queue_depth.to_string();
                bytes = b.to_string();
            }
            TraceEvent::SsdComplete {
                device,
                write,
                queue_depth,
            } => {
                id = device.to_string();
                flag = write.to_string();
                depth = queue_depth.to_string();
            }
            TraceEvent::RingSubmit {
                cid,
                write,
                queue_depth,
            } => {
                id = cid.to_string();
                flag = write.to_string();
                depth = queue_depth.to_string();
            }
            TraceEvent::RingComplete { cid, queue_depth } => {
                id = cid.to_string();
                depth = queue_depth.to_string();
            }
            TraceEvent::PcieBatch {
                direction,
                pages,
                bytes: b,
                zero_copy,
                latency_ns,
            } => {
                tier = direction.label();
                id = pages.to_string();
                flag = zero_copy.to_string();
                bytes = b.to_string();
                latency = latency_ns.to_string();
            }
            TraceEvent::WarpAccess { page, write } => {
                id = page.to_string();
                flag = write.to_string();
            }
        }
        let tenant = r.tenant.map_or(String::new(), |t| t.to_string());
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{}\n",
            r.at.as_nanos(),
            r.vt,
            r.event.name(),
            id,
            tier,
            tier2,
            flag,
            depth,
            bytes,
            latency,
            tenant,
        ));
    }
    out
}

/// Records per arena chunk: large enough to amortize allocation, small
/// enough that a chunk's byte size stays under the allocator's mmap
/// threshold (glibc: 128 KiB) — so freed chunks return to ordinary heap
/// bins and get reused across runs instead of being mapped and faulted
/// fresh every time.
const CHUNK: usize = 1024;

/// Chunked arena ring: records append into fixed-size chunks, so growth
/// never copies existing records (a `VecDeque` doubling would) and a
/// fully-consumed chunk is recycled through `free` instead of returning
/// to the allocator.
struct Ring {
    chunks: VecDeque<Vec<TraceRecord>>,
    /// Index of the first live record in the front chunk.
    head: usize,
    /// Live records across all chunks.
    len: usize,
    /// Spare chunks recycled from overflow pops and drains.
    free: Vec<Vec<TraceRecord>>,
    capacity: usize,
    dropped: u64,
    vt: u64,
    tenant: Option<u32>,
    last_at: Time,
}

impl Ring {
    #[inline]
    fn push(&mut self, record: TraceRecord) {
        match self.chunks.back_mut() {
            Some(chunk) if chunk.len() < CHUNK => chunk.push(record),
            _ => {
                let mut chunk = self.free.pop().unwrap_or_else(|| Vec::with_capacity(CHUNK));
                chunk.push(record);
                self.chunks.push_back(chunk);
            }
        }
        self.len += 1;
    }

    fn pop_front(&mut self) {
        debug_assert!(self.len > 0);
        self.head += 1;
        self.len -= 1;
        if self.head == CHUNK {
            // Chunks fill to exactly CHUNK before a new one starts, so a
            // head at CHUNK means the front chunk is fully consumed.
            // gmt-lint: allow(P1): len > 0 (debug-asserted) means a front chunk exists.
            let mut chunk = self.chunks.pop_front().expect("front chunk exists");
            chunk.clear();
            self.free.push(chunk);
            self.head = 0;
        }
    }

    fn drain(&mut self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.len);
        let head = self.head;
        for (i, chunk) in self.chunks.iter_mut().enumerate() {
            let start = if i == 0 { head.min(chunk.len()) } else { 0 };
            out.extend(chunk.drain(start..));
            chunk.clear();
        }
        self.free.extend(self.chunks.drain(..));
        self.head = 0;
        self.len = 0;
        out
    }

    fn iter(&self) -> impl Iterator<Item = &TraceRecord> + '_ {
        self.chunks.iter().enumerate().flat_map(move |(i, chunk)| {
            let start = if i == 0 {
                self.head.min(chunk.len())
            } else {
                0
            };
            chunk[start..].iter()
        })
    }
}

/// A cheaply cloneable handle to a bounded trace ring buffer.
///
/// The default sink is *disabled*: it holds no buffer, every [`emit`]
/// returns after one branch, and cloning it is free. An enabled sink
/// ([`TraceSink::bounded`]) shares one ring between all of its clones,
/// so every component of a runtime appends to the same globally ordered
/// stream. When the ring is full the *oldest* record is dropped and
/// counted in [`dropped`].
///
/// [`emit`]: TraceSink::emit
/// [`dropped`]: TraceSink::dropped
#[derive(Clone, Default)]
pub struct TraceSink {
    // gmt-lint: allow(G1): the one sanctioned shared-mutable cell — every component appends to one ordered ring; ROADMAP item 2 (sharded DES) replaces it with per-shard sinks.
    inner: Option<Rc<RefCell<Ring>>>,
}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => f.write_str("TraceSink(disabled)"),
            Some(ring) => {
                let ring = ring.borrow();
                write!(
                    f,
                    "TraceSink(len={}, cap={}, dropped={})",
                    ring.len, ring.capacity, ring.dropped
                )
            }
        }
    }
}

impl TraceSink {
    /// A sink that records nothing (the default).
    pub fn disabled() -> TraceSink {
        TraceSink { inner: None }
    }

    /// A sink retaining the most recent `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn bounded(capacity: usize) -> TraceSink {
        assert!(capacity > 0, "trace ring capacity must be non-zero");
        TraceSink {
            inner: Some(Rc::new(RefCell::new(Ring {
                chunks: VecDeque::new(),
                head: 0,
                len: 0,
                free: Vec::new(),
                capacity,
                dropped: 0,
                vt: 0,
                tenant: None,
                last_at: Time::ZERO,
            }))),
        }
    }

    /// Whether this sink records events.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Updates the virtual-timestamp counter stamped onto subsequent
    /// records. The owning runtime calls this once per coalesced memory
    /// transaction.
    #[inline]
    pub fn set_vt(&self, vt: u64) {
        if let Some(ring) = &self.inner {
            ring.borrow_mut().vt = vt;
        }
    }

    /// The most recently set virtual timestamp (0 when disabled).
    pub fn vt(&self) -> u64 {
        self.inner.as_ref().map_or(0, |r| r.borrow().vt)
    }

    /// Sets the tenant id stamped onto subsequent records, or clears it
    /// with `None`. Multi-tenant runtimes call this when they switch to
    /// servicing a different workload stream; single-tenant runtimes
    /// never call it, keeping their exported traces on the pre-tenant
    /// schema byte-for-byte.
    pub fn set_tenant(&self, tenant: Option<u32>) {
        if let Some(ring) = &self.inner {
            ring.borrow_mut().tenant = tenant;
        }
    }

    /// The most recently set tenant id (`None` when disabled or unset).
    pub fn tenant(&self) -> Option<u32> {
        self.inner.as_ref().and_then(|r| r.borrow().tenant)
    }

    /// Records `event` at instant `at`, dropping the oldest record if
    /// the ring is full. No-op on a disabled sink.
    ///
    /// The stream is a *linearization*: components model parallel
    /// hardware, so a causally-later event can carry an earlier submit
    /// instant (e.g. an SSD fetch issued while a PCIe batch is already in
    /// flight). The sink clamps each record's clock to be monotone, which
    /// keeps the exported trace time-ordered while preserving decision
    /// order exactly.
    #[inline]
    pub fn emit(&self, at: Time, event: TraceEvent) {
        let Some(ring) = &self.inner else { return };
        let mut ring = ring.borrow_mut();
        if ring.len == ring.capacity {
            ring.pop_front();
            ring.dropped += 1;
        }
        let at = at.max(ring.last_at);
        ring.last_at = at;
        let vt = ring.vt;
        let tenant = ring.tenant;
        ring.push(TraceRecord {
            at,
            vt,
            tenant,
            event,
        });
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |r| r.borrow().len)
    }

    /// Whether the buffer holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of records lost to ring overflow since creation.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |r| r.borrow().dropped)
    }

    /// Removes and returns all buffered records, oldest first.
    pub fn drain(&self) -> Vec<TraceRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |r| r.borrow_mut().drain())
    }

    /// Calls `f` on every buffered record, oldest first, without
    /// copying or clearing — the zero-allocation way to fold a large
    /// trace into a summary.
    pub fn visit(&self, mut f: impl FnMut(&TraceRecord)) {
        if let Some(ring) = &self.inner {
            for r in ring.borrow().iter() {
                f(r);
            }
        }
    }

    /// Returns a copy of the buffered records without clearing them.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |r| r.borrow().iter().cloned().collect())
    }
}

/// Checks the orderings every well-formed trace must satisfy: the
/// virtual-timestamp counter never decreases and neither does the clock.
///
/// Returns the index and reason of the first violation.
pub fn validate(records: &[TraceRecord]) -> Result<(), String> {
    for (i, pair) in records.windows(2).enumerate() {
        if pair[1].vt < pair[0].vt {
            return Err(format!(
                "record {}: vt went backwards ({} -> {})",
                i + 1,
                pair[0].vt,
                pair[1].vt
            ));
        }
        if pair[1].at < pair[0].at {
            return Err(format!(
                "record {}: clock went backwards ({} -> {})",
                i + 1,
                pair[0].at.as_nanos(),
                pair[1].at.as_nanos()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, vt: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            at: Time::from_nanos(t),
            vt,
            tenant: None,
            event,
        }
    }

    #[test]
    fn disabled_sink_is_inert() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        sink.set_vt(9);
        sink.set_tenant(Some(1));
        assert_eq!(sink.tenant(), None);
        sink.emit(Time::ZERO, TraceEvent::Tier1Hit { page: 1 });
        assert!(sink.is_empty());
        assert!(sink.drain().is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn clones_share_one_ring() {
        let sink = TraceSink::bounded(8);
        let clone = sink.clone();
        sink.set_vt(3);
        clone.emit(Time::from_nanos(5), TraceEvent::Tier1Hit { page: 2 });
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.snapshot()[0].vt, 3);
    }

    #[test]
    fn ring_drops_oldest_when_full() {
        let sink = TraceSink::bounded(2);
        for page in 0..5u64 {
            sink.emit(Time::from_nanos(page), TraceEvent::Tier1Hit { page });
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 3);
        let pages: Vec<u64> = sink
            .drain()
            .into_iter()
            .map(|r| match r.event {
                TraceEvent::Tier1Hit { page } => page,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pages, vec![3, 4]);
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_is_stable_and_one_line_per_record() {
        let records = vec![
            rec(130, 1, TraceEvent::Tier1Hit { page: 7 }),
            rec(
                260,
                2,
                TraceEvent::Eviction {
                    page: 9,
                    predicted: Some(TierTag::Host),
                    target: TierTag::Ssd,
                    dirty: true,
                },
            ),
            rec(
                300,
                2,
                TraceEvent::PcieBatch {
                    direction: LinkDir::ToGpu,
                    pages: 4,
                    bytes: 16384,
                    zero_copy: false,
                    latency_ns: 2100,
                },
            ),
        ];
        let a = to_jsonl(&records);
        let b = to_jsonl(&records);
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 3);
        assert_eq!(
            a.lines().next().unwrap(),
            r#"{"t":130,"vt":1,"ev":"t1_hit","page":7}"#
        );
        assert_eq!(
            a.lines().nth(1).unwrap(),
            r#"{"t":260,"vt":2,"ev":"evict","page":9,"predicted":"t2","target":"t3","dirty":true}"#
        );
        assert_eq!(
            a.lines().nth(2).unwrap(),
            r#"{"t":300,"vt":2,"ev":"pcie_batch","dir":"to_gpu","pages":4,"bytes":16384,"zero_copy":false,"latency":2100}"#
        );
    }

    #[test]
    fn tenant_stamp_reaches_records_and_exporters() {
        let sink = TraceSink::bounded(8);
        sink.emit(Time::from_nanos(1), TraceEvent::Tier1Hit { page: 0 });
        sink.set_tenant(Some(3));
        assert_eq!(sink.tenant(), Some(3));
        sink.emit(Time::from_nanos(2), TraceEvent::Tier1Hit { page: 1 });
        sink.set_tenant(None);
        sink.emit(Time::from_nanos(3), TraceEvent::Tier1Hit { page: 2 });
        let records = sink.snapshot();
        assert_eq!(
            records.iter().map(|r| r.tenant).collect::<Vec<_>>(),
            vec![None, Some(3), None]
        );
        let jsonl = to_jsonl(&records);
        assert_eq!(
            jsonl.lines().next().unwrap(),
            r#"{"t":1,"vt":0,"ev":"t1_hit","page":0}"#,
            "untagged records keep the pre-tenant schema"
        );
        assert_eq!(
            jsonl.lines().nth(1).unwrap(),
            r#"{"t":2,"vt":0,"tenant":3,"ev":"t1_hit","page":1}"#
        );
        let csv = to_csv(&records);
        assert_eq!(csv.lines().nth(1).unwrap(), "1,0,t1_hit,0,,,,,,,");
        assert_eq!(csv.lines().nth(2).unwrap(), "2,0,t1_hit,1,,,,,,,3");
    }

    #[test]
    fn unpredicted_eviction_serialises_null() {
        let line = rec(
            1,
            1,
            TraceEvent::Eviction {
                page: 3,
                predicted: None,
                target: TierTag::Host,
                dirty: false,
            },
        )
        .to_json_line();
        assert!(line.contains(r#""predicted":null"#), "{line}");
    }

    #[test]
    fn csv_has_header_and_fixed_columns() {
        let records = vec![
            rec(
                10,
                1,
                TraceEvent::SsdSubmit {
                    device: 0,
                    write: false,
                    bytes: 4096,
                    queue_depth: 1,
                },
            ),
            rec(
                20,
                1,
                TraceEvent::Tier1Miss {
                    page: 5,
                    resident: TierTag::Ssd,
                },
            ),
        ];
        let csv = to_csv(&records);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), CSV_HEADER);
        assert_eq!(lines.next().unwrap(), "10,1,ssd_submit,0,,,false,1,4096,,");
        assert_eq!(lines.next().unwrap(), "20,1,t1_miss,5,t3,,,,,,");
        for line in csv.lines() {
            assert_eq!(line.matches(',').count(), CSV_HEADER.matches(',').count());
        }
    }

    #[test]
    fn validate_accepts_ordered_and_rejects_regressions() {
        let good = vec![
            rec(1, 1, TraceEvent::Tier1Hit { page: 0 }),
            rec(1, 1, TraceEvent::Tier1Hit { page: 1 }),
            rec(5, 2, TraceEvent::Tier1Hit { page: 2 }),
        ];
        assert!(validate(&good).is_ok());

        let vt_back = vec![
            rec(1, 2, TraceEvent::Tier1Hit { page: 0 }),
            rec(2, 1, TraceEvent::Tier1Hit { page: 1 }),
        ];
        assert!(validate(&vt_back)
            .unwrap_err()
            .contains("vt went backwards"));

        let clock_back = vec![
            rec(9, 1, TraceEvent::Tier1Hit { page: 0 }),
            rec(3, 1, TraceEvent::Tier1Hit { page: 1 }),
        ];
        assert!(validate(&clock_back)
            .unwrap_err()
            .contains("clock went backwards"));
    }

    #[test]
    fn every_event_round_trips_through_both_exporters() {
        let all = vec![
            TraceEvent::Tier1Hit { page: 1 },
            TraceEvent::Tier1Miss {
                page: 2,
                resident: TierTag::Host,
            },
            TraceEvent::Tier1Fill {
                page: 3,
                source: TierTag::Ssd,
                ready_ns: 77,
            },
            TraceEvent::Eviction {
                page: 4,
                predicted: Some(TierTag::Gpu),
                target: TierTag::Host,
                dirty: false,
            },
            TraceEvent::Tier2Place {
                page: 5,
                dirty: true,
            },
            TraceEvent::Tier2Spill {
                page: 6,
                dirty: false,
            },
            TraceEvent::EvictDiscard { page: 7 },
            TraceEvent::SsdWriteBack { page: 8 },
            TraceEvent::Tier2Hit { page: 9 },
            TraceEvent::WastefulLookup { page: 10 },
            TraceEvent::PredictionGraded {
                page: 11,
                predicted: TierTag::Host,
                actual: TierTag::Ssd,
                correct: false,
            },
            TraceEvent::Prefetch { page: 12 },
            TraceEvent::SsdSubmit {
                device: 0,
                write: true,
                bytes: 4096,
                queue_depth: 2,
            },
            TraceEvent::SsdComplete {
                device: 0,
                write: true,
                queue_depth: 1,
            },
            TraceEvent::RingSubmit {
                cid: 4,
                write: false,
                queue_depth: 3,
            },
            TraceEvent::RingComplete {
                cid: 4,
                queue_depth: 2,
            },
            TraceEvent::PcieBatch {
                direction: LinkDir::ToHost,
                pages: 32,
                bytes: 131072,
                zero_copy: true,
                latency_ns: 999,
            },
            TraceEvent::WarpAccess {
                page: 13,
                write: true,
            },
        ];
        let records: Vec<TraceRecord> = all
            .into_iter()
            .enumerate()
            .map(|(i, e)| rec(i as u64, i as u64, e))
            .collect();
        let jsonl = to_jsonl(&records);
        assert_eq!(jsonl.lines().count(), records.len());
        for (line, r) in jsonl.lines().zip(&records) {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(
                line.contains(&format!("\"ev\":\"{}\"", r.event.name())),
                "{line}"
            );
        }
        let csv = to_csv(&records);
        assert_eq!(csv.lines().count(), records.len() + 1);
    }
}
