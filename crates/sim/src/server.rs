//! Queueing resources: FIFO servers, multi-server pools and bandwidth links.
//!
//! All hardware shared by many GPU threads — the DMA engine, the PCIe link,
//! the SSD controller channels, the host fault handlers — is modelled with
//! these three primitives. They are deliberately *work-conserving FIFO*
//! approximations: a request submitted at time `t` begins service at
//! `max(t, next_free)` and the resource's backlog carries across requests.
//! This is the standard fluid approximation for saturating devices, and is
//! what makes the bandwidth-bound regimes of the paper reproducible without
//! simulating every PCIe TLP.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{Dur, Time};

/// A single work-conserving FIFO server.
///
/// Requests queue behind each other; there is exactly one unit of service
/// capacity. Used for the `cudaMemcpyAsync` DMA engine (the serialization
/// bottleneck highlighted in §2.3 of the paper).
///
/// # Examples
///
/// ```
/// use gmt_sim::{FifoServer, Time, Dur};
/// let mut s = FifoServer::new();
/// let done = s.submit(Time::ZERO, Dur::from_nanos(100));
/// assert_eq!(done.as_nanos(), 100);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FifoServer {
    next_free: Time,
    busy: Dur,
    served: u64,
}

impl FifoServer {
    /// Creates an idle server.
    pub fn new() -> FifoServer {
        FifoServer::default()
    }

    /// Submits a request of length `service` at time `now`; returns the
    /// completion time.
    pub fn submit(&mut self, now: Time, service: Dur) -> Time {
        let start = now.max(self.next_free);
        let done = start + service;
        self.next_free = done;
        self.busy += service;
        self.served += 1;
        done
    }

    /// The earliest time a newly-submitted request would begin service.
    pub fn next_free(&self) -> Time {
        self.next_free
    }

    /// Total time this server has spent serving requests.
    pub fn busy_time(&self) -> Dur {
        self.busy
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }
}

/// A pool of `k` identical FIFO servers; each request is dispatched to the
/// server that frees up first.
///
/// Used for SSD controller channels and for the HMM host-side fault-handler
/// cores (whose limited count is exactly the bottleneck the paper targets).
///
/// # Examples
///
/// ```
/// use gmt_sim::{ServerPool, Time, Dur};
/// let mut pool = ServerPool::new(2);
/// let a = pool.submit(Time::ZERO, Dur::from_nanos(100));
/// let b = pool.submit(Time::ZERO, Dur::from_nanos(100));
/// let c = pool.submit(Time::ZERO, Dur::from_nanos(100));
/// assert_eq!(a.as_nanos(), 100);
/// assert_eq!(b.as_nanos(), 100); // second server
/// assert_eq!(c.as_nanos(), 200); // queues behind the first free server
/// ```
#[derive(Debug, Clone)]
pub struct ServerPool {
    free_at: BinaryHeap<Reverse<Time>>,
    busy: Dur,
    served: u64,
}

impl ServerPool {
    /// Creates a pool with `servers` identical servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(servers: usize) -> ServerPool {
        assert!(servers > 0, "server pool must have at least one server");
        let mut free_at = BinaryHeap::with_capacity(servers);
        for _ in 0..servers {
            free_at.push(Reverse(Time::ZERO));
        }
        ServerPool {
            free_at,
            busy: Dur::ZERO,
            served: 0,
        }
    }

    /// Number of servers in the pool.
    pub fn servers(&self) -> usize {
        self.free_at.len()
    }

    /// Submits a request of length `service` at time `now`; returns the
    /// completion time on the earliest-free server.
    pub fn submit(&mut self, now: Time, service: Dur) -> Time {
        // gmt-lint: allow(P1): the constructor seeds one entry per server and pops are re-pushed.
        let Reverse(free) = self.free_at.pop().expect("pool is never empty");
        let start = now.max(free);
        let done = start + service;
        self.free_at.push(Reverse(done));
        self.busy += service;
        self.served += 1;
        done
    }

    /// The earliest time a newly-submitted request would begin service.
    pub fn next_free(&self) -> Time {
        self.free_at
            .peek()
            .map(|Reverse(t)| *t)
            .unwrap_or(Time::ZERO)
    }

    /// Total service time accumulated across all servers.
    pub fn busy_time(&self) -> Dur {
        self.busy
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }
}

/// A bandwidth-limited pipe with a fixed propagation latency.
///
/// A transfer of `bytes` submitted at `now` occupies the pipe for
/// `bytes / bandwidth` and completes one `latency` later. Models PCIe links
/// and the SSD's aggregate flash bandwidth.
///
/// # Examples
///
/// ```
/// use gmt_sim::{Link, Time, Dur};
/// // A 1 GB/s link with 1 us latency.
/// let mut link = Link::new(1e9, Dur::from_micros(1));
/// let done = link.transfer(Time::ZERO, 1_000_000); // 1 MB -> 1 ms + 1 us
/// assert_eq!(done.as_nanos(), 1_001_000);
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    server: FifoServer,
    bytes_per_sec: f64,
    latency: Dur,
    bytes_moved: u64,
}

impl Link {
    /// Creates a link with the given bandwidth (bytes/second) and
    /// propagation latency.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not strictly positive.
    pub fn new(bytes_per_sec: f64, latency: Dur) -> Link {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        Link {
            server: FifoServer::new(),
            bytes_per_sec,
            latency,
            bytes_moved: 0,
        }
    }

    /// Submits a transfer of `bytes` at `now`; returns its completion time.
    pub fn transfer(&mut self, now: Time, bytes: u64) -> Time {
        self.bytes_moved += bytes;
        let occupancy = Dur::for_bytes(bytes, self.bytes_per_sec);
        self.server.submit(now, occupancy) + self.latency
    }

    /// Submits a transfer of `bytes` whose *source* can only sustain
    /// `rate` bytes/second (e.g. a zero-copy stream driven by few GPU
    /// threads). The link is occupied for the transfer's fair share
    /// (`bytes / link_bandwidth`), so other traffic can interleave, but the
    /// requester completes no earlier than the slow source allows.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn transfer_at_rate(&mut self, now: Time, bytes: u64, rate: f64) -> Time {
        assert!(rate > 0.0, "source rate must be positive");
        self.bytes_moved += bytes;
        let occupancy = Dur::for_bytes(bytes, self.bytes_per_sec);
        let start = now.max(self.server.next_free());
        let queued_done = self.server.submit(now, occupancy);
        let source_done = start + Dur::for_bytes(bytes, rate.min(self.bytes_per_sec));
        queued_done.max(source_done) + self.latency
    }

    /// The link's configured bandwidth in bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// The link's propagation latency.
    pub fn latency(&self) -> Dur {
        self.latency
    }

    /// Total bytes moved over this link.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Earliest time a new transfer would begin occupying the link.
    pub fn next_free(&self) -> Time {
        self.server.next_free()
    }

    /// Total time the link has been occupied.
    pub fn busy_time(&self) -> Dur {
        self.server.busy_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_server_queues_back_to_back() {
        let mut s = FifoServer::new();
        let a = s.submit(Time::ZERO, Dur::from_nanos(10));
        let b = s.submit(Time::ZERO, Dur::from_nanos(10));
        let c = s.submit(Time::from_nanos(100), Dur::from_nanos(10));
        assert_eq!(a.as_nanos(), 10);
        assert_eq!(b.as_nanos(), 20);
        // Idle gap: server waits until now.
        assert_eq!(c.as_nanos(), 110);
        assert_eq!(s.served(), 3);
        assert_eq!(s.busy_time(), Dur::from_nanos(30));
    }

    #[test]
    fn pool_runs_k_in_parallel() {
        let mut pool = ServerPool::new(4);
        let mut finishes: Vec<u64> = (0..8)
            .map(|_| pool.submit(Time::ZERO, Dur::from_nanos(100)).as_nanos())
            .collect();
        finishes.sort_unstable();
        assert_eq!(finishes, vec![100, 100, 100, 100, 200, 200, 200, 200]);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_pool_rejected() {
        let _ = ServerPool::new(0);
    }

    #[test]
    fn link_saturation_matches_bandwidth() {
        // 10 transfers of 1 MB over a 1 GB/s link should take ~10 ms.
        let mut link = Link::new(1e9, Dur::ZERO);
        let mut done = Time::ZERO;
        for _ in 0..10 {
            done = link.transfer(Time::ZERO, 1_000_000);
        }
        assert_eq!(done.as_nanos(), 10_000_000);
        assert_eq!(link.bytes_moved(), 10_000_000);
    }

    #[test]
    fn link_latency_added_after_occupancy() {
        let mut link = Link::new(1e9, Dur::from_micros(5));
        let done = link.transfer(Time::ZERO, 1_000);
        assert_eq!(done.as_nanos(), 1_000 + 5_000);
        // Latency is propagation only: the next transfer can start at 1 us,
        // not after the latency.
        assert_eq!(link.next_free().as_nanos(), 1_000);
    }

    #[test]
    fn rate_limited_transfer_completes_at_source_speed() {
        let mut link = Link::new(10e9, Dur::ZERO);
        // 1 MB from a 1 GB/s source over a 10 GB/s link: source-bound, 1 ms.
        let done = link.transfer_at_rate(Time::ZERO, 1_000_000, 1e9);
        assert_eq!(done.as_nanos(), 1_000_000);
        // But the link was only occupied for 100 us: a second full-rate
        // transfer can start at 100 us, not 1 ms.
        assert_eq!(link.next_free().as_nanos(), 100_000);
    }

    #[test]
    fn rate_above_link_capacity_is_clamped() {
        let mut link = Link::new(1e9, Dur::ZERO);
        let done = link.transfer_at_rate(Time::ZERO, 1_000_000, 50e9);
        assert_eq!(done.as_nanos(), 1_000_000);
    }

    #[test]
    fn pool_next_free_tracks_earliest_server() {
        let mut pool = ServerPool::new(2);
        pool.submit(Time::ZERO, Dur::from_nanos(100));
        assert_eq!(pool.next_free(), Time::ZERO);
        pool.submit(Time::ZERO, Dur::from_nanos(50));
        assert_eq!(pool.next_free().as_nanos(), 50);
    }
}
