//! A general event calendar for discrete-event simulation.
//!
//! The resource models in this crate ([`crate::FifoServer`],
//! [`crate::Link`], …) use closed-form queueing updates and never need a
//! global event loop. Some simulations do — anything with cancellation,
//! timeouts, or cross-entity causality. [`EventQueue`] provides the
//! classic calendar: schedule, cancel, pop-in-time-order, with stable
//! FIFO ordering among simultaneous events.
//!
//! # Implementation
//!
//! [`EventQueue`] is a *hierarchical timing wheel* (Varghese & Lauck):
//! eleven levels of 64 slots, level `l` spanning `64^(l+1)` ns, so the
//! full 64-bit nanosecond range is covered. Scheduling appends to the
//! bucket of the highest level where the event's time diverges from the
//! current cursor — O(1), no comparisons. Popping drains the earliest
//! bucket into a per-instant cohort (sorted by sequence number for the
//! FIFO-tie guarantee) and cascades far-future buckets down one level as
//! their window arrives — amortised O(levels) per event. Cancellation
//! is O(1): a dense `Vec<u8>` keyed by the event's sequence number
//! replaces the hash set a heap calendar would need, so the hot path
//! performs no hashing at all.
//!
//! The original binary-heap calendar is retained verbatim as
//! [`reference::HeapQueue`]: it is the executable specification the
//! differential tests (`tests/events_differential.rs`) drive against the
//! wheel, interleaving by interleaving random schedule/cancel/pop
//! sequences and demanding identical results.

use crate::Time;

/// Handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

/// log2 of the slots per wheel level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Levels needed so `SLOT_BITS * LEVELS >= 64`.
const LEVELS: usize = 11;

/// One scheduled entry as stored in a wheel bucket or the cohort.
#[derive(Debug)]
struct Entry<E> {
    at: u64,
    seq: u64,
    event: E,
}

/// Per-event lifecycle, indexed by sequence number.
const PENDING: u8 = 0;
const DONE: u8 = 1; // popped or cancelled

/// A time-ordered event calendar with O(1) schedule, O(1) cancel and
/// amortised O(1) pop, built on a hierarchical timing wheel.
///
/// Events at equal times pop in scheduling order (deterministic ties).
///
/// # Examples
///
/// ```
/// use gmt_sim::events::EventQueue;
/// use gmt_sim::Time;
///
/// let mut q = EventQueue::new();
/// q.schedule(Time::from_nanos(20), "late");
/// let early = q.schedule(Time::from_nanos(10), "early");
/// q.cancel(early);
/// let (at, event) = q.pop().expect("one event left");
/// assert_eq!((at.as_nanos(), event), (20, "late"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// `LEVELS * SLOTS` buckets, flattened (`level * SLOTS + slot`).
    buckets: Vec<Vec<Entry<E>>>,
    /// One occupancy bitmap per level (bit = slot holds entries).
    occupancy: [u64; LEVELS],
    /// The cohort currently being drained: entries at one instant,
    /// sorted by `seq`, consumed front to back.
    cohort: std::collections::VecDeque<Entry<E>>,
    /// Wheel cursor in nanoseconds. Between pops this equals the last
    /// popped instant, so bucket invariants survive re-scheduling.
    cursor: u64,
    /// Lifecycle per sequence number ([`PENDING`]/[`DONE`]).
    state: Vec<u8>,
    /// Pending (scheduled, not yet popped or cancelled) events.
    live: usize,
    next_seq: u64,
    /// The time of the most recently popped event.
    now: Time,
}

impl<E> Default for EventQueue<E> {
    fn default() -> EventQueue<E> {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty calendar at time zero.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            buckets: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupancy: [0; LEVELS],
            cohort: std::collections::VecDeque::new(),
            cursor: 0,
            state: Vec::new(),
            live: 0,
            next_seq: 0,
            now: Time::ZERO,
        }
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The wheel level at which a time diverging from the cursor at bit
    /// `63 - lz` lives.
    fn level_of(&self, at: u64) -> usize {
        let diff = at ^ self.cursor;
        debug_assert_ne!(diff, 0, "cursor-time events go to the cohort");
        ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
    }

    fn push_to_wheel(&mut self, entry: Entry<E>) {
        let level = self.level_of(entry.at);
        let slot = ((entry.at >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.buckets[level * SLOTS + slot].push(entry);
        self.occupancy[level] |= 1u64 << slot;
    }

    /// Schedules `event` at time `at`; returns a cancellation handle.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the calendar's current time (events may
    /// not be scheduled in the past).
    pub fn schedule(&mut self, at: Time, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.state.push(PENDING);
        self.live += 1;
        let at_ns = at.as_nanos();
        let entry = Entry {
            at: at_ns,
            seq,
            event,
        };
        if at_ns == self.cursor {
            // Joins the instant being drained; `seq` is monotone so the
            // cohort stays sorted.
            self.cohort.push_back(entry);
        } else {
            debug_assert!(at_ns > self.cursor, "schedule checked against now");
            self.push_to_wheel(entry);
        }
        EventId(seq)
    }

    /// Cancels a scheduled event; returns whether it was still pending
    /// (cancelling a fired or already-cancelled event is a no-op).
    pub fn cancel(&mut self, id: EventId) -> bool {
        // Lazy: the bucket entry stays and is skipped at pop time.
        match self.state.get_mut(id.0 as usize) {
            Some(s) if *s == PENDING => {
                *s = DONE;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Occupied slots at `level` strictly after the cursor's slot.
    fn mask_beyond_cursor(&self, level: usize) -> u64 {
        let cursor_slot = ((self.cursor >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as u32;
        self.occupancy[level] & (!0u64).checked_shl(cursor_slot + 1).unwrap_or(0)
    }

    /// Advances the wheel one step: either forms the next instant's
    /// cohort (level 0) or cascades one far-future bucket down. Returns
    /// whether any step was possible.
    fn advance(&mut self) -> bool {
        debug_assert!(self.cohort.is_empty(), "cohort not drained");
        for level in 0..LEVELS {
            let mask = self.mask_beyond_cursor(level);
            if mask == 0 {
                continue;
            }
            let slot = mask.trailing_zeros() as usize;
            let shift = SLOT_BITS * level as u32;
            self.occupancy[level] &= !(1u64 << slot);
            let bucket = std::mem::take(&mut self.buckets[level * SLOTS + slot]);
            if level == 0 {
                // Every entry in a level-0 bucket of the current window
                // shares one instant: it becomes the new cohort.
                let at = (self.cursor & !(SLOTS as u64 - 1)) | slot as u64;
                debug_assert!(bucket.iter().all(|e| e.at == at));
                self.cursor = at;
                self.cohort = bucket.into();
                self.cohort
                    .make_contiguous()
                    .sort_unstable_by_key(|e| e.seq);
            } else {
                // The slot's sub-window arrives: move the cursor to its
                // base (no event precedes it) and redistribute.
                let window = self.cursor >> (shift + SLOT_BITS) << (shift + SLOT_BITS);
                let base = window | ((slot as u64) << shift);
                self.cursor = base;
                for entry in bucket {
                    if entry.at == self.cursor {
                        self.cohort.push_back(entry);
                    } else {
                        self.push_to_wheel(entry);
                    }
                }
                self.cohort
                    .make_contiguous()
                    .sort_unstable_by_key(|e| e.seq);
            }
            return true;
        }
        false
    }

    /// Skips consumed/cancelled cohort entries; refills the cohort from
    /// the wheel until its front is a live entry or the wheel is dry.
    fn settle(&mut self) -> bool {
        loop {
            while let Some(entry) = self.cohort.front() {
                if self.state[entry.seq as usize] == PENDING {
                    return true;
                }
                self.cohort.pop_front();
            }
            if self.live == 0 || !self.advance() {
                // Fully drained (or only dead entries remain anywhere).
                self.cohort.clear();
                return false;
            }
        }
    }

    /// Pops the next pending event, advancing the calendar's clock.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if self.live == 0 {
            return None;
        }
        if !self.settle() {
            return None;
        }
        // gmt-lint: allow(P1): settle() returned true, so the cohort is non-empty.
        let entry = self.cohort.pop_front().expect("settled");
        self.state[entry.seq as usize] = DONE;
        self.live -= 1;
        let at = Time::from_nanos(entry.at);
        self.now = at;
        debug_assert_eq!(self.cursor, entry.at);
        Some((at, entry.event))
    }

    /// Peeks at the next pending event's time without popping.
    pub fn next_time(&mut self) -> Option<Time> {
        if self.live == 0 {
            return None;
        }
        // The cohort is already at the earliest instant.
        if let Some(entry) = self
            .cohort
            .iter()
            .find(|e| self.state[e.seq as usize] == PENDING)
        {
            return Some(Time::from_nanos(entry.at));
        }
        // Read-only scan, earliest level first: within a level, slots
        // ascend in time; every live time at a deeper level precedes
        // every live time at a shallower one (beyond the cursor).
        for level in 0..LEVELS {
            let mut mask = self.mask_beyond_cursor(level);
            while mask != 0 {
                let slot = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let min_live = self.buckets[level * SLOTS + slot]
                    .iter()
                    .filter(|e| self.state[e.seq as usize] == PENDING)
                    .map(|e| e.at)
                    .min();
                if let Some(at) = min_live {
                    return Some(Time::from_nanos(at));
                }
            }
        }
        None
    }
}

pub mod reference {
    //! The binary-heap calendar the timing wheel replaced, retained as
    //! the executable specification for differential testing. Identical
    //! observable semantics: same [`EventId`] values (sequence numbers),
    //! same FIFO tie-breaking, same lazy cancellation.

    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    use super::EventId;
    use crate::Time;

    #[derive(Debug)]
    struct Scheduled<E> {
        at: Time,
        seq: u64,
        id: EventId,
        event: E,
    }

    impl<E> PartialEq for Scheduled<E> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }

    impl<E> Eq for Scheduled<E> {}

    impl<E> PartialOrd for Scheduled<E> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    impl<E> Ord for Scheduled<E> {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.at, self.seq).cmp(&(other.at, other.seq))
        }
    }

    /// The original O(log n) heap calendar (see the module docs).
    #[derive(Debug)]
    pub struct HeapQueue<E> {
        heap: BinaryHeap<Reverse<Scheduled<E>>>,
        pending: std::collections::HashSet<EventId>,
        next_seq: u64,
        now: Time,
    }

    impl<E> Default for HeapQueue<E> {
        fn default() -> HeapQueue<E> {
            HeapQueue::new()
        }
    }

    impl<E> HeapQueue<E> {
        /// Creates an empty calendar at time zero.
        pub fn new() -> HeapQueue<E> {
            HeapQueue {
                heap: BinaryHeap::new(),
                pending: std::collections::HashSet::new(),
                next_seq: 0,
                now: Time::ZERO,
            }
        }

        /// The time of the most recently popped event.
        pub fn now(&self) -> Time {
            self.now
        }

        /// Pending (non-cancelled) events.
        pub fn len(&self) -> usize {
            self.pending.len()
        }

        /// Whether no events are pending.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Schedules `event` at time `at`; returns a cancellation handle.
        ///
        /// # Panics
        ///
        /// Panics if `at` is before the calendar's current time.
        pub fn schedule(&mut self, at: Time, event: E) -> EventId {
            assert!(
                at >= self.now,
                "cannot schedule into the past ({at} < {})",
                self.now
            );
            let id = EventId(self.next_seq);
            self.heap.push(Reverse(Scheduled {
                at,
                seq: self.next_seq,
                id,
                event,
            }));
            self.pending.insert(id);
            self.next_seq += 1;
            id
        }

        /// Cancels a scheduled event; returns whether it was pending.
        pub fn cancel(&mut self, id: EventId) -> bool {
            self.pending.remove(&id)
        }

        /// Pops the next pending event, advancing the clock.
        pub fn pop(&mut self) -> Option<(Time, E)> {
            while let Some(Reverse(scheduled)) = self.heap.pop() {
                if !self.pending.remove(&scheduled.id) {
                    continue; // cancelled
                }
                self.now = scheduled.at;
                return Some((scheduled.at, scheduled.event));
            }
            None
        }

        /// Peeks at the next pending event's time without popping.
        pub fn next_time(&mut self) -> Option<Time> {
            while let Some(Reverse(scheduled)) = self.heap.peek() {
                if !self.pending.contains(&scheduled.id) {
                    self.heap.pop();
                    continue;
                }
                return Some(scheduled.at);
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dur;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_nanos(30), 'c');
        q.schedule(Time::from_nanos(10), 'a');
        q.schedule(Time::from_nanos(20), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_nanos(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_is_lazy_but_exact() {
        let mut q = EventQueue::new();
        let keep = q.schedule(Time::from_nanos(1), "keep");
        let drop1 = q.schedule(Time::from_nanos(2), "drop");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(drop1));
        assert!(!q.cancel(drop1), "double-cancel is a no-op");
        assert_eq!(q.len(), 1);
        let _ = keep;
        assert_eq!(q.pop().map(|(_, e)| e), Some("keep"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancelling_a_fired_event_is_harmless() {
        let mut q = EventQueue::new();
        let id = q.schedule(Time::from_nanos(1), 'x');
        q.schedule(Time::from_nanos(2), 'y');
        assert_eq!(q.pop().map(|(_, e)| e), Some('x'));
        assert!(!q.cancel(id), "already fired: cancel reports not-pending");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some('y'));
        assert!(q.is_empty());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_nanos(100), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_nanos(100));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn past_scheduling_rejected() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_nanos(100), ());
        q.pop();
        q.schedule(Time::from_nanos(50), ());
    }

    #[test]
    fn next_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let first = q.schedule(Time::from_nanos(1), ());
        q.schedule(Time::from_nanos(9), ());
        q.cancel(first);
        assert_eq!(q.next_time(), Some(Time::from_nanos(9)));
    }

    #[test]
    fn next_time_does_not_commit_the_cursor() {
        // Peeking far ahead must not forbid scheduling nearer events.
        let mut q = EventQueue::new();
        q.schedule(Time::from_nanos(10), 'a');
        q.pop();
        q.schedule(Time::from_nanos(1_000_000), 'z');
        assert_eq!(q.next_time(), Some(Time::from_nanos(1_000_000)));
        q.schedule(Time::from_nanos(50), 'b');
        assert_eq!(q.pop().map(|(_, e)| e), Some('b'));
        assert_eq!(q.pop().map(|(_, e)| e), Some('z'));
    }

    #[test]
    fn far_future_events_cascade_correctly() {
        // Times spanning many wheel levels, scheduled out of order.
        let mut q = EventQueue::new();
        let times = [
            u64::from(u32::MAX) + 17,
            1,
            64,
            65,
            4096,
            1 << 40,
            (1 << 40) + 1,
            63,
            (1 << 13) - 1,
        ];
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Time::from_nanos(t), i);
        }
        let mut sorted: Vec<u64> = times.to_vec();
        sorted.sort_unstable();
        let popped: Vec<u64> =
            std::iter::from_fn(|| q.pop().map(|(at, _)| at.as_nanos())).collect();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn rescheduling_at_the_popped_instant_pops_next() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_nanos(7), "first");
        let (at, _) = q.pop().expect("first");
        q.schedule(at, "same-instant");
        q.schedule(Time::from_nanos(8), "later");
        assert_eq!(q.pop().map(|(_, e)| e), Some("same-instant"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("later"));
    }

    #[test]
    fn works_as_a_simple_process_simulation() {
        // Two ping-pong processes: validates causal chaining through the
        // calendar.
        #[derive(Debug)]
        enum Ev {
            Ping(u32),
            Pong(u32),
        }
        let mut q = EventQueue::new();
        q.schedule(Time::ZERO, Ev::Ping(0));
        let mut pings = 0;
        let mut pongs = 0;
        while let Some((at, ev)) = q.pop() {
            match ev {
                Ev::Ping(round) if round < 10 => {
                    pings += 1;
                    q.schedule(at + Dur::from_nanos(3), Ev::Pong(round));
                }
                Ev::Pong(round) if round < 9 => {
                    pongs += 1;
                    q.schedule(at + Dur::from_nanos(7), Ev::Ping(round + 1));
                }
                _ => {
                    pongs += 1;
                }
            }
        }
        assert_eq!((pings, pongs), (10, 10));
        assert_eq!(q.now().as_nanos(), 9 * 10 + 3);
    }

    #[test]
    fn heap_reference_matches_on_a_fixed_interleaving() {
        use rand::Rng;
        let mut wheel = EventQueue::new();
        let mut heap = reference::HeapQueue::new();
        let mut rng = crate::rng::seeded(0xD1FF);
        let mut live: Vec<EventId> = Vec::new();
        for i in 0..5_000u64 {
            let at = Time::from_nanos(wheel.now().as_nanos() + rng.gen_range(0..100_000u64));
            let a = wheel.schedule(at, i);
            let b = heap.schedule(at, i);
            assert_eq!(a, b, "ids must coincide");
            live.push(a);
            if i % 3 == 0 {
                assert_eq!(wheel.pop(), heap.pop());
            }
            if i % 5 == 0 && !live.is_empty() {
                let id = live.swap_remove(rng.gen_range(0..live.len()));
                assert_eq!(wheel.cancel(id), heap.cancel(id));
            }
            assert_eq!(wheel.len(), heap.len());
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
