//! A general event calendar for discrete-event simulation.
//!
//! The resource models in this crate ([`crate::FifoServer`],
//! [`crate::Link`], …) use closed-form queueing updates and never need a
//! global event loop. Some simulations do — anything with cancellation,
//! timeouts, or cross-entity causality. [`EventQueue`] provides the
//! classic calendar: schedule, cancel, pop-in-time-order, with stable
//! FIFO ordering among simultaneous events.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Time;

/// Handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

#[derive(Debug)]
struct Scheduled<E> {
    at: Time,
    seq: u64,
    id: EventId,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A time-ordered event calendar with O(log n) schedule/pop and lazy
/// cancellation.
///
/// Events at equal times pop in scheduling order (deterministic ties).
///
/// # Examples
///
/// ```
/// use gmt_sim::events::EventQueue;
/// use gmt_sim::Time;
///
/// let mut q = EventQueue::new();
/// q.schedule(Time::from_nanos(20), "late");
/// let early = q.schedule(Time::from_nanos(10), "early");
/// q.cancel(early);
/// let (at, event) = q.pop().expect("one event left");
/// assert_eq!((at.as_nanos(), event), (20, "late"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    pending: std::collections::HashSet<EventId>,
    next_seq: u64,
    now: Time,
}

impl<E> Default for EventQueue<E> {
    fn default() -> EventQueue<E> {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty calendar at time zero.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: std::collections::HashSet::new(),
            next_seq: 0,
            now: Time::ZERO,
        }
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `event` at time `at`; returns a cancellation handle.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the calendar's current time (events may
    /// not be scheduled in the past).
    pub fn schedule(&mut self, at: Time, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        let id = EventId(self.next_seq);
        self.heap.push(Reverse(Scheduled {
            at,
            seq: self.next_seq,
            id,
            event,
        }));
        self.pending.insert(id);
        self.next_seq += 1;
        id
    }

    /// Cancels a scheduled event; returns whether it was still pending
    /// (cancelling a fired or already-cancelled event is a no-op).
    pub fn cancel(&mut self, id: EventId) -> bool {
        // Lazy: the heap entry stays and is skipped at pop time.
        self.pending.remove(&id)
    }

    /// Pops the next pending event, advancing the calendar's clock.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        while let Some(Reverse(scheduled)) = self.heap.pop() {
            if !self.pending.remove(&scheduled.id) {
                continue; // cancelled
            }
            self.now = scheduled.at;
            return Some((scheduled.at, scheduled.event));
        }
        None
    }

    /// Peeks at the next pending event's time without popping.
    pub fn next_time(&mut self) -> Option<Time> {
        while let Some(Reverse(scheduled)) = self.heap.peek() {
            if !self.pending.contains(&scheduled.id) {
                self.heap.pop();
                continue;
            }
            return Some(scheduled.at);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dur;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_nanos(30), 'c');
        q.schedule(Time::from_nanos(10), 'a');
        q.schedule(Time::from_nanos(20), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_nanos(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_is_lazy_but_exact() {
        let mut q = EventQueue::new();
        let keep = q.schedule(Time::from_nanos(1), "keep");
        let drop1 = q.schedule(Time::from_nanos(2), "drop");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(drop1));
        assert!(!q.cancel(drop1), "double-cancel is a no-op");
        assert_eq!(q.len(), 1);
        let _ = keep;
        assert_eq!(q.pop().map(|(_, e)| e), Some("keep"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancelling_a_fired_event_is_harmless() {
        let mut q = EventQueue::new();
        let id = q.schedule(Time::from_nanos(1), 'x');
        q.schedule(Time::from_nanos(2), 'y');
        assert_eq!(q.pop().map(|(_, e)| e), Some('x'));
        assert!(!q.cancel(id), "already fired: cancel reports not-pending");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some('y'));
        assert!(q.is_empty());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_nanos(100), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_nanos(100));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn past_scheduling_rejected() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_nanos(100), ());
        q.pop();
        q.schedule(Time::from_nanos(50), ());
    }

    #[test]
    fn next_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let first = q.schedule(Time::from_nanos(1), ());
        q.schedule(Time::from_nanos(9), ());
        q.cancel(first);
        assert_eq!(q.next_time(), Some(Time::from_nanos(9)));
    }

    #[test]
    fn works_as_a_simple_process_simulation() {
        // Two ping-pong processes: validates causal chaining through the
        // calendar.
        #[derive(Debug)]
        enum Ev {
            Ping(u32),
            Pong(u32),
        }
        let mut q = EventQueue::new();
        q.schedule(Time::ZERO, Ev::Ping(0));
        let mut pings = 0;
        let mut pongs = 0;
        while let Some((at, ev)) = q.pop() {
            match ev {
                Ev::Ping(round) if round < 10 => {
                    pings += 1;
                    q.schedule(at + Dur::from_nanos(3), Ev::Pong(round));
                }
                Ev::Pong(round) if round < 9 => {
                    pongs += 1;
                    q.schedule(at + Dur::from_nanos(7), Ev::Ping(round + 1));
                }
                _ => {
                    pongs += 1;
                }
            }
        }
        assert_eq!((pings, pongs), (10, 10));
        assert_eq!(q.now().as_nanos(), 9 * 10 + 3);
    }
}
