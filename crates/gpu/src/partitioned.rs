//! Partitioned trace replay: fixed warp-to-access binding.
//!
//! The default [`crate::Executor`] hands each trace entry to the
//! earliest-ready warp — a global work queue, the most optimistic
//! scheduling a GPU could achieve. Real kernels bind work to warps at
//! launch: warp *w* executes instructions `w, w+N, w+2N, …` regardless
//! of how long its previous access stalled. [`PartitionedExecutor`]
//! models that static round-robin binding, bounding the scheduling
//! behaviours a real GPU can land between. Comparing the two (see
//! `tests/calibration.rs`) quantifies how sensitive a result is to the
//! scheduling assumption — for the paper's bandwidth-bound regimes the
//! gap is small, which is what makes the trace-replay methodology sound.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use gmt_mem::WarpAccess;
use gmt_sim::Time;

use crate::{ExecutorConfig, MemoryBackend, RunOutcome};

/// Replays a trace with accesses statically bound to warps round-robin.
///
/// # Examples
///
/// ```
/// use gmt_gpu::{ExecutorConfig, MemoryBackend, PartitionedExecutor};
/// use gmt_mem::{PageId, WarpAccess};
/// use gmt_sim::{Dur, Time};
///
/// struct Flat;
/// impl MemoryBackend for Flat {
///     fn access(&mut self, now: Time, _a: &WarpAccess) -> Time {
///         now + Dur::from_micros(1)
///     }
/// }
///
/// let trace = (0..100).map(|i| WarpAccess::read(PageId(i)));
/// let out = PartitionedExecutor::new(ExecutorConfig::default()).run(Flat, trace);
/// assert_eq!(out.accesses, 100);
/// ```
#[derive(Debug, Clone)]
pub struct PartitionedExecutor {
    config: ExecutorConfig,
}

impl PartitionedExecutor {
    /// Creates an executor.
    ///
    /// # Panics
    ///
    /// Panics if `config.warp_slots` is zero.
    pub fn new(config: ExecutorConfig) -> PartitionedExecutor {
        assert!(config.warp_slots > 0, "need at least one warp slot");
        PartitionedExecutor { config }
    }

    /// The executor's configuration.
    pub fn config(&self) -> &ExecutorConfig {
        &self.config
    }

    /// Replays `trace`, binding entry `i` to warp `i % warp_slots`.
    ///
    /// Accesses still *issue* in global program order per warp, but a
    /// stalled warp no longer donates its next entry to an idle one. The
    /// backend sees accesses ordered by issue time (a min-heap over warp
    /// ready times), which keeps shared-resource queueing causal.
    pub fn run<B, I>(&self, mut backend: B, trace: I) -> RunOutcome<B>
    where
        B: MemoryBackend,
        I: IntoIterator<Item = WarpAccess>,
    {
        let slots = self.config.warp_slots;
        // Partition into per-warp streams.
        let mut streams: Vec<std::collections::VecDeque<WarpAccess>> =
            vec![std::collections::VecDeque::new(); slots];
        let mut accesses = 0u64;
        for (i, access) in trace.into_iter().enumerate() {
            streams[i % slots].push_back(access);
            accesses += 1;
        }
        // Issue in causal order: always advance the warp whose next
        // instruction issues earliest.
        let mut heap: BinaryHeap<Reverse<(Time, usize)>> = (0..slots)
            .filter(|&w| !streams[w].is_empty())
            .map(|w| Reverse((Time::ZERO, w)))
            .collect();
        let mut horizon = Time::ZERO;
        while let Some(Reverse((ready, w))) = heap.pop() {
            let access = streams[w].pop_front().expect("scheduled warp has work");
            let data_ready = backend.access(ready, &access);
            let next_issue = data_ready + self.config.compute_per_access;
            horizon = horizon.max(next_issue);
            if !streams[w].is_empty() {
                heap.push(Reverse((next_issue, w)));
            }
        }
        let done = backend.finish(horizon);
        RunOutcome {
            elapsed: done.since(Time::ZERO),
            accesses,
            backend,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Executor;
    use gmt_mem::PageId;
    use gmt_sim::Dur;

    /// Cost depends on the page id, so stalls are uneven across warps.
    struct Uneven;

    impl MemoryBackend for Uneven {
        fn access(&mut self, now: Time, a: &WarpAccess) -> Time {
            now + Dur::from_nanos(if a.pages.first().0.is_multiple_of(7) {
                10_000
            } else {
                100
            })
        }
    }

    fn trace(n: u64) -> Vec<WarpAccess> {
        (0..n).map(|i| WarpAccess::read(PageId(i))).collect()
    }

    #[test]
    fn single_warp_matches_flat_executor() {
        // With one warp both schedulers are fully serial and identical.
        let cfg = ExecutorConfig {
            warp_slots: 1,
            compute_per_access: Dur::from_nanos(5),
        };
        let a = Executor::new(cfg).run(Uneven, trace(200));
        let b = PartitionedExecutor::new(cfg).run(Uneven, trace(200));
        assert_eq!(a.elapsed, b.elapsed);
    }

    #[test]
    fn schedulers_stay_within_a_small_factor() {
        // Neither scheduler dominates in general (greedy dispatch is not
        // an optimal packing), but on a long mixed trace they must agree
        // to within a small factor — the property that makes trace replay
        // robust to the scheduling assumption.
        for slots in [2usize, 8, 32] {
            let cfg = ExecutorConfig {
                warp_slots: slots,
                compute_per_access: Dur::ZERO,
            };
            let flat = Executor::new(cfg).run(Uneven, trace(2_000));
            let part = PartitionedExecutor::new(cfg).run(Uneven, trace(2_000));
            let ratio = part.elapsed.as_nanos() as f64 / flat.elapsed.as_nanos() as f64;
            assert!(
                (0.8..1.5).contains(&ratio),
                "{slots} slots: partitioned/flat ratio {ratio}"
            );
        }
    }

    #[test]
    fn uniform_costs_make_schedulers_agree() {
        struct Flat;
        impl MemoryBackend for Flat {
            fn access(&mut self, now: Time, _a: &WarpAccess) -> Time {
                now + Dur::from_micros(1)
            }
        }
        let cfg = ExecutorConfig {
            warp_slots: 16,
            compute_per_access: Dur::ZERO,
        };
        let a = Executor::new(cfg).run(Flat, trace(160));
        let b = PartitionedExecutor::new(cfg).run(Flat, trace(160));
        assert_eq!(a.elapsed, b.elapsed);
    }

    #[test]
    fn empty_trace() {
        let out =
            PartitionedExecutor::new(ExecutorConfig::default()).run(Uneven, std::iter::empty());
        assert_eq!(out.accesses, 0);
        assert_eq!(out.elapsed, Dur::ZERO);
    }
}
