//! GPU execution model: warp-level trace replay with latency hiding.
//!
//! GMT's decisions are driven entirely by the stream of *coalesced warp
//! accesses* a kernel issues and by how long each miss stalls the issuing
//! warp. This crate models exactly that:
//!
//! * [`coalesce`] — collapses 32 per-lane addresses into the distinct
//!   pages of one [`gmt_mem::WarpAccess`], the way the hardware coalescer
//!   does,
//! * [`MemoryBackend`] — the interface every tiering runtime (GMT, BaM,
//!   HMM) implements: given a warp access at a time, return when the warp
//!   may proceed,
//! * [`Executor`] — replays a trace across a configurable number of
//!   resident warp contexts. Thousands of concurrent warps are what makes
//!   GPU memory tiering *throughput*-sensitive rather than
//!   latency-sensitive (paper §2): one warp's 130 µs SSD miss is invisible
//!   if 2047 other warps can issue in the meantime, but a serialized
//!   intermediary (a DMA engine, a handful of host cores) stalls them all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coalesce;
mod executor;
mod partitioned;
mod sm;

pub use executor::{Executor, ExecutorConfig, MemoryBackend, RunOutcome};
pub use partitioned::PartitionedExecutor;
pub use sm::{SmConfig, SmExecutor};
