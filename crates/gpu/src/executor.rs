//! Trace replay across concurrent warp contexts.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use gmt_mem::WarpAccess;
use gmt_sim::trace::{TraceEvent, TraceSink};
use gmt_sim::{Dur, Time};
use serde::{Deserialize, Serialize};

/// A tiering runtime as seen by the GPU: something that services one
/// coalesced warp access and reports when the warp may resume.
///
/// Implemented by the GMT runtime, BaM and HMM. The executor is generic
/// over this trait so every policy runs on the identical replay engine.
pub trait MemoryBackend {
    /// Services `access` issued at `now`; returns the time at which the
    /// issuing warp's data is available.
    fn access(&mut self, now: Time, access: &WarpAccess) -> Time;

    /// Called once after the trace is exhausted; returns the time at which
    /// the backend considers the run complete (e.g. after draining
    /// in-flight transfers). The default is `now`.
    fn finish(&mut self, now: Time) -> Time {
        now
    }
}

impl<B: MemoryBackend + ?Sized> MemoryBackend for &mut B {
    fn access(&mut self, now: Time, access: &WarpAccess) -> Time {
        (**self).access(now, access)
    }

    fn finish(&mut self, now: Time) -> Time {
        (**self).finish(now)
    }
}

/// Executor parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutorConfig {
    /// Resident warp contexts issuing concurrently. An A100 sustains
    /// thousands (108 SMs × up to 64 warps); the default keeps the same
    /// latency-hiding regime at simulation scale.
    pub warp_slots: usize,
    /// Compute time a warp spends between two memory instructions.
    pub compute_per_access: Dur,
}

impl Default for ExecutorConfig {
    fn default() -> ExecutorConfig {
        ExecutorConfig {
            warp_slots: 1024,
            compute_per_access: Dur::from_nanos(150),
        }
    }
}

/// The result of replaying one trace through one backend.
#[derive(Debug)]
pub struct RunOutcome<B> {
    /// Total simulated execution time.
    pub elapsed: Dur,
    /// Number of warp accesses replayed.
    pub accesses: u64,
    /// The backend, for extracting its metrics.
    pub backend: B,
}

/// Replays traces across [`ExecutorConfig::warp_slots`] concurrent warps.
///
/// Each trace entry is handed to the earliest-ready warp context (a global
/// work-queue approximation of the GPU's scheduler). A warp that misses
/// stalls until the backend reports its data ready; all other warps keep
/// issuing — this is the latency-hiding that makes aggregate *throughput*,
/// not single-miss latency, the figure of merit (paper §2).
///
/// # Examples
///
/// ```
/// use gmt_gpu::{Executor, ExecutorConfig, MemoryBackend};
/// use gmt_mem::{PageId, WarpAccess};
/// use gmt_sim::{Dur, Time};
///
/// /// A backend where every access costs 1 us.
/// struct Flat;
/// impl MemoryBackend for Flat {
///     fn access(&mut self, now: Time, _a: &WarpAccess) -> Time {
///         now + Dur::from_micros(1)
///     }
/// }
///
/// let trace = (0..100).map(|i| WarpAccess::read(PageId(i)));
/// let outcome = Executor::new(ExecutorConfig::default()).run(Flat, trace);
/// assert_eq!(outcome.accesses, 100);
/// ```
#[derive(Debug, Clone)]
pub struct Executor {
    config: ExecutorConfig,
    trace: TraceSink,
}

impl Executor {
    /// Creates an executor.
    ///
    /// # Panics
    ///
    /// Panics if `config.warp_slots` is zero.
    pub fn new(config: ExecutorConfig) -> Executor {
        assert!(config.warp_slots > 0, "need at least one warp slot");
        Executor {
            config,
            trace: TraceSink::disabled(),
        }
    }

    /// Records each warp issue into `trace` as a
    /// [`TraceEvent::WarpAccess`], stamped with the warp's issue time.
    pub fn attach_trace(&mut self, trace: &TraceSink) {
        self.trace = trace.clone();
    }

    /// The executor's configuration.
    pub fn config(&self) -> &ExecutorConfig {
        &self.config
    }

    /// Replays `trace` through `backend`; returns elapsed time, access
    /// count and the backend.
    pub fn run<B, I>(&self, mut backend: B, trace: I) -> RunOutcome<B>
    where
        B: MemoryBackend,
        I: IntoIterator<Item = WarpAccess>,
    {
        let mut warps: BinaryHeap<Reverse<Time>> = (0..self.config.warp_slots)
            .map(|_| Reverse(Time::ZERO))
            .collect();
        let mut accesses = 0u64;
        let mut horizon = Time::ZERO;
        for access in trace {
            let Reverse(ready) = warps.pop().expect("warp heap is never empty");
            if self.trace.is_enabled() {
                if let Some(page) = access.pages.iter().next() {
                    self.trace.emit(
                        ready,
                        TraceEvent::WarpAccess {
                            page: page.0,
                            write: access.write,
                        },
                    );
                }
            }
            let data_ready = backend.access(ready, &access);
            let next_issue = data_ready + self.config.compute_per_access;
            horizon = horizon.max(next_issue);
            warps.push(Reverse(next_issue));
            accesses += 1;
        }
        let done = backend.finish(horizon);
        RunOutcome {
            elapsed: done.since(Time::ZERO),
            accesses,
            backend,
        }
    }

    /// Replays an *open-arrival* trace: each access carries the wall
    /// time at which its work arrives, and issues at the later of that
    /// arrival and the earliest-ready warp slot.
    ///
    /// This is the serving-system counterpart of [`Executor::run`]
    /// (which models a closed loop where warps re-issue as fast as the
    /// backend allows): under open arrivals an idle stretch really
    /// leaves the hierarchy idle, and a burst really queues. Arrival
    /// times must be non-decreasing; interleaved multi-tenant schedules
    /// should be merged before being handed here.
    ///
    /// # Examples
    ///
    /// ```
    /// use gmt_gpu::{Executor, ExecutorConfig, MemoryBackend};
    /// use gmt_mem::{PageId, WarpAccess};
    /// use gmt_sim::{Dur, Time};
    ///
    /// struct Instant;
    /// impl MemoryBackend for Instant {
    ///     fn access(&mut self, now: Time, _a: &WarpAccess) -> Time {
    ///         now
    ///     }
    /// }
    ///
    /// // One access arriving 5 us in: the run lasts until its arrival.
    /// let exec = Executor::new(ExecutorConfig::default());
    /// let at = Time::ZERO + Dur::from_micros(5);
    /// let out = exec.run_arrivals(Instant, [(at, WarpAccess::read(PageId(0)))]);
    /// assert!(out.elapsed >= Dur::from_micros(5));
    /// ```
    pub fn run_arrivals<B, I>(&self, mut backend: B, trace: I) -> RunOutcome<B>
    where
        B: MemoryBackend,
        I: IntoIterator<Item = (Time, WarpAccess)>,
    {
        let mut warps: BinaryHeap<Reverse<Time>> = (0..self.config.warp_slots)
            .map(|_| Reverse(Time::ZERO))
            .collect();
        let mut accesses = 0u64;
        let mut horizon = Time::ZERO;
        for (arrival, access) in trace {
            let Reverse(ready) = warps.pop().expect("warp heap is never empty");
            let issue = ready.max(arrival);
            if self.trace.is_enabled() {
                if let Some(page) = access.pages.iter().next() {
                    self.trace.emit(
                        issue,
                        TraceEvent::WarpAccess {
                            page: page.0,
                            write: access.write,
                        },
                    );
                }
            }
            let data_ready = backend.access(issue, &access);
            let next_issue = data_ready + self.config.compute_per_access;
            horizon = horizon.max(next_issue);
            warps.push(Reverse(next_issue));
            accesses += 1;
        }
        let done = backend.finish(horizon);
        RunOutcome {
            elapsed: done.since(Time::ZERO),
            accesses,
            backend,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmt_mem::PageId;

    /// Backend with a fixed per-access stall.
    struct Fixed(Dur);

    impl MemoryBackend for Fixed {
        fn access(&mut self, now: Time, _a: &WarpAccess) -> Time {
            now + self.0
        }
    }

    fn trace(n: u64) -> impl Iterator<Item = WarpAccess> {
        (0..n).map(|i| WarpAccess::read(PageId(i)))
    }

    #[test]
    fn single_warp_serializes() {
        let exec = Executor::new(ExecutorConfig {
            warp_slots: 1,
            compute_per_access: Dur::from_nanos(0),
        });
        let out = exec.run(Fixed(Dur::from_micros(1)), trace(10));
        assert_eq!(out.elapsed, Dur::from_micros(10));
        assert_eq!(out.accesses, 10);
    }

    #[test]
    fn many_warps_hide_latency() {
        let cfg = ExecutorConfig {
            warp_slots: 10,
            compute_per_access: Dur::from_nanos(0),
        };
        let out = Executor::new(cfg).run(Fixed(Dur::from_micros(1)), trace(10));
        // All ten run concurrently.
        assert_eq!(out.elapsed, Dur::from_micros(1));
    }

    #[test]
    fn compute_time_is_charged_per_access() {
        let cfg = ExecutorConfig {
            warp_slots: 1,
            compute_per_access: Dur::from_nanos(100),
        };
        let out = Executor::new(cfg).run(Fixed(Dur::ZERO), trace(5));
        assert_eq!(out.elapsed, Dur::from_nanos(500));
    }

    #[test]
    fn finish_extends_elapsed() {
        struct Draining;
        impl MemoryBackend for Draining {
            fn access(&mut self, now: Time, _a: &WarpAccess) -> Time {
                now
            }
            fn finish(&mut self, now: Time) -> Time {
                now + Dur::from_millis(1)
            }
        }
        let out = Executor::new(ExecutorConfig::default()).run(Draining, trace(1));
        assert!(out.elapsed >= Dur::from_millis(1));
    }

    #[test]
    fn empty_trace_is_instant() {
        let out =
            Executor::new(ExecutorConfig::default()).run(Fixed(Dur::from_micros(1)), trace(0));
        assert_eq!(out.elapsed, Dur::ZERO);
        assert_eq!(out.accesses, 0);
    }

    #[test]
    fn arrivals_gate_issue_times() {
        // One warp, zero-cost backend: accesses 10 us apart finish at
        // the last arrival, not back-to-back.
        let cfg = ExecutorConfig {
            warp_slots: 1,
            compute_per_access: Dur::ZERO,
        };
        let schedule = (0..5).map(|i| {
            (
                Time::ZERO + Dur::from_micros(10 * i),
                WarpAccess::read(PageId(i)),
            )
        });
        let out = Executor::new(cfg).run_arrivals(Fixed(Dur::ZERO), schedule);
        assert_eq!(out.elapsed, Dur::from_micros(40));
        assert_eq!(out.accesses, 5);
    }

    #[test]
    fn arrivals_in_the_past_queue_like_closed_loop() {
        // Everything arrives at t=0: run_arrivals degenerates to run.
        let cfg = ExecutorConfig {
            warp_slots: 1,
            compute_per_access: Dur::ZERO,
        };
        let closed = Executor::new(cfg).run(Fixed(Dur::from_micros(1)), trace(10));
        let open = Executor::new(cfg).run_arrivals(
            Fixed(Dur::from_micros(1)),
            trace(10).map(|a| (Time::ZERO, a)),
        );
        assert_eq!(open.elapsed, closed.elapsed);
    }

    #[test]
    fn backend_by_mut_ref_also_works() {
        let mut fixed = Fixed(Dur::from_micros(1));
        let exec = Executor::new(ExecutorConfig::default());
        let out = exec.run(&mut fixed, trace(3));
        assert_eq!(out.accesses, 3);
    }
}
