//! SM-granular execution: per-SM warp pools and issue ports.
//!
//! The flat [`crate::Executor`] treats the GPU as one pool of warp slots.
//! Real hardware groups warps onto streaming multiprocessors whose
//! schedulers issue a bounded number of instructions per cycle: two warps
//! on the *same* SM contend for the issue port even when neither is
//! stalled on memory. [`SmExecutor`] adds that dimension, bounding how
//! much of a result can be attributed to intra-SM contention (for the
//! paper's bandwidth-bound regimes: very little, see the tests).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use gmt_mem::WarpAccess;
use gmt_sim::{Dur, FifoServer, Time};
use serde::{Deserialize, Serialize};

use crate::{MemoryBackend, RunOutcome};

/// SM-level executor parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmConfig {
    /// Streaming multiprocessors (A100: 108).
    pub sms: usize,
    /// Resident warps per SM (A100: up to 64).
    pub warps_per_sm: usize,
    /// Time the SM's scheduler needs to issue one memory instruction
    /// (the issue-port serialization quantum).
    pub issue_interval: Dur,
    /// Compute time a warp spends between two memory instructions.
    pub compute_per_access: Dur,
}

impl Default for SmConfig {
    fn default() -> SmConfig {
        SmConfig {
            sms: 32,
            warps_per_sm: 32,
            issue_interval: Dur::from_nanos(4),
            compute_per_access: Dur::from_nanos(150),
        }
    }
}

/// Replays traces across SMs, each with its own warp pool and issue port.
///
/// Trace entries are distributed round-robin across SMs (the thread-block
/// scheduler's behaviour for uniform grids); within an SM, the
/// earliest-ready warp issues next, gated by the SM's issue port.
///
/// # Examples
///
/// ```
/// use gmt_gpu::{MemoryBackend, SmConfig, SmExecutor};
/// use gmt_mem::{PageId, WarpAccess};
/// use gmt_sim::{Dur, Time};
///
/// struct Flat;
/// impl MemoryBackend for Flat {
///     fn access(&mut self, now: Time, _a: &WarpAccess) -> Time {
///         now + Dur::from_micros(1)
///     }
/// }
///
/// let trace = (0..100).map(|i| WarpAccess::read(PageId(i)));
/// let out = SmExecutor::new(SmConfig::default()).run(Flat, trace);
/// assert_eq!(out.accesses, 100);
/// ```
#[derive(Debug, Clone)]
pub struct SmExecutor {
    config: SmConfig,
}

impl SmExecutor {
    /// Creates the executor.
    ///
    /// # Panics
    ///
    /// Panics if `sms` or `warps_per_sm` is zero.
    pub fn new(config: SmConfig) -> SmExecutor {
        assert!(config.sms > 0, "need at least one SM");
        assert!(config.warps_per_sm > 0, "need at least one warp per SM");
        SmExecutor { config }
    }

    /// The executor's configuration.
    pub fn config(&self) -> &SmConfig {
        &self.config
    }

    /// Replays `trace` through `backend`.
    pub fn run<B, I>(&self, mut backend: B, trace: I) -> RunOutcome<B>
    where
        B: MemoryBackend,
        I: IntoIterator<Item = WarpAccess>,
    {
        struct Sm {
            warps: BinaryHeap<Reverse<Time>>,
            issue_port: FifoServer,
        }
        let mut sms: Vec<Sm> = (0..self.config.sms)
            .map(|_| Sm {
                warps: (0..self.config.warps_per_sm)
                    .map(|_| Reverse(Time::ZERO))
                    .collect(),
                issue_port: FifoServer::new(),
            })
            .collect();
        let mut accesses = 0u64;
        let mut horizon = Time::ZERO;
        for (i, access) in trace.into_iter().enumerate() {
            let sm = &mut sms[i % self.config.sms];
            let Reverse(warp_ready) = sm.warps.pop().expect("warp heap never empty");
            // The issue port serializes instruction issue within the SM.
            let issued = sm.issue_port.submit(warp_ready, self.config.issue_interval);
            let data_ready = backend.access(issued, &access);
            let next_issue = data_ready + self.config.compute_per_access;
            horizon = horizon.max(next_issue);
            sm.warps.push(Reverse(next_issue));
            accesses += 1;
        }
        let done = backend.finish(horizon);
        RunOutcome {
            elapsed: done.since(Time::ZERO),
            accesses,
            backend,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmt_mem::PageId;

    /// Zero-cost backend: isolates issue-port behaviour.
    struct Free;

    impl MemoryBackend for Free {
        fn access(&mut self, now: Time, _a: &WarpAccess) -> Time {
            now
        }
    }

    fn trace(n: u64) -> impl Iterator<Item = WarpAccess> {
        (0..n).map(|i| WarpAccess::read(PageId(i)))
    }

    #[test]
    fn issue_ports_cap_throughput() {
        // With free memory, elapsed = accesses/sm x issue_interval.
        let config = SmConfig {
            sms: 4,
            warps_per_sm: 64,
            issue_interval: Dur::from_nanos(10),
            compute_per_access: Dur::ZERO,
        };
        let out = SmExecutor::new(config).run(Free, trace(400));
        assert_eq!(out.elapsed, Dur::from_nanos(100 * 10));
    }

    #[test]
    fn more_sms_raise_the_issue_ceiling() {
        let base = SmConfig {
            sms: 2,
            warps_per_sm: 8,
            issue_interval: Dur::from_nanos(10),
            compute_per_access: Dur::ZERO,
        };
        let wide = SmConfig { sms: 8, ..base };
        let slow = SmExecutor::new(base).run(Free, trace(800));
        let fast = SmExecutor::new(wide).run(Free, trace(800));
        assert_eq!(slow.elapsed.as_nanos(), 4 * fast.elapsed.as_nanos());
    }

    #[test]
    fn memory_bound_runs_barely_notice_issue_ports() {
        // A 1 us memory stall dwarfs a 4 ns issue quantum — which is why
        // the flat executor is an adequate model in the paper's regimes.
        struct Slow;
        impl MemoryBackend for Slow {
            fn access(&mut self, now: Time, _a: &WarpAccess) -> Time {
                now + Dur::from_micros(1)
            }
        }
        let with_port = SmExecutor::new(SmConfig::default()).run(Slow, trace(2_000));
        let no_port = SmExecutor::new(SmConfig {
            issue_interval: Dur::ZERO,
            ..SmConfig::default()
        })
        .run(Slow, trace(2_000));
        let ratio = with_port.elapsed.as_nanos() as f64 / no_port.elapsed.as_nanos() as f64;
        assert!(
            ratio < 1.15,
            "issue ports inflated a memory-bound run by {ratio}"
        );
    }

    #[test]
    fn single_sm_single_warp_is_fully_serial() {
        let config = SmConfig {
            sms: 1,
            warps_per_sm: 1,
            issue_interval: Dur::from_nanos(3),
            compute_per_access: Dur::from_nanos(7),
        };
        let out = SmExecutor::new(config).run(Free, trace(10));
        assert_eq!(out.elapsed, Dur::from_nanos(10 * (3 + 7)));
    }
}
