//! Warp-level address coalescing.
//!
//! A warp's 32 lanes issue one memory instruction together; the hardware
//! coalescer merges lanes that fall on the same page into a single
//! transaction. Tiering runtimes therefore see *distinct pages per warp
//! instruction*, not per-lane addresses.

use gmt_mem::{PageId, WarpAccess};

/// The number of lanes in a warp on NVIDIA hardware.
pub const WARP_LANES: usize = 32;

/// Coalesces per-lane *byte addresses* into one warp access.
///
/// Duplicate pages are merged; the order of first occurrence is kept (the
/// transaction order the coalescer emits).
///
/// # Examples
///
/// ```
/// use gmt_gpu::coalesce::coalesce_addresses;
///
/// // Four lanes touching two 64 KB pages.
/// let addrs = [0u64, 8, 65_536, 65_544];
/// let access = coalesce_addresses(&addrs, 64 * 1024, false);
/// assert_eq!(access.pages.len(), 2);
/// ```
///
/// # Panics
///
/// Panics if `page_bytes` is zero or `addresses` is empty.
pub fn coalesce_addresses(addresses: &[u64], page_bytes: u64, write: bool) -> WarpAccess {
    assert!(page_bytes > 0, "page size must be positive");
    assert!(
        !addresses.is_empty(),
        "a warp access touches at least one address"
    );
    let mut pages: Vec<PageId> = Vec::with_capacity(4);
    for &addr in addresses {
        let page = PageId(addr / page_bytes);
        if !pages.contains(&page) {
            pages.push(page);
        }
    }
    WarpAccess::scattered(pages, write)
}

/// Coalesces per-lane *page ids* directly (for generators that already
/// think in pages).
///
/// # Examples
///
/// ```
/// use gmt_gpu::coalesce::coalesce_pages;
/// use gmt_mem::PageId;
///
/// let access = coalesce_pages([PageId(3), PageId(3), PageId(5)], true);
/// assert_eq!(access.pages.len(), 2);
/// assert!(access.write);
/// ```
///
/// # Panics
///
/// Panics if the iterator yields no pages.
pub fn coalesce_pages(lanes: impl IntoIterator<Item = PageId>, write: bool) -> WarpAccess {
    let mut pages: Vec<PageId> = Vec::with_capacity(4);
    for page in lanes {
        if !pages.contains(&page) {
            pages.push(page);
        }
    }
    assert!(!pages.is_empty(), "a warp access touches at least one page");
    WarpAccess::scattered(pages, write)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_coalesces_to_one_page() {
        let addrs: Vec<u64> = (0..32).map(|lane| lane * 4).collect();
        let a = coalesce_addresses(&addrs, 65_536, false);
        assert_eq!(a.pages.len(), 1);
        assert_eq!(a.pages.first(), PageId(0));
    }

    #[test]
    fn fully_divergent_access_touches_32_pages() {
        let addrs: Vec<u64> = (0..32).map(|lane| lane * 65_536).collect();
        let a = coalesce_addresses(&addrs, 65_536, false);
        assert_eq!(a.pages.len(), 32);
    }

    #[test]
    fn page_boundary_straddle() {
        let a = coalesce_addresses(&[65_535, 65_536], 65_536, false);
        assert_eq!(a.pages.len(), 2);
    }

    #[test]
    fn first_occurrence_order_is_kept() {
        let a = coalesce_pages([PageId(9), PageId(1), PageId(9), PageId(4)], false);
        let pages: Vec<_> = a.pages.iter().collect();
        assert_eq!(pages, vec![PageId(9), PageId(1), PageId(4)]);
    }

    #[test]
    #[should_panic(expected = "at least one address")]
    fn empty_lanes_rejected() {
        let _ = coalesce_addresses(&[], 65_536, false);
    }
}
