//! Property tests for the warp executor.

use gmt_gpu::{Executor, ExecutorConfig, MemoryBackend};
use gmt_mem::{PageId, WarpAccess};
use gmt_sim::{Dur, Time};
use proptest::prelude::*;

/// Backend with per-access costs derived from the access's page id.
struct PageCost;

impl MemoryBackend for PageCost {
    fn access(&mut self, now: Time, access: &WarpAccess) -> Time {
        now + Dur::from_nanos(access.pages.first().0 % 5_000)
    }
}

proptest! {
    #[test]
    fn more_warps_never_slow_a_trace(
        pages in proptest::collection::vec(0u64..10_000, 1..300),
        slots in 1usize..64,
    ) {
        let trace: Vec<WarpAccess> = pages.iter().map(|&p| WarpAccess::read(PageId(p))).collect();
        let few = Executor::new(ExecutorConfig { warp_slots: slots, compute_per_access: Dur::ZERO });
        let many = Executor::new(ExecutorConfig { warp_slots: slots * 2, compute_per_access: Dur::ZERO });
        let a = few.run(PageCost, trace.iter().cloned());
        let b = many.run(PageCost, trace.iter().cloned());
        prop_assert!(b.elapsed <= a.elapsed, "doubling warp slots slowed the run");
    }

    #[test]
    fn elapsed_is_bounded_by_serial_and_critical_path(
        costs in proptest::collection::vec(1u64..5_000, 1..200),
        slots in 1usize..32,
    ) {
        let trace: Vec<WarpAccess> = costs.iter().map(|&c| WarpAccess::read(PageId(c))).collect();
        let exec = Executor::new(ExecutorConfig { warp_slots: slots, compute_per_access: Dur::ZERO });
        let out = exec.run(PageCost, trace.iter().cloned());
        let serial: u64 = costs.iter().map(|c| c % 5_000).sum();
        let max_single = costs.iter().map(|c| c % 5_000).max().unwrap_or(0);
        prop_assert!(out.elapsed.as_nanos() <= serial, "cannot exceed fully-serial time");
        prop_assert!(out.elapsed.as_nanos() >= max_single, "cannot beat the longest access");
        prop_assert_eq!(out.accesses, costs.len() as u64);
    }
}
