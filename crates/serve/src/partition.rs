//! Tier-1 partitioning policies.

use std::fmt;

use serde::{Deserialize, Serialize};

/// How the shared Tier-1 (GPU memory) is divided among tenants.
///
/// Tier-2, the SSD array and both PCIe directions are *always* shared —
/// partitioning governs only the scarce tier. The four policies span
/// the isolation ↔ utilization trade-off:
///
/// | Policy | Capacity isolation | Work-conserving |
/// |---|---|---|
/// | [`StrictQuota`](PartitionPolicy::StrictQuota) | hard | no |
/// | [`WeightedShares`](PartitionPolicy::WeightedShares) | proportional under contention | yes |
/// | [`SharedQos`](PartitionPolicy::SharedQos) | floor only | yes |
/// | [`FullyShared`](PartitionPolicy::FullyShared) | none | yes |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionPolicy {
    /// Each tenant owns a fixed slice of Tier-1 proportional to its
    /// share and may never exceed it, even when the rest sits idle.
    /// Evictions are always self-evictions.
    StrictQuota,
    /// Tenants may use any amount of Tier-1 while it is free; under
    /// pressure the victim comes from the tenant furthest *above* its
    /// weighted share, driving occupancies toward the share ratios
    /// without wasting idle capacity.
    WeightedShares,
    /// One shared clock over all of Tier-1, except that a tenant
    /// holding no more than its reserved floor is exempt from eviction
    /// — the QoS guarantee: a victim is never taken from a tenant at or
    /// below its floor.
    SharedQos,
    /// One shared clock, no protection: pure LRU-approximation across
    /// all tenants. The baseline that shows interference.
    FullyShared,
}

impl PartitionPolicy {
    /// Every policy, in the order benches sweep them.
    pub const ALL: [PartitionPolicy; 4] = [
        PartitionPolicy::StrictQuota,
        PartitionPolicy::WeightedShares,
        PartitionPolicy::SharedQos,
        PartitionPolicy::FullyShared,
    ];

    /// Short stable name for tables and CLI arguments.
    pub fn name(&self) -> &'static str {
        match self {
            PartitionPolicy::StrictQuota => "strict-quota",
            PartitionPolicy::WeightedShares => "weighted-shares",
            PartitionPolicy::SharedQos => "shared-qos",
            PartitionPolicy::FullyShared => "fully-shared",
        }
    }

    /// Whether the policy pins each tenant to a private Tier-1 region
    /// (as opposed to scanning one shared clock).
    pub fn is_partitioned(&self) -> bool {
        matches!(
            self,
            PartitionPolicy::StrictQuota | PartitionPolicy::WeightedShares
        )
    }
}

impl fmt::Display for PartitionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_stable() {
        let names: Vec<_> = PartitionPolicy::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "strict-quota",
                "weighted-shares",
                "shared-qos",
                "fully-shared"
            ]
        );
        assert_eq!(PartitionPolicy::StrictQuota.to_string(), "strict-quota");
    }

    #[test]
    fn partitioned_split() {
        assert!(PartitionPolicy::StrictQuota.is_partitioned());
        assert!(PartitionPolicy::WeightedShares.is_partitioned());
        assert!(!PartitionPolicy::SharedQos.is_partitioned());
        assert!(!PartitionPolicy::FullyShared.is_partitioned());
    }
}
