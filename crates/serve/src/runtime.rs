//! The shared tiered hierarchy serving every tenant.

use std::collections::VecDeque;

use gmt_analysis::tracesum::TenantSummaryBuilder;
use gmt_core::{GmtConfig, PredictorKind, TieringMetrics};
use gmt_gpu::{Executor, ExecutorConfig, MemoryBackend, RunOutcome};
use gmt_mem::{ClockList, FifoCache, PageId, PageTable, Tier, WarpAccess};
use gmt_pcie::{HostLink, TransferBatch};
use gmt_reuse::{MarkovPredictor, PageHistory, SamplingRegression, TierClassifier};
use gmt_sim::trace::{LinkDir, TierTag, TraceEvent, TraceSink};
use gmt_sim::{Dur, Time};
use gmt_ssd::array::{ArrayConfig, SsdArray};
use gmt_ssd::host_io::{HostIo, HostIoConfig};

use crate::report::ServeReport;
use crate::{PartitionPolicy, TenantId, TenantRegistry};

/// Configuration of the serving hierarchy: the underlying GMT substrate
/// plus how its Tier-1 is partitioned.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// The tier geometry, device calibration and reuse machinery knobs.
    /// `geometry.total_pages` must cover every admitted tenant's range.
    pub gmt: GmtConfig,
    /// How Tier-1 is divided among tenants.
    pub partition: PartitionPolicy,
}

/// Per-page state (the serving twin of the single-tenant runtime's
/// bookkeeping; ownership is implicit in the page's address range).
#[derive(Debug, Clone)]
struct PageMeta {
    tier: Tier,
    dirty: bool,
    ready_at: Time,
    evicted_at_vt: Option<u64>,
    touches_since_load: u32,
    predicted: Option<Tier>,
    history: PageHistory,
}

impl Default for PageMeta {
    fn default() -> PageMeta {
        PageMeta {
            tier: Tier::Ssd,
            dirty: false,
            ready_at: Time::ZERO,
            evicted_at_vt: None,
            touches_since_load: 0,
            predicted: None,
            history: PageHistory::default(),
        }
    }
}

/// Sliding window over recent eviction predictions (the §2.2 heuristic),
/// kept per tenant so one tenant's streaming phase cannot force another
/// tenant's victims into Tier-2.
#[derive(Debug, Clone)]
struct BypassWindow {
    recent: VecDeque<bool>,
    t3_count: usize,
    capacity: usize,
}

impl BypassWindow {
    fn new(capacity: usize) -> BypassWindow {
        BypassWindow {
            recent: VecDeque::with_capacity(capacity),
            t3_count: 0,
            capacity,
        }
    }

    fn push(&mut self, predicted_t3: bool) {
        // gmt-lint: allow(P1): len == capacity > 0 guarantees a front element.
        if self.recent.len() == self.capacity && self.recent.pop_front().expect("window non-empty")
        {
            self.t3_count -= 1;
        }
        self.recent.push_back(predicted_t3);
        if predicted_t3 {
            self.t3_count += 1;
        }
    }

    fn t3_fraction(&self) -> Option<f64> {
        (self.recent.len() == self.capacity).then(|| self.t3_count as f64 / self.capacity as f64)
    }
}

/// Everything the hierarchy keeps *per tenant*: the reuse machinery
/// (sampler, classifier, Markov chain, bypass window) plus quota
/// bookkeeping and counters. Device queues and PCIe links are shared —
/// contention crosses tenants even when capacity does not.
#[derive(Debug)]
struct TenantState {
    name: String,
    base: u64,
    span: usize,
    /// Strict-quota slice (pages); unused by other policies.
    budget: usize,
    weight: u32,
    floor: usize,
    /// This tenant's virtual-timestamp stream: one tick per coalesced
    /// touch *by this tenant*, so RVTDs measure the tenant's own reuse
    /// distance and are immune to other tenants' access rates.
    vt: u64,
    sampler: SamplingRegression,
    classifier: TierClassifier,
    markov: MarkovPredictor,
    bypass: BypassWindow,
    metrics: TieringMetrics,
    /// Pages currently resident in Tier-1.
    resident: usize,
}

/// How Tier-1 is organized physically.
#[derive(Debug)]
enum Tier1Org {
    /// One clock per tenant (strict quota: sized to the quota;
    /// weighted shares: each sized to all of Tier-1, with the global
    /// population capped by the hierarchy).
    PerTenant(Vec<ClockList>),
    /// One clock over all of Tier-1 (shared policies).
    Shared(ClockList),
}

/// The multi-tenant serving hierarchy: one Tier-2, one SSD array and
/// one PCIe path shared by every tenant, with Tier-1 divided per the
/// configured [`PartitionPolicy`].
///
/// Implements [`MemoryBackend`], so an interleaved multi-tenant arrival
/// schedule (see [`TieredService::offered_load`]) replays through
/// [`Executor::run_arrivals`] exactly like a single-tenant trace.
///
/// # Examples
///
/// ```
/// use gmt_core::GmtConfig;
/// use gmt_mem::TierGeometry;
/// use gmt_serve::{
///     ArrivalSchedule, PartitionPolicy, ServeConfig, TenantRegistry, TenantSpec, TieredService,
/// };
/// use gmt_workloads::synthetic::ZipfLoop;
/// use gmt_workloads::WorkloadScale;
///
/// let mut registry = TenantRegistry::new(64, PartitionPolicy::StrictQuota);
/// for (i, name) in ["a", "b"].iter().enumerate() {
///     registry
///         .admit(TenantSpec {
///             name: (*name).into(),
///             workload: Box::new(ZipfLoop::new(&WorkloadScale::tiny(), 1.0, 0.1, 500)),
///             arrival: ArrivalSchedule::Uniform { gap_ns: 300 },
///             quota_pages: 32,
///             weight: 1,
///             floor_pages: 8,
///             seed: i as u64,
///         })
///         .expect("admitted");
/// }
/// let geometry = TierGeometry::from_tier1(64, 4.0, 4.0);
/// let config = ServeConfig {
///     gmt: GmtConfig::new(geometry),
///     partition: PartitionPolicy::StrictQuota,
/// };
/// let service = TieredService::new(&config, registry).expect("valid");
/// let outcome = service.serve(Default::default(), 1 << 20);
/// assert_eq!(outcome.report.tenants.len(), 2);
/// ```
#[derive(Debug)]
pub struct TieredService {
    config: ServeConfig,
    tenants: Vec<TenantState>,
    tier1: Tier1Org,
    tier2: FifoCache,
    table: PageTable<PageMeta>,
    ssd: SsdArray,
    host_io: HostIo,
    to_gpu: HostLink,
    to_host: HostLink,
    trace: TraceSink,
    /// The specs, retained to generate the offered load.
    registry: TenantRegistry,
    /// Reused per-access miss buffers (see [`gmt_core`]'s `Gmt`): taken
    /// with `mem::take` in `access` and put back cleared so the hottest
    /// path allocates nothing after warmup (A1).
    scratch_tier2: Vec<PageId>,
    scratch_ssd: Vec<PageId>,
}

/// The result of serving one multi-tenant schedule to completion.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Total simulated time until the last access's data was ready.
    pub elapsed: Dur,
    /// Warp accesses served across all tenants.
    pub accesses: u64,
    /// Per-tenant report (hit rates, latency percentiles, fairness).
    pub report: ServeReport,
    /// Per-tenant counters, in tenant-id order.
    pub per_tenant: Vec<TieringMetrics>,
    /// Sum of every tenant's counters.
    pub aggregate: TieringMetrics,
}

impl TieredService {
    /// Builds the hierarchy for an admitted tenant population.
    ///
    /// # Errors
    ///
    /// Returns the [`gmt_core::ConfigError`] if the substrate
    /// configuration is degenerate.
    ///
    /// # Panics
    ///
    /// Panics if the geometry's address space does not cover every
    /// tenant's page range, or if the registry's policy/Tier-1 capacity
    /// disagree with `config` (the admission checks would be void).
    pub fn new(
        config: &ServeConfig,
        registry: TenantRegistry,
    ) -> Result<TieredService, gmt_core::ConfigError> {
        config.gmt.validate()?;
        let g = &config.gmt.geometry;
        assert_eq!(
            registry.policy(),
            config.partition,
            "registry admitted tenants under a different policy"
        );
        assert_eq!(
            registry.tier1_pages(),
            g.tier1_pages,
            "registry partitioned a different tier-1 capacity"
        );
        assert!(
            registry.total_pages() <= g.total_pages,
            "tenant ranges ({} pages) exceed the address space ({} pages)",
            registry.total_pages(),
            g.total_pages
        );
        let tenants: Vec<TenantState> = registry
            .specs()
            .iter()
            .zip(registry.bases())
            .map(|(spec, &base)| {
                // Strict quotas shrink the tenant's *effective* Tier-1, so
                // Eq. 1 classifies against the slice, not the machine.
                let t1 = match config.partition {
                    PartitionPolicy::StrictQuota => spec.quota_pages,
                    _ => g.tier1_pages,
                } as u64;
                TenantState {
                    name: spec.name.clone(),
                    base,
                    span: spec.workload.total_pages(),
                    budget: spec.quota_pages,
                    weight: spec.weight,
                    floor: spec.floor_pages,
                    vt: 0,
                    sampler: SamplingRegression::new(config.gmt.reuse.sampler),
                    classifier: TierClassifier::new(t1, (g.tier2_pages as u64).max(t1)),
                    markov: MarkovPredictor::new(),
                    bypass: BypassWindow::new(config.gmt.reuse.bypass_window.max(1)),
                    metrics: TieringMetrics::default(),
                    resident: 0,
                }
            })
            .collect();
        let tier1 = match config.partition {
            PartitionPolicy::StrictQuota => {
                Tier1Org::PerTenant(tenants.iter().map(|t| ClockList::new(t.budget)).collect())
            }
            PartitionPolicy::WeightedShares => Tier1Org::PerTenant(
                tenants
                    .iter()
                    .map(|_| ClockList::new(g.tier1_pages))
                    .collect(),
            ),
            _ => Tier1Org::Shared(ClockList::new(g.tier1_pages)),
        };
        Ok(TieredService {
            tenants,
            tier1,
            tier2: FifoCache::new(g.tier2_pages),
            table: PageTable::new(g.total_pages),
            ssd: SsdArray::new(ArrayConfig {
                device: config.gmt.ssd,
                devices: config.gmt.ssd_devices.max(1),
                stripe_bytes: g.page_bytes,
            }),
            host_io: HostIo::new(HostIoConfig::default()),
            to_gpu: HostLink::new(config.gmt.host_link),
            to_host: HostLink::new(config.gmt.host_link),
            trace: TraceSink::disabled(),
            config: *config,
            registry,
            scratch_tier2: Vec::new(),
            scratch_ssd: Vec::new(),
        })
    }

    /// The service's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Number of tenants being served.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The tenant owning `page`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside every tenant's range.
    pub fn tenant_of(&self, page: PageId) -> TenantId {
        let i = self
            .tenants
            .partition_point(|t| t.base <= page.0)
            .checked_sub(1)
            // gmt-lint: allow(P1): documented panic for out-of-range pages.
            .expect("page below every tenant base");
        let t = &self.tenants[i];
        assert!(
            page.0 < t.base + t.span as u64,
            "{page} falls in the gap after tenant {i}"
        );
        TenantId(i as u32)
    }

    /// Counters accumulated for one tenant.
    pub fn metrics(&self, tenant: TenantId) -> TieringMetrics {
        self.tenants[tenant.index()].metrics
    }

    /// Every tenant's counters merged — the hierarchy-wide aggregate.
    pub fn aggregate_metrics(&self) -> TieringMetrics {
        let mut total = TieringMetrics::default();
        for t in &self.tenants {
            total.merge(&t.metrics);
        }
        total
    }

    /// Pages a tenant currently holds in Tier-1.
    pub fn tenant_t1_resident(&self, tenant: TenantId) -> usize {
        self.tenants[tenant.index()].resident
    }

    /// A tenant's eviction-exempt floor (shared-QoS), in pages.
    pub fn tenant_floor(&self, tenant: TenantId) -> usize {
        self.tenants[tenant.index()].floor
    }

    /// A tenant's strict-quota budget, in pages.
    pub fn tenant_budget(&self, tenant: TenantId) -> usize {
        self.tenants[tenant.index()].budget
    }

    /// Turns on decision tracing into a fresh ring of `capacity`
    /// records, wiring in the shared SSD array and both PCIe
    /// directions. Records emitted while serving a tenant's access are
    /// stamped with that tenant's id (see
    /// [`gmt_analysis::tracesum::tenant_summaries`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_tracing(&mut self, capacity: usize) -> TraceSink {
        let sink = TraceSink::bounded(capacity);
        self.trace = sink.clone();
        self.ssd.attach_trace(&sink);
        self.to_gpu.attach_trace(&sink, LinkDir::ToGpu);
        self.to_host.attach_trace(&sink, LinkDir::ToHost);
        sink
    }

    /// The interleaved open-arrival schedule of every tenant: each
    /// tenant's workload trace is relocated to its global range, paired
    /// with its arrival times, and merged by `(arrival, tenant, seq)` —
    /// fully deterministic for a fixed registry.
    pub fn offered_load(&self) -> Vec<(Time, WarpAccess)> {
        let mut merged: Vec<(Time, u32, usize, WarpAccess)> = Vec::new();
        for (i, spec) in self.registry.specs().iter().enumerate() {
            let base = self.tenants[i].base;
            let trace = spec.workload.trace(spec.seed);
            let times = spec
                .arrival
                .times(trace.len(), gmt_sim::rng::derive(spec.seed, 0x4152_5256));
            for (seq, (at, mut access)) in times.into_iter().zip(trace).enumerate() {
                // Relocation mutates the owned trace in place: no
                // per-access page-vector rebuild.
                access.relocate(base);
                merged.push((at, i as u32, seq, access));
            }
        }
        merged.sort_by_key(|(at, tenant, seq, _)| (at.as_nanos(), *tenant, *seq));
        merged
            .into_iter()
            .map(|(at, _, _, access)| (at, access))
            .collect()
    }

    /// Serves the whole offered load to completion: enables tracing,
    /// replays the merged schedule through
    /// [`Executor::run_arrivals`], and distills the per-tenant report.
    ///
    /// # Panics
    ///
    /// Panics if `trace_capacity` is zero or the ring overflows (the
    /// report would silently undercount; size the ring to the run).
    pub fn serve(mut self, executor: ExecutorConfig, trace_capacity: usize) -> ServeOutcome {
        let sink = self.enable_tracing(trace_capacity);
        let schedule = self.offered_load();
        let policy = self.config.partition;
        let out: RunOutcome<TieredService> = Executor::new(executor).run_arrivals(self, schedule);
        assert_eq!(
            sink.dropped(),
            0,
            "trace ring overflowed; raise trace_capacity"
        );
        let service = out.backend;
        let per_tenant: Vec<TieringMetrics> = service.tenants.iter().map(|t| t.metrics).collect();
        let aggregate = service.aggregate_metrics();
        let names: Vec<String> = service.tenants.iter().map(|t| t.name.clone()).collect();
        // Fold the trace straight out of the ring: a full run buffers
        // millions of records, and materializing them as one Vec only to
        // summarize and drop them costs more than the summary itself.
        let mut builder = TenantSummaryBuilder::new();
        sink.visit(|r| builder.observe(r));
        let report = ServeReport::from_summaries(policy, &names, &builder.finish(), &per_tenant);
        ServeOutcome {
            elapsed: out.elapsed,
            accesses: out.accesses,
            report,
            per_tenant,
            aggregate,
        }
    }

    /// Verifies structural invariants: clocks, Tier-2 and the page
    /// table agree; resident counters match clock populations; strict
    /// quotas are respected.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut tier1_total = 0usize;
        for (i, t) in self.tenants.iter().enumerate() {
            let in_clock = match &self.tier1 {
                Tier1Org::PerTenant(clocks) => clocks[i].len(),
                Tier1Org::Shared(clock) => clock
                    .iter()
                    .filter(|p| self.tenant_of(*p).index() == i)
                    .count(),
            };
            if in_clock != t.resident {
                return Err(format!(
                    "tenant {i} resident counter {} but clock holds {in_clock}",
                    t.resident
                ));
            }
            if self.config.partition == PartitionPolicy::StrictQuota && t.resident > t.budget {
                return Err(format!(
                    "tenant {i} holds {} Tier-1 pages over its {}-page quota",
                    t.resident, t.budget
                ));
            }
            tier1_total += t.resident;
        }
        if tier1_total > self.config.gmt.geometry.tier1_pages {
            return Err(format!(
                "{tier1_total} Tier-1 residents exceed the {}-page capacity",
                self.config.gmt.geometry.tier1_pages
            ));
        }
        let mut t1 = 0usize;
        let mut t2 = 0usize;
        for (page, meta) in self.table.iter() {
            match meta.tier {
                Tier::Gpu => t1 += 1,
                Tier::Host => {
                    t2 += 1;
                    if !self.tier2.contains(page) {
                        return Err(format!("{page} marked Tier-2 but absent from the cache"));
                    }
                }
                Tier::Ssd => {}
            }
        }
        if t1 != tier1_total {
            return Err(format!(
                "page table says {t1} Tier-1 pages but clocks hold {tier1_total}"
            ));
        }
        if t2 != self.tier2.len() {
            return Err(format!(
                "page table says {t2} Tier-2 pages but the cache holds {}",
                self.tier2.len()
            ));
        }
        Ok(())
    }

    fn page_bytes(&self) -> u64 {
        self.config.gmt.geometry.page_bytes
    }

    fn ssd_offset(&self, page: PageId) -> u64 {
        page.0 * self.page_bytes()
    }

    fn clock_mut(&mut self, tenant: usize) -> &mut ClockList {
        match &mut self.tier1 {
            Tier1Org::PerTenant(clocks) => &mut clocks[tenant],
            Tier1Org::Shared(clock) => clock,
        }
    }

    /// Free Tier-1 slots available to a faulting tenant under the
    /// current policy.
    fn free_slots(&self, tenant: usize) -> usize {
        match (&self.tier1, self.config.partition) {
            (Tier1Org::PerTenant(_), PartitionPolicy::StrictQuota) => {
                let t = &self.tenants[tenant];
                t.budget - t.resident
            }
            (Tier1Org::PerTenant(_), _) => {
                let total: usize = self.tenants.iter().map(|t| t.resident).sum();
                self.config.gmt.geometry.tier1_pages - total
            }
            (Tier1Org::Shared(clock), _) => clock.capacity() - clock.len(),
        }
    }

    /// Predicts the tier the page's next reuse falls into, using the
    /// *owner's* Markov chain and history.
    fn predict_tier(&self, page: PageId) -> Tier {
        let owner = self.tenant_of(page).index();
        let meta = self.table.get(page);
        match meta.history.last() {
            Some(last) => match self.config.gmt.reuse.predictor {
                PredictorKind::Markov => self.tenants[owner].markov.predict(last),
                PredictorKind::LastTier => last,
                PredictorKind::AlwaysHost => Tier::Host,
            },
            None if meta.touches_since_load <= 1 => Tier::Ssd,
            None => Tier::Host,
        }
    }

    /// The weighted-shares victim tenant: the one furthest above its
    /// weighted share (largest resident-per-weight), among tenants that
    /// hold anything at all. Work-conserving: idle tenants' capacity is
    /// reclaimed from whoever borrowed the most.
    fn most_over_share(&self) -> usize {
        self.tenants
            .iter()
            .enumerate()
            .filter(|(_, t)| t.resident > 0)
            .max_by(|(_, a), (_, b)| {
                let ka = a.resident as f64 / a.weight as f64;
                let kb = b.resident as f64 / b.weight as f64;
                // gmt-lint: allow(P1): weights are validated non-zero, so ratios are never NaN.
                ka.partial_cmp(&kb).expect("ratios are finite")
            })
            .map(|(i, _)| i)
            // gmt-lint: allow(P1): eviction only runs once tier-1 is full, so a tenant has pages.
            .expect("eviction requested from an empty tier-1")
    }

    /// GMT-Reuse victim selection within one tenant's private clock.
    fn select_per_tenant(&mut self, victim_tenant: usize) -> (PageId, Tier, Tier) {
        let max_skips = self.config.gmt.reuse.max_skips;
        for _ in 0..max_skips {
            let candidate = self
                .clock_mut(victim_tenant)
                .candidate()
                // gmt-lint: allow(P1): the victim tenant was chosen for having resident pages.
                .expect("victim tenant's clock is non-empty");
            let predicted = self.predict_tier(candidate);
            if predicted == Tier::Gpu {
                self.tenants[victim_tenant].metrics.short_reuse_keeps += 1;
                self.clock_mut(victim_tenant).skip_candidate();
                continue;
            }
            return self.finish_selection(victim_tenant, candidate, predicted);
        }
        let victim = self.clock_mut(victim_tenant).evict_candidate();
        self.tenants[victim_tenant].bypass.push(false);
        (victim, Tier::Host, Tier::Gpu)
    }

    /// GMT-Reuse victim selection on the shared clock, optionally
    /// skipping pages whose owner sits at or below its QoS floor.
    ///
    /// Termination: admission guarantees `Σ floors < tier1_pages`, so a
    /// full Tier-1 always holds a page owned by an above-floor tenant
    /// (or by the faulting tenant itself, whose net residency is
    /// unchanged by a self-eviction-plus-fill).
    fn select_shared(&mut self, qos: bool, faulting: usize) -> (PageId, Tier, Tier) {
        let capacity = match &self.tier1 {
            Tier1Org::Shared(clock) => clock.capacity(),
            Tier1Org::PerTenant(_) => unreachable!("shared selection on partitioned tier-1"),
        };
        let max_skips = self.config.gmt.reuse.max_skips;
        let mut reuse_skips = 0usize;
        // Floor skips re-arm reference bits, so one extra lap clears
        // them; 4 laps bounds the scan far above any reachable case.
        for _ in 0..4 * capacity.max(1) {
            let candidate = self
                .clock_mut(faulting)
                .candidate()
                // gmt-lint: allow(P1): eviction only runs once the shared tier-1 is full.
                .expect("shared clock is non-empty");
            let owner = self.tenant_of(candidate).index();
            if qos && owner != faulting && self.tenants[owner].resident <= self.tenants[owner].floor
            {
                self.clock_mut(faulting).skip_candidate();
                continue;
            }
            let predicted = self.predict_tier(candidate);
            if predicted == Tier::Gpu && reuse_skips < max_skips {
                reuse_skips += 1;
                self.tenants[faulting].metrics.short_reuse_keeps += 1;
                self.clock_mut(faulting).skip_candidate();
                continue;
            }
            return self.finish_selection(faulting, candidate, predicted);
        }
        unreachable!("no evictable page found; admission floors must be violated");
    }

    /// Applies the §2.2 bypass heuristic and evicts the candidate.
    /// Counter attribution goes to `account`, the faulting tenant.
    fn finish_selection(
        &mut self,
        account: usize,
        candidate: PageId,
        predicted: Tier,
    ) -> (PageId, Tier, Tier) {
        self.tenants[account].bypass.push(predicted == Tier::Ssd);
        let mut target = predicted;
        if predicted == Tier::Ssd {
            if let Some(f) = self.tenants[account].bypass.t3_fraction() {
                if f > self.config.gmt.reuse.bypass_threshold {
                    target = Tier::Host;
                    self.tenants[account].metrics.forced_t2_placements += 1;
                }
            }
        }
        let clock = match &mut self.tier1 {
            Tier1Org::PerTenant(clocks) => &mut clocks[account],
            Tier1Org::Shared(clock) => clock,
        };
        let victim = clock.evict_candidate();
        debug_assert_eq!(victim, candidate);
        (victim, target, predicted)
    }

    /// Evicts one Tier-1 page on behalf of faulting tenant `t`; returns
    /// when the evicting warp is done with the transfer.
    fn evict_one(&mut self, now: Time, t: usize) -> Time {
        let (victim, target, predicted) = match self.config.partition {
            PartitionPolicy::StrictQuota => self.select_per_tenant(t),
            PartitionPolicy::WeightedShares => {
                let v = self.most_over_share();
                self.select_per_tenant(v)
            }
            PartitionPolicy::SharedQos => self.select_shared(true, t),
            PartitionPolicy::FullyShared => self.select_shared(false, t),
        };
        let owner = self.tenant_of(victim).index();
        self.tenants[owner].resident -= 1;
        self.tenants[t].metrics.t1_evictions += 1;
        {
            let vt = self.tenants[owner].vt;
            let meta = self.table.get_mut(victim);
            meta.evicted_at_vt = Some(vt);
            meta.predicted = Some(predicted);
        }
        if self.trace.is_enabled() {
            self.trace.emit(
                now,
                TraceEvent::Eviction {
                    page: victim.0,
                    predicted: Some(tier_tag(predicted)),
                    target: tier_tag(target),
                    dirty: self.table.get(victim).dirty,
                },
            );
        }
        match target {
            Tier::Host => self.place_in_tier2(now, t, victim),
            _ => self.bypass_to_ssd(now, t, victim),
        }
    }

    /// Places `victim` into the shared Tier-2 (FIFO), spilling its own
    /// victim if full.
    fn place_in_tier2(&mut self, now: Time, t: usize, victim: PageId) -> Time {
        if let Some(t2_victim) = self.tier2.insert_evicting(victim) {
            self.drop_from_tier2(now, t, t2_victim);
        }
        self.tenants[t].metrics.t2_placements += 1;
        if self.trace.is_enabled() {
            self.trace.emit(
                now,
                TraceEvent::Tier2Place {
                    page: victim.0,
                    dirty: self.table.get(victim).dirty,
                },
            );
        }
        let batch = TransferBatch {
            pages: 1,
            page_bytes: self.page_bytes(),
            threads: 32,
        };
        let done = self.to_host.transfer(now, batch, self.config.gmt.transfer);
        let meta = self.table.get_mut(victim);
        meta.tier = Tier::Host;
        meta.ready_at = done;
        done
    }

    /// A page leaving the shared Tier-2: dirty pages are written back
    /// by host userspace I/O, off the GPU's critical path.
    fn drop_from_tier2(&mut self, now: Time, t: usize, t2_victim: PageId) {
        let dirty = {
            let meta = self.table.get_mut(t2_victim);
            let dirty = meta.dirty;
            meta.tier = Tier::Ssd;
            meta.dirty = false;
            dirty
        };
        self.trace.emit(
            now,
            TraceEvent::Tier2Spill {
                page: t2_victim.0,
                dirty,
            },
        );
        if dirty {
            self.tenants[t].metrics.t2_writebacks += 1;
            let offset = self.ssd_offset(t2_victim);
            let bytes = self.page_bytes();
            self.host_io.write(now, &mut self.ssd, offset, bytes);
        } else {
            self.tenants[t].metrics.t2_drops += 1;
        }
    }

    /// Bypasses `victim` straight to Tier-3.
    fn bypass_to_ssd(&mut self, now: Time, t: usize, victim: PageId) -> Time {
        let dirty = {
            let meta = self.table.get_mut(victim);
            let dirty = meta.dirty;
            meta.tier = Tier::Ssd;
            meta.dirty = false;
            dirty
        };
        if dirty {
            self.tenants[t].metrics.ssd_writes += 1;
            self.trace
                .emit(now, TraceEvent::SsdWriteBack { page: victim.0 });
            let offset = self.ssd_offset(victim);
            let bytes = self.page_bytes();
            self.ssd.write(now, offset, bytes)
        } else {
            self.tenants[t].metrics.discards += 1;
            self.trace
                .emit(now, TraceEvent::EvictDiscard { page: victim.0 });
            now
        }
    }

    /// Bookkeeping when `page` re-enters Tier-1: grade the owner's old
    /// prediction against the now-known RVTD and train its Markov chain.
    fn on_refill(&mut self, now: Time, page: PageId) {
        let owner = self.tenant_of(page).index();
        let fit = self.tenants[owner].sampler.fit();
        let vt = self.tenants[owner].vt;
        let classifier = self.tenants[owner].classifier;
        let meta = self.table.get_mut(page);
        if let Some(evicted_vt) = meta.evicted_at_vt.take() {
            let rvtd = vt.saturating_sub(evicted_vt);
            let correct = classifier.classify_rvtd(rvtd, &fit);
            if let Some(predicted) = meta.predicted.take() {
                self.tenants[owner].metrics.predictions += 1;
                if predicted == correct {
                    self.tenants[owner].metrics.predictions_correct += 1;
                }
                self.trace.emit(
                    now,
                    TraceEvent::PredictionGraded {
                        page: page.0,
                        predicted: tier_tag(predicted),
                        actual: tier_tag(correct),
                        correct: predicted == correct,
                    },
                );
            }
            let mut history = self.table.get(page).history;
            history.observe(correct, &mut self.tenants[owner].markov);
            self.table.get_mut(page).history = history;
        }
    }

    /// Installs `page` into the faulting tenant's Tier-1 organization.
    fn install(&mut self, t: usize, page: PageId) {
        self.clock_mut(t).insert(page);
        self.tenants[t].resident += 1;
    }
}

/// Maps the memory model's [`Tier`] onto the trace vocabulary.
fn tier_tag(tier: Tier) -> TierTag {
    match tier {
        Tier::Gpu => TierTag::Gpu,
        Tier::Host => TierTag::Host,
        Tier::Ssd => TierTag::Ssd,
    }
}

impl MemoryBackend for TieredService {
    fn access(&mut self, now: Time, access: &WarpAccess) -> Time {
        let first = access.pages.first();
        let t = self.tenant_of(first).index();
        // Stamp every record emitted while serving this access — the
        // per-tenant report is distilled from these stamps.
        self.trace.set_tenant(Some(t as u32));
        self.tenants[t].metrics.accesses += 1;
        let mut ready = now;
        // Scratch buffers live on the struct; `take` swaps in empties
        // (no allocation) and the tail of this fn puts them back.
        let mut tier2_fetches: Vec<PageId> = std::mem::take(&mut self.scratch_tier2);
        let mut ssd_fetches: Vec<PageId> = std::mem::take(&mut self.scratch_ssd);
        for page in access.pages.iter() {
            assert_eq!(
                self.tenant_of(page).index(),
                t,
                "a warp access may not span tenants"
            );
            self.tenants[t].vt += 1;
            self.trace.set_vt(self.tenants[t].vt);
            if !self.tenants[t].sampler.is_complete() {
                self.tenants[t].sampler.observe(page);
            }
            let meta = self.table.get(page);
            match meta.tier {
                Tier::Gpu => {
                    ready = ready.max(meta.ready_at);
                    self.clock_mut(t).touch(page);
                    self.tenants[t].metrics.t1_hits += 1;
                    self.table.get_mut(page).touches_since_load += 1;
                    self.trace.emit(now, TraceEvent::Tier1Hit { page: page.0 });
                }
                Tier::Host => {
                    self.trace.emit(
                        now,
                        TraceEvent::Tier1Miss {
                            page: page.0,
                            resident: TierTag::Host,
                        },
                    );
                    tier2_fetches.push(page);
                }
                Tier::Ssd => {
                    self.trace.emit(
                        now,
                        TraceEvent::Tier1Miss {
                            page: page.0,
                            resident: TierTag::Ssd,
                        },
                    );
                    ssd_fetches.push(page);
                }
            }
        }

        let missing = tier2_fetches.len() + ssd_fetches.len();
        self.tenants[t].metrics.t1_misses += missing as u64;

        let free = self.free_slots(t);
        for _ in 0..missing.saturating_sub(free) {
            let done = self.evict_one(now, t);
            if !self.config.gmt.async_eviction {
                ready = ready.max(done);
            }
        }

        // Every miss probes the shared Tier-2 before touching the SSD.
        let probe_done = now + self.to_gpu.lookup_cost();

        if !tier2_fetches.is_empty() {
            self.tenants[t].metrics.t2_hits += tier2_fetches.len() as u64;
            let mut start = probe_done;
            for &page in &tier2_fetches {
                self.trace.emit(now, TraceEvent::Tier2Hit { page: page.0 });
                start = start.max(self.table.get(page).ready_at);
                self.tier2.remove(page);
            }
            let batch = TransferBatch {
                pages: tier2_fetches.len(),
                page_bytes: self.page_bytes(),
                threads: 32,
            };
            let done = self.to_gpu.transfer(start, batch, self.config.gmt.transfer);
            for &page in &tier2_fetches {
                self.install(t, page);
                self.on_refill(now, page);
                if self.trace.is_enabled() {
                    self.trace.emit(
                        now,
                        TraceEvent::Tier1Fill {
                            page: page.0,
                            source: TierTag::Host,
                            ready_ns: done.as_nanos(),
                        },
                    );
                }
                let meta = self.table.get_mut(page);
                meta.tier = Tier::Gpu;
                meta.ready_at = done;
                meta.touches_since_load = 1;
            }
            ready = ready.max(done);
        }

        for &page in &ssd_fetches {
            self.tenants[t].metrics.wasteful_lookups += 1;
            self.tenants[t].metrics.ssd_reads += 1;
            self.trace
                .emit(now, TraceEvent::WastefulLookup { page: page.0 });
            let offset = self.ssd_offset(page);
            let bytes = self.page_bytes();
            let done = self.ssd.read(probe_done, offset, bytes);
            self.install(t, page);
            self.on_refill(now, page);
            if self.trace.is_enabled() {
                self.trace.emit(
                    now,
                    TraceEvent::Tier1Fill {
                        page: page.0,
                        source: TierTag::Ssd,
                        ready_ns: done.as_nanos(),
                    },
                );
            }
            let meta = self.table.get_mut(page);
            meta.tier = Tier::Gpu;
            meta.ready_at = done;
            meta.touches_since_load = 1;
            ready = ready.max(done);
        }

        if access.write {
            for page in access.pages.iter() {
                self.table.get_mut(page).dirty = true;
            }
        }
        self.trace.set_tenant(None);
        tier2_fetches.clear();
        ssd_fetches.clear();
        self.scratch_tier2 = tier2_fetches;
        self.scratch_ssd = ssd_fetches;
        ready
    }

    fn finish(&mut self, now: Time) -> Time {
        self.ssd.flush_trace(now);
        now
    }
}
