//! Multi-tenant serving sweep: tenant count × Tier-1 partitioning.
//!
//! Two experiments, both fully deterministic (seeded workloads, seeded
//! arrivals):
//!
//! 1. **Isolation**: a cache-friendly Zipf tenant runs solo, then
//!    paired with an antagonistic sequential-scan tenant under each
//!    partitioning policy. Strict quotas and QoS floors must keep the
//!    Zipf tenant's Tier-1 hit rate within 10 % of its solo run; the
//!    fully-shared baseline shows the interference they prevent.
//! 2. **Scaling**: 1/2/4/8 Zipf tenants × every policy, reporting each
//!    tenant's hit rate, p50/p99 miss-service latency and the Jain
//!    fairness index.
//!
//! Usage: `serve_bench [--quick]` (`--quick` shrinks the sweep for CI).

use gmt_core::GmtConfig;
use gmt_gpu::ExecutorConfig;
use gmt_mem::TierGeometry;
use gmt_serve::{
    ArrivalSchedule, PartitionPolicy, ServeConfig, ServeOutcome, TenantRegistry, TenantSpec,
    TieredService,
};
use gmt_workloads::synthetic::{SequentialScan, ZipfLoop};
use gmt_workloads::WorkloadScale;

/// Tier-1 capacity the experiments contend for, in pages.
const TIER1_PAGES: usize = 256;
/// Trace ring large enough for the biggest run in the sweep.
const TRACE_CAPACITY: usize = 1 << 22;

fn geometry() -> TierGeometry {
    // Tier-2 2× Tier-1, address space 1536 pages — covers the scan
    // tenant's 1024-page stream plus every Zipf tenant's range.
    TierGeometry::from_tier1(TIER1_PAGES, 2.0, 2.0)
}

/// The protagonist: a skewed loop whose 192-page working set exactly
/// fits its strict quota (and fits Tier-1 solo with room to spare), so
/// any policy that shields it should serve it almost entirely from
/// Tier-1 once warm.
fn zipf_tenant(name: &str, accesses: usize, seed: u64) -> TenantSpec {
    TenantSpec {
        name: name.into(),
        workload: Box::new(ZipfLoop::new(
            &WorkloadScale::pages(192),
            1.0,
            0.05,
            accesses,
        )),
        arrival: ArrivalSchedule::Poisson { mean_gap_ns: 4_000 },
        quota_pages: 192,
        weight: 3,
        floor_pages: 184,
        seed,
    }
}

/// The antagonist: a 1024-page sequential scan with zero reuse,
/// arriving in dense bursts — the access pattern that flushes a shared
/// Tier-1.
fn scan_tenant(passes: usize, seed: u64) -> TenantSpec {
    TenantSpec {
        name: "scan".into(),
        workload: Box::new(SequentialScan::new(&WorkloadScale::pages(1_024), passes)),
        arrival: ArrivalSchedule::Bursty {
            burst: 64,
            gap_ns: 100,
            idle_ns: 5_000,
        },
        quota_pages: 64,
        weight: 1,
        floor_pages: 16,
        seed,
    }
}

fn run(policy: PartitionPolicy, specs: Vec<TenantSpec>) -> ServeOutcome {
    let mut registry = TenantRegistry::new(TIER1_PAGES, policy);
    for spec in specs {
        registry.admit(spec).expect("bench tenants always fit");
    }
    let config = ServeConfig {
        gmt: GmtConfig::new(geometry()),
        partition: policy,
    };
    let service = TieredService::new(&config, registry).expect("bench config is valid");
    service.serve(ExecutorConfig::default(), TRACE_CAPACITY)
}

fn isolation_experiment(zipf_accesses: usize, scan_passes: usize) {
    println!("== isolation: zipf tenant vs. sequential-scan antagonist ==");
    let solo = run(
        PartitionPolicy::FullyShared,
        vec![zipf_tenant("zipf", zipf_accesses, 11)],
    );
    let solo_rate = solo.report.tenant("zipf").expect("zipf ran").t1_hit_rate;
    println!(
        "solo zipf (whole tier-1 to itself): hit rate {:.2}%",
        100.0 * solo_rate
    );

    let mut shielded_ok = true;
    let mut drops = Vec::new();
    for policy in PartitionPolicy::ALL {
        let out = run(
            policy,
            vec![
                zipf_tenant("zipf", zipf_accesses, 11),
                scan_tenant(scan_passes, 23),
            ],
        );
        let zipf = out.report.tenant("zipf").expect("zipf ran");
        let drop = solo_rate - zipf.t1_hit_rate;
        println!(
            "\n[{policy}] elapsed {:.2} ms, jain {:.4}, zipf hit-rate drop vs solo {:+.2} pp",
            out.elapsed.as_nanos() as f64 / 1e6,
            out.report.jain_hit_rate,
            100.0 * drop
        );
        println!("{}", out.report);
        drops.push((policy, drop));
        let shielded = matches!(
            policy,
            PartitionPolicy::StrictQuota | PartitionPolicy::SharedQos
        );
        if shielded && drop > 0.10 * solo_rate {
            shielded_ok = false;
            eprintln!(
                "FAIL: {policy} let the scan degrade zipf by {:.2}% (> 10% of solo)",
                100.0 * drop / solo_rate
            );
        }
    }
    let drop_of = |policy: PartitionPolicy| {
        drops
            .iter()
            .find(|(p, _)| *p == policy)
            .map(|(_, d)| *d)
            .unwrap()
    };
    let strict_drop = drop_of(PartitionPolicy::StrictQuota);
    let qos_drop = drop_of(PartitionPolicy::SharedQos);
    let shared_drop = drop_of(PartitionPolicy::FullyShared);
    println!(
        "\nfully-shared interference {:.2} pp vs strict-quota {:.2} pp, shared-qos {:.2} pp",
        100.0 * shared_drop,
        100.0 * strict_drop,
        100.0 * qos_drop
    );
    assert!(shielded_ok, "isolation acceptance failed");
    assert!(
        shared_drop > strict_drop && shared_drop > 1.5 * qos_drop && shared_drop > 0.03,
        "fully-shared should show marked interference the shielded policies prevent \
         (shared {shared_drop:.4}, strict {strict_drop:.4}, qos {qos_drop:.4})"
    );
}

fn scaling_experiment(counts: &[usize], accesses: usize) {
    println!("\n== scaling: tenant count x partitioning policy ==");
    for &n in counts {
        for policy in PartitionPolicy::ALL {
            let specs: Vec<TenantSpec> = (0..n)
                .map(|i| {
                    let mut spec = zipf_tenant(&format!("zipf{i}"), accesses, 100 + i as u64);
                    // Divide the asks evenly so any count fits.
                    spec.quota_pages = TIER1_PAGES / n;
                    spec.floor_pages = TIER1_PAGES / (2 * n);
                    spec.weight = 1;
                    spec
                })
                .collect();
            let out = run(policy, specs);
            println!(
                "\n[{n} tenants, {policy}] elapsed {:.2} ms, accesses {}",
                out.elapsed.as_nanos() as f64 / 1e6,
                out.accesses
            );
            println!("{}", out.report);
        }
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // The scan's arrival stream is paced to span the Zipf tenant's whole
    // window, so a shared clock feels its pressure end to end.
    let (zipf_accesses, scan_passes) = if quick { (4_000, 88) } else { (12_000, 264) };
    isolation_experiment(zipf_accesses, scan_passes);
    if quick {
        scaling_experiment(&[1, 4], 1_500);
    } else {
        scaling_experiment(&[1, 2, 4, 8], 3_000);
    }
    println!("\nserve_bench: all acceptance checks passed");
}
