//! Per-tenant serving reports distilled from the stamped trace.

use std::fmt;

use gmt_analysis::tracesum::{jain_fairness, tenant_summaries, TenantTraceSummary};
use gmt_core::TieringMetrics;
use gmt_sim::trace::TraceRecord;

use crate::PartitionPolicy;

/// One tenant's view of a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// The tenant's dense id.
    pub tenant: u32,
    /// The tenant's name, from its [`crate::TenantSpec`].
    pub name: String,
    /// Warp accesses the tenant issued.
    pub accesses: u64,
    /// Coalesced page touches hitting Tier-1.
    pub t1_hits: u64,
    /// Coalesced page touches missing Tier-1.
    pub t1_misses: u64,
    /// Tier-1 hit rate over the tenant's own touches (0.0 if none).
    pub t1_hit_rate: f64,
    /// Median miss-service latency, ns (`None` if every touch hit).
    pub p50_miss_service_ns: Option<u64>,
    /// Tail (p99) miss-service latency, ns.
    pub p99_miss_service_ns: Option<u64>,
}

/// The whole run: every tenant plus the cross-tenant fairness index.
///
/// # Examples
///
/// ```
/// use gmt_serve::{PartitionPolicy, ServeReport};
///
/// let report = ServeReport::from_trace(
///     PartitionPolicy::FullyShared,
///     &["only".to_string()],
///     &[],
///     &[Default::default()],
/// );
/// assert_eq!(report.tenants.len(), 1);
/// assert_eq!(report.tenants[0].t1_hit_rate, 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// The Tier-1 partitioning the run used.
    pub policy: PartitionPolicy,
    /// One report per tenant, in tenant-id order.
    pub tenants: Vec<TenantReport>,
    /// Jain fairness index over the tenants' Tier-1 hit rates
    /// (1.0 = perfectly even, toward `1/n` = one tenant dominates).
    pub jain_hit_rate: f64,
}

impl ServeReport {
    /// Distills per-tenant results from a tenant-stamped trace and the
    /// per-tenant counters. Tenants that emitted no trace records still
    /// get a (zeroed) row, so the report always covers `names`.
    pub fn from_trace(
        policy: PartitionPolicy,
        names: &[String],
        records: &[TraceRecord],
        per_tenant: &[TieringMetrics],
    ) -> ServeReport {
        ServeReport::from_summaries(policy, names, &tenant_summaries(records), per_tenant)
    }

    /// Like [`ServeReport::from_trace`], but from already-distilled
    /// summaries — lets callers fold records straight out of a trace
    /// ring (`TenantSummaryBuilder`) without materializing the trace.
    pub fn from_summaries(
        policy: PartitionPolicy,
        names: &[String],
        summaries: &[TenantTraceSummary],
        per_tenant: &[TieringMetrics],
    ) -> ServeReport {
        assert_eq!(
            names.len(),
            per_tenant.len(),
            "one metrics entry per tenant name"
        );
        let tenants: Vec<TenantReport> = names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let summary = summaries.iter().find(|s| s.tenant == i as u32);
                let metrics = &per_tenant[i];
                let touches = metrics.t1_hits + metrics.t1_misses;
                TenantReport {
                    tenant: i as u32,
                    name: name.clone(),
                    accesses: metrics.accesses,
                    t1_hits: metrics.t1_hits,
                    t1_misses: metrics.t1_misses,
                    t1_hit_rate: if touches == 0 {
                        0.0
                    } else {
                        metrics.t1_hits as f64 / touches as f64
                    },
                    p50_miss_service_ns: summary.and_then(|s| s.miss_service_percentile(50.0)),
                    p99_miss_service_ns: summary.and_then(|s| s.miss_service_percentile(99.0)),
                }
            })
            .collect();
        let rates: Vec<f64> = tenants.iter().map(|t| t.t1_hit_rate).collect();
        ServeReport {
            policy,
            tenants,
            jain_hit_rate: jain_fairness(&rates),
        }
    }

    /// The report row for the named tenant, if present.
    pub fn tenant(&self, name: &str) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.name == name)
    }
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "  {:<12} {:>9} {:>9} {:>9} {:>8} {:>12} {:>12}",
            "tenant", "accesses", "t1_hits", "t1_miss", "hit%", "p50_miss_ns", "p99_miss_ns"
        )?;
        for t in &self.tenants {
            writeln!(
                f,
                "  {:<12} {:>9} {:>9} {:>9} {:>7.2}% {:>12} {:>12}",
                t.name,
                t.accesses,
                t.t1_hits,
                t.t1_misses,
                100.0 * t.t1_hit_rate,
                t.p50_miss_service_ns
                    .map_or_else(|| "-".to_string(), |v| v.to_string()),
                t.p99_miss_service_ns
                    .map_or_else(|| "-".to_string(), |v| v.to_string()),
            )?;
        }
        write!(
            f,
            "  jain(hit-rate) = {:.4}  [{}]",
            self.jain_hit_rate, self.policy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(hits: u64, misses: u64) -> TieringMetrics {
        TieringMetrics {
            accesses: hits + misses,
            t1_hits: hits,
            t1_misses: misses,
            ..Default::default()
        }
    }

    #[test]
    fn silent_tenants_still_get_rows() {
        let names = vec!["loud".to_string(), "silent".to_string()];
        let report = ServeReport::from_trace(
            PartitionPolicy::StrictQuota,
            &names,
            &[],
            &[metrics(9, 1), metrics(0, 0)],
        );
        assert_eq!(report.tenants.len(), 2);
        assert!((report.tenants[0].t1_hit_rate - 0.9).abs() < 1e-12);
        assert_eq!(report.tenants[1].t1_hit_rate, 0.0);
        assert_eq!(report.tenants[1].p50_miss_service_ns, None);
    }

    #[test]
    fn lookup_by_name() {
        let names = vec!["a".to_string(), "b".to_string()];
        let report = ServeReport::from_trace(
            PartitionPolicy::FullyShared,
            &names,
            &[],
            &[metrics(1, 0), metrics(0, 1)],
        );
        assert_eq!(report.tenant("b").unwrap().tenant, 1);
        assert!(report.tenant("c").is_none());
    }

    #[test]
    fn even_rates_are_perfectly_fair() {
        let names = vec!["a".to_string(), "b".to_string()];
        let report = ServeReport::from_trace(
            PartitionPolicy::SharedQos,
            &names,
            &[],
            &[metrics(5, 5), metrics(50, 50)],
        );
        assert!((report.jain_hit_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_renders_a_table() {
        let names = vec!["zipf".to_string()];
        let report = ServeReport::from_trace(
            PartitionPolicy::WeightedShares,
            &names,
            &[],
            &[metrics(3, 1)],
        );
        let text = report.to_string();
        assert!(text.contains("zipf"));
        assert!(text.contains("75.00%"));
        assert!(text.contains("jain(hit-rate)"));
        assert!(text.contains("weighted-shares"));
    }
}
