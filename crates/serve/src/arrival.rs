//! Deterministic open-arrival load generation.

use gmt_sim::{Dur, Time};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// When a tenant's successive warp accesses *arrive* at the hierarchy.
///
/// A closed-loop replay (the figure binaries' mode) issues the next
/// access the instant a warp frees up; a serving system instead sees an
/// open stream whose arrival process is a property of the tenant, not
/// of the hierarchy's speed. All three processes are deterministic
/// given `(schedule, seed)`, so paired runs across partitioning
/// policies see identical offered load.
///
/// # Examples
///
/// ```
/// use gmt_serve::ArrivalSchedule;
///
/// let uniform = ArrivalSchedule::Uniform { gap_ns: 500 };
/// let times = uniform.times(3, 7);
/// assert_eq!(
///     times.iter().map(|t| t.as_nanos()).collect::<Vec<_>>(),
///     vec![0, 500, 1_000],
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalSchedule {
    /// One access every `gap_ns` nanoseconds, starting at zero.
    Uniform {
        /// Fixed inter-arrival gap in nanoseconds.
        gap_ns: u64,
    },
    /// Poisson process: exponentially distributed gaps with the given
    /// mean, drawn from a seeded stream.
    Poisson {
        /// Mean inter-arrival gap in nanoseconds.
        mean_gap_ns: u64,
    },
    /// On/off bursts: `burst` back-to-back accesses `gap_ns` apart,
    /// then an idle stretch of `idle_ns` before the next burst.
    Bursty {
        /// Accesses per burst.
        burst: usize,
        /// Gap between accesses inside a burst, nanoseconds.
        gap_ns: u64,
        /// Idle time between bursts, nanoseconds.
        idle_ns: u64,
    },
}

impl ArrivalSchedule {
    /// The arrival time of each of `n` accesses, non-decreasing,
    /// starting at time zero. Identical for identical `(self, seed)`.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate schedule (`Bursty` with a zero-access
    /// burst).
    pub fn times(&self, n: usize, seed: u64) -> Vec<Time> {
        let mut out = Vec::with_capacity(n);
        match *self {
            ArrivalSchedule::Uniform { gap_ns } => {
                for i in 0..n as u64 {
                    out.push(Time::ZERO + Dur::from_nanos(i * gap_ns));
                }
            }
            ArrivalSchedule::Poisson { mean_gap_ns } => {
                let mut rng = gmt_sim::rng::seeded(seed);
                let mut at = Time::ZERO;
                for _ in 0..n {
                    out.push(at);
                    // Inverse-CDF exponential draw; the uniform sample is
                    // nudged off 0 so ln stays finite.
                    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                    let gap = (-u.ln() * mean_gap_ns as f64).round() as u64;
                    at += Dur::from_nanos(gap);
                }
            }
            ArrivalSchedule::Bursty {
                burst,
                gap_ns,
                idle_ns,
            } => {
                assert!(burst > 0, "a burst must hold at least one access");
                let mut at = Time::ZERO;
                let mut in_burst = 0usize;
                for _ in 0..n {
                    out.push(at);
                    in_burst += 1;
                    if in_burst == burst {
                        in_burst = 0;
                        at += Dur::from_nanos(idle_ns);
                    } else {
                        at += Dur::from_nanos(gap_ns);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nanos(times: &[Time]) -> Vec<u64> {
        times.iter().map(|t| t.as_nanos()).collect()
    }

    #[test]
    fn uniform_is_an_arithmetic_sequence() {
        let s = ArrivalSchedule::Uniform { gap_ns: 100 };
        assert_eq!(nanos(&s.times(4, 0)), vec![0, 100, 200, 300]);
    }

    #[test]
    fn poisson_is_deterministic_per_seed_and_roughly_calibrated() {
        let s = ArrivalSchedule::Poisson { mean_gap_ns: 1_000 };
        let a = s.times(2_000, 42);
        assert_eq!(a, s.times(2_000, 42), "same seed, same schedule");
        assert_ne!(a, s.times(2_000, 43), "different seed, different draws");
        for pair in a.windows(2) {
            assert!(pair[0] <= pair[1], "arrivals must be non-decreasing");
        }
        // Mean gap within 10% of nominal over 2k draws.
        let span = a.last().unwrap().as_nanos() as f64;
        let mean = span / (a.len() - 1) as f64;
        assert!((mean - 1_000.0).abs() < 100.0, "observed mean gap {mean}");
    }

    #[test]
    fn bursty_alternates_gaps_and_idles() {
        let s = ArrivalSchedule::Bursty {
            burst: 2,
            gap_ns: 10,
            idle_ns: 1_000,
        };
        assert_eq!(nanos(&s.times(5, 0)), vec![0, 10, 1_010, 1_020, 2_020]);
    }

    #[test]
    fn zero_accesses_is_empty() {
        let s = ArrivalSchedule::Uniform { gap_ns: 1 };
        assert!(s.times(0, 0).is_empty());
    }
}
