//! Tenant identity, specification and admission control.

use std::fmt;

use gmt_workloads::Workload;

use crate::{ArrivalSchedule, PartitionPolicy};

/// Identifies an admitted tenant (dense, in admission order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The id as a vector index.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// Everything a tenant brings to admission: its workload, its arrival
/// process, and its resource asks.
///
/// Which ask matters depends on the registry's [`PartitionPolicy`]:
/// `quota_pages` sizes the private slice under
/// [`PartitionPolicy::StrictQuota`], `weight` steers victim selection
/// under [`PartitionPolicy::WeightedShares`], and `floor_pages` is the
/// eviction-exempt reservation under [`PartitionPolicy::SharedQos`].
/// Unused asks are simply ignored, so one spec can be replayed across
/// all four policies for paired comparisons.
pub struct TenantSpec {
    /// Human-readable name for reports.
    pub name: String,
    /// The tenant's workload (page stream in the tenant's own
    /// `0..total_pages` namespace; the service relocates it).
    pub workload: Box<dyn Workload>,
    /// When successive accesses arrive.
    pub arrival: ArrivalSchedule,
    /// Private Tier-1 slice, pages (strict quota).
    pub quota_pages: usize,
    /// Relative share of Tier-1 under contention (weighted shares).
    pub weight: u32,
    /// Eviction-exempt Tier-1 reservation, pages (shared QoS).
    pub floor_pages: usize,
    /// Seeds this tenant's trace and arrival draws.
    pub seed: u64,
}

impl fmt::Debug for TenantSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TenantSpec")
            .field("name", &self.name)
            .field("workload", &self.workload.name())
            .field("arrival", &self.arrival)
            .field("quota_pages", &self.quota_pages)
            .field("weight", &self.weight)
            .field("floor_pages", &self.floor_pages)
            .field("seed", &self.seed)
            .finish()
    }
}

/// Why a tenant was refused admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The tenant's weight is zero — it could never win capacity.
    ZeroWeight {
        /// The refused tenant's name.
        tenant: String,
    },
    /// A strict-quota tenant asked for an empty slice.
    ZeroQuota {
        /// The refused tenant's name.
        tenant: String,
    },
    /// Admitting the tenant would oversubscribe strict quotas.
    QuotaOverflow {
        /// The refused tenant's name.
        tenant: String,
        /// Pages the tenant asked for.
        requested: usize,
        /// Pages still unclaimed.
        available: usize,
    },
    /// Admitting the tenant's floor would leave no evictable Tier-1
    /// page (QoS eviction requires `Σ floors < tier1_pages`).
    FloorOverflow {
        /// The refused tenant's name.
        tenant: String,
        /// Floor pages the tenant asked for.
        requested: usize,
        /// Floor pages still grantable.
        available: usize,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::ZeroWeight { tenant } => {
                write!(f, "tenant {tenant:?} has zero weight")
            }
            AdmissionError::ZeroQuota { tenant } => {
                write!(f, "tenant {tenant:?} asked for a zero-page quota")
            }
            AdmissionError::QuotaOverflow {
                tenant,
                requested,
                available,
            } => write!(
                f,
                "tenant {tenant:?} asked for {requested} quota pages but only {available} remain"
            ),
            AdmissionError::FloorOverflow {
                tenant,
                requested,
                available,
            } => write!(
                f,
                "tenant {tenant:?} asked for a {requested}-page floor but only {available} \
                 are grantable (floors must sum below tier-1)"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Admission control: validates each [`TenantSpec`] against the
/// policy's capacity constraints *before* the service is built, and
/// assigns each admitted tenant a disjoint range of the global page
/// namespace.
///
/// # Examples
///
/// ```
/// use gmt_serve::{ArrivalSchedule, PartitionPolicy, TenantRegistry, TenantSpec};
/// use gmt_workloads::synthetic::ZipfLoop;
/// use gmt_workloads::WorkloadScale;
///
/// let mut registry = TenantRegistry::new(256, PartitionPolicy::StrictQuota);
/// let id = registry
///     .admit(TenantSpec {
///         name: "zipf".into(),
///         workload: Box::new(ZipfLoop::new(&WorkloadScale::tiny(), 1.1, 0.1, 1_000)),
///         arrival: ArrivalSchedule::Uniform { gap_ns: 200 },
///         quota_pages: 128,
///         weight: 1,
///         floor_pages: 0,
///         seed: 7,
///     })
///     .expect("fits");
/// assert_eq!(id.index(), 0);
/// assert_eq!(registry.len(), 1);
/// ```
#[derive(Debug)]
pub struct TenantRegistry {
    tier1_pages: usize,
    policy: PartitionPolicy,
    specs: Vec<TenantSpec>,
    /// First global page of each tenant's range, ascending.
    bases: Vec<u64>,
    /// One past the last allocated global page.
    next_base: u64,
}

impl TenantRegistry {
    /// An empty registry partitioning `tier1_pages` under `policy`.
    pub fn new(tier1_pages: usize, policy: PartitionPolicy) -> TenantRegistry {
        TenantRegistry {
            tier1_pages,
            policy,
            specs: Vec::new(),
            bases: Vec::new(),
            next_base: 0,
        }
    }

    /// Admits `spec`, or explains why its asks are unsatisfiable.
    ///
    /// Checks are policy-aware: quotas are only accounted under
    /// [`PartitionPolicy::StrictQuota`], floors only under
    /// [`PartitionPolicy::SharedQos`]. Weights must always be positive
    /// (reports divide by them).
    ///
    /// # Errors
    ///
    /// Returns the violated constraint as an [`AdmissionError`].
    pub fn admit(&mut self, spec: TenantSpec) -> Result<TenantId, AdmissionError> {
        if spec.weight == 0 {
            return Err(AdmissionError::ZeroWeight { tenant: spec.name });
        }
        if self.policy == PartitionPolicy::StrictQuota {
            if spec.quota_pages == 0 {
                return Err(AdmissionError::ZeroQuota { tenant: spec.name });
            }
            let claimed: usize = self.specs.iter().map(|s| s.quota_pages).sum();
            let available = self.tier1_pages - claimed;
            if spec.quota_pages > available {
                return Err(AdmissionError::QuotaOverflow {
                    tenant: spec.name,
                    requested: spec.quota_pages,
                    available,
                });
            }
        }
        if self.policy == PartitionPolicy::SharedQos {
            let reserved: usize = self.specs.iter().map(|s| s.floor_pages).sum();
            // Strictly below capacity: a full Tier-1 must always hold at
            // least one page owned by an above-floor tenant, or QoS
            // eviction could not terminate.
            let available = (self.tier1_pages - reserved).saturating_sub(1);
            if spec.floor_pages > available {
                return Err(AdmissionError::FloorOverflow {
                    tenant: spec.name,
                    requested: spec.floor_pages,
                    available,
                });
            }
        }
        let id = TenantId(self.specs.len() as u32);
        self.bases.push(self.next_base);
        self.next_base += spec.workload.total_pages() as u64;
        self.specs.push(spec);
        Ok(id)
    }

    /// Number of admitted tenants.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether no tenant has been admitted.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The policy tenants were admitted under.
    pub fn policy(&self) -> PartitionPolicy {
        self.policy
    }

    /// Tier-1 capacity the registry partitions, in pages.
    pub fn tier1_pages(&self) -> usize {
        self.tier1_pages
    }

    /// The admitted specs, in admission order.
    pub fn specs(&self) -> &[TenantSpec] {
        &self.specs
    }

    /// First global page of each tenant's range, in admission order.
    pub fn bases(&self) -> &[u64] {
        &self.bases
    }

    /// Total global pages across every tenant's range.
    pub fn total_pages(&self) -> usize {
        self.next_base as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmt_workloads::synthetic::SequentialScan;
    use gmt_workloads::WorkloadScale;

    fn spec(name: &str, quota: usize, weight: u32, floor: usize) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            workload: Box::new(SequentialScan::new(&WorkloadScale::tiny(), 1)),
            arrival: ArrivalSchedule::Uniform { gap_ns: 100 },
            quota_pages: quota,
            weight,
            floor_pages: floor,
            seed: 1,
        }
    }

    #[test]
    fn strict_quotas_must_fit() {
        let mut r = TenantRegistry::new(100, PartitionPolicy::StrictQuota);
        r.admit(spec("a", 60, 1, 0)).expect("fits");
        let err = r.admit(spec("b", 50, 1, 0)).unwrap_err();
        assert_eq!(
            err,
            AdmissionError::QuotaOverflow {
                tenant: "b".into(),
                requested: 50,
                available: 40,
            }
        );
        r.admit(spec("c", 40, 1, 0)).expect("exactly fills");
    }

    #[test]
    fn zero_asks_are_rejected() {
        let mut r = TenantRegistry::new(100, PartitionPolicy::StrictQuota);
        assert!(matches!(
            r.admit(spec("z", 0, 1, 0)),
            Err(AdmissionError::ZeroQuota { .. })
        ));
        assert!(matches!(
            r.admit(spec("w", 10, 0, 0)),
            Err(AdmissionError::ZeroWeight { .. })
        ));
    }

    #[test]
    fn qos_floors_must_sum_strictly_below_tier1() {
        let mut r = TenantRegistry::new(100, PartitionPolicy::SharedQos);
        r.admit(spec("a", 0, 1, 60)).expect("fits");
        assert!(matches!(
            r.admit(spec("b", 0, 1, 40)),
            Err(AdmissionError::FloorOverflow { available: 39, .. })
        ));
        r.admit(spec("c", 0, 1, 39)).expect("leaves one evictable");
    }

    #[test]
    fn quota_checks_do_not_apply_to_shared_policies() {
        let mut r = TenantRegistry::new(10, PartitionPolicy::FullyShared);
        // Quota far beyond tier-1: irrelevant under a shared clock.
        r.admit(spec("big", 1_000, 1, 0)).expect("admitted");
    }

    #[test]
    fn tenants_get_disjoint_ascending_ranges() {
        let mut r = TenantRegistry::new(100, PartitionPolicy::FullyShared);
        let span = SequentialScan::new(&WorkloadScale::tiny(), 1).total_pages() as u64;
        r.admit(spec("a", 1, 1, 0)).unwrap();
        r.admit(spec("b", 1, 1, 0)).unwrap();
        assert_eq!(r.bases(), &[0, span]);
        assert_eq!(r.total_pages() as u64, 2 * span);
    }

    #[test]
    fn admission_errors_render_readable_messages() {
        let err = AdmissionError::QuotaOverflow {
            tenant: "scan".into(),
            requested: 64,
            available: 8,
        };
        assert_eq!(
            err.to_string(),
            "tenant \"scan\" asked for 64 quota pages but only 8 remain"
        );
    }
}
