//! Multi-tenant serving on one GMT hierarchy.
//!
//! The paper evaluates GMT one application at a time; a serving
//! deployment instead multiplexes *N* tenant workload streams over a
//! single tiered hierarchy, and the interesting questions become
//! distributional: who gets the scarce Tier-1, whose misses queue
//! behind whose SSD reads, and how badly can one tenant's scan degrade
//! another tenant's working set. This crate builds that layer out of
//! the existing substrate:
//!
//! * [`TenantRegistry`] — admission control: each [`TenantSpec`] asks
//!   for a share of Tier-1 (plus an optional protected floor), and
//!   admission fails up front when the asks are unsatisfiable under
//!   the chosen [`PartitionPolicy`].
//! * [`PartitionPolicy`] — how Tier-1 is split: strict per-tenant
//!   quotas, weighted work-conserving shares, fully shared with
//!   QoS-protected floors, or fully shared free-for-all.
//! * [`ArrivalSchedule`] — deterministic seeded open-arrival load
//!   generation (uniform, Poisson, bursty) per tenant; schedules are
//!   merged into one interleaved stream and replayed through
//!   [`gmt_gpu::Executor::run_arrivals`].
//! * [`TieredService`] — the shared hierarchy itself: per-tenant
//!   Tier-1 organization, one shared Tier-2, one shared SSD array and
//!   PCIe links (contention is shared even when capacity is not), and
//!   *per-tenant* reuse machinery so one tenant's access pattern never
//!   poisons another's predictions.
//! * [`ServeReport`] — per-tenant hit rates, miss-service latency
//!   percentiles and the Jain fairness index, straight from the
//!   tenant-stamped trace stream.
//!
//! The `serve_bench` binary sweeps tenant count × partitioning policy
//! and demonstrates the isolation story: under [`PartitionPolicy::StrictQuota`]
//! or QoS floors, a sequential-scan tenant cannot collapse a Zipf
//! tenant's Tier-1 hit rate, while [`PartitionPolicy::FullyShared`]
//! shows the interference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrival;
mod partition;
mod report;
mod runtime;
mod tenant;

pub use arrival::ArrivalSchedule;
pub use partition::PartitionPolicy;
pub use report::{ServeReport, TenantReport};
pub use runtime::{ServeConfig, ServeOutcome, TieredService};
pub use tenant::{AdmissionError, TenantId, TenantRegistry, TenantSpec};
