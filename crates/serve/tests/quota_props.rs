//! Property tests for the partitioning guarantees: strict quotas are
//! never exceeded, and no tenant is ever evicted below its QoS floor by
//! another tenant's fault.

use gmt_core::GmtConfig;
use gmt_gpu::MemoryBackend;
use gmt_mem::{PageId, TierGeometry, WarpAccess};
use gmt_serve::{
    ArrivalSchedule, PartitionPolicy, ServeConfig, TenantId, TenantRegistry, TenantSpec,
    TieredService,
};
use gmt_sim::{Dur, Time};
use gmt_workloads::synthetic::SequentialScan;
use gmt_workloads::WorkloadScale;
use proptest::prelude::*;

const TIER1: usize = 48;
const TENANTS: usize = 3;
/// Every tenant's range is one `tiny()` scan: 128 pages.
const SPAN: u64 = 128;

fn build(policy: PartitionPolicy) -> TieredService {
    let mut registry = TenantRegistry::new(TIER1, policy);
    let quotas = [16usize, 16, 16];
    let floors = [12usize, 8, 4];
    for i in 0..TENANTS {
        registry
            .admit(TenantSpec {
                name: format!("t{i}"),
                workload: Box::new(SequentialScan::new(&WorkloadScale::tiny(), 1)),
                arrival: ArrivalSchedule::Uniform { gap_ns: 100 },
                quota_pages: quotas[i],
                weight: (i + 1) as u32,
                floor_pages: floors[i],
                seed: i as u64,
            })
            .expect("property tenants always fit");
    }
    let config = ServeConfig {
        gmt: GmtConfig::new(TierGeometry::from_tier1(TIER1, 2.0, 3.0)),
        partition: policy,
    };
    TieredService::new(&config, registry).expect("valid config")
}

fn page(tenant: usize, offset: u64) -> PageId {
    PageId(tenant as u64 * SPAN + offset)
}

fn residents(service: &TieredService) -> Vec<usize> {
    (0..TENANTS)
        .map(|i| service.tenant_t1_resident(TenantId(i as u32)))
        .collect()
}

proptest! {
    // Satellite guarantee: under strict quotas a tenant can never hold
    // more Tier-1 pages than its slice, and one tenant faulting never
    // changes another tenant's residency at all.
    #[test]
    fn strict_quota_bounds_and_isolates(
        seq in proptest::collection::vec((0usize..TENANTS, 0u64..SPAN), 1..300),
    ) {
        let mut service = build(PartitionPolicy::StrictQuota);
        let mut now = Time::ZERO;
        for (t, offset) in seq {
            let before = residents(&service);
            service.access(now, &WarpAccess::read(page(t, offset)));
            now += Dur::from_nanos(150);
            for (i, &held_before) in before.iter().enumerate() {
                let after = service.tenant_t1_resident(TenantId(i as u32));
                prop_assert!(
                    after <= service.tenant_budget(TenantId(i as u32)),
                    "tenant {i} at {after} pages exceeds its quota"
                );
                if i != t {
                    prop_assert_eq!(
                        after, held_before,
                        "tenant {}'s residency moved on tenant {}'s fault", i, t
                    );
                }
            }
        }
        prop_assert!(service.check_invariants().is_ok());
    }

    // The QoS guarantee (issue acceptance): while one tenant faults, no
    // *other* tenant's Tier-1 residency ever drops below its reserved
    // floor. (A tenant below its floor may grow; it must never be shrunk
    // further by someone else's eviction.)
    #[test]
    fn qos_floor_is_never_breached_by_another_tenants_fault(
        seq in proptest::collection::vec((0usize..TENANTS, 0u64..SPAN), 1..300),
    ) {
        let mut service = build(PartitionPolicy::SharedQos);
        let mut now = Time::ZERO;
        for (t, offset) in seq {
            let before = residents(&service);
            service.access(now, &WarpAccess::read(page(t, offset)));
            now += Dur::from_nanos(150);
            for (o, &held_before) in before.iter().enumerate() {
                if o == t {
                    continue;
                }
                let floor = service.tenant_floor(TenantId(o as u32));
                let after = service.tenant_t1_resident(TenantId(o as u32));
                prop_assert!(
                    after >= held_before.min(floor),
                    "tenant {o} shrunk from {held_before} to {after} (floor {floor}) \
                     while tenant {t} faulted"
                );
            }
        }
        prop_assert!(service.check_invariants().is_ok());
    }

    // Shared policies must still respect physics: Tier-1 never holds
    // more pages than it has slots, whoever they belong to.
    #[test]
    fn shared_policies_never_oversubscribe_tier1(
        seq in proptest::collection::vec((0usize..TENANTS, 0u64..SPAN), 1..300),
    ) {
        for policy in [
            PartitionPolicy::WeightedShares,
            PartitionPolicy::SharedQos,
            PartitionPolicy::FullyShared,
        ] {
            let mut service = build(policy);
            let mut now = Time::ZERO;
            for &(t, offset) in &seq {
                service.access(now, &WarpAccess::read(page(t, offset)));
                now += Dur::from_nanos(150);
                let total: usize = residents(&service).iter().sum();
                prop_assert!(
                    total <= TIER1,
                    "{policy}: {total} resident pages in a {TIER1}-slot tier-1"
                );
            }
            prop_assert!(service.check_invariants().is_ok());
        }
    }
}
