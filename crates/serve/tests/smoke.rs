//! End-to-end smoke tests: every policy serves a small multi-tenant
//! mix to completion, determinism holds, and the per-tenant counters
//! decompose the aggregate exactly.

use gmt_core::{GmtConfig, TieringMetrics};
use gmt_gpu::ExecutorConfig;
use gmt_mem::TierGeometry;
use gmt_serve::{
    ArrivalSchedule, PartitionPolicy, ServeConfig, ServeOutcome, TenantRegistry, TenantSpec,
    TieredService,
};
use gmt_workloads::synthetic::{SequentialScan, ZipfLoop};
use gmt_workloads::WorkloadScale;

const TIER1: usize = 64;

fn mix(policy: PartitionPolicy) -> TenantRegistry {
    let mut registry = TenantRegistry::new(TIER1, policy);
    registry
        .admit(TenantSpec {
            name: "zipf".into(),
            workload: Box::new(ZipfLoop::new(&WorkloadScale::tiny(), 1.1, 0.2, 800)),
            arrival: ArrivalSchedule::Poisson { mean_gap_ns: 900 },
            quota_pages: 40,
            weight: 3,
            floor_pages: 24,
            seed: 5,
        })
        .expect("zipf admitted");
    registry
        .admit(TenantSpec {
            name: "scan".into(),
            workload: Box::new(SequentialScan::new(&WorkloadScale::pages(256), 2)),
            arrival: ArrivalSchedule::Bursty {
                burst: 16,
                gap_ns: 120,
                idle_ns: 4_000,
            },
            quota_pages: 24,
            weight: 1,
            floor_pages: 8,
            seed: 6,
        })
        .expect("scan admitted");
    registry
}

fn serve(policy: PartitionPolicy) -> ServeOutcome {
    let config = ServeConfig {
        gmt: GmtConfig::new(TierGeometry::from_tier1(TIER1, 4.0, 2.0)),
        partition: policy,
    };
    let service = TieredService::new(&config, mix(policy)).expect("valid config");
    service.serve(ExecutorConfig::default(), 1 << 18)
}

#[test]
fn every_policy_serves_the_mix_to_completion() {
    for policy in PartitionPolicy::ALL {
        let out = serve(policy);
        assert_eq!(out.accesses, 800 + 512, "{policy}: all accesses replayed");
        assert!(out.elapsed.as_nanos() > 0, "{policy}: time advanced");
        assert_eq!(out.report.tenants.len(), 2);
        let zipf = out.report.tenant("zipf").expect("zipf reported");
        assert!(
            zipf.t1_hit_rate > 0.0,
            "{policy}: a skewed loop must land some Tier-1 hits"
        );
        let scan = out.report.tenant("scan").expect("scan reported");
        assert!(
            scan.t1_misses > 0 && scan.p99_miss_service_ns.is_some(),
            "{policy}: a 4x-of-tier-1 scan must miss and report latency"
        );
        assert!(
            out.report.jain_hit_rate > 0.0 && out.report.jain_hit_rate <= 1.0 + 1e-12,
            "{policy}: jain index in range"
        );
    }
}

#[test]
fn per_tenant_metrics_sum_exactly_to_the_aggregate() {
    for policy in PartitionPolicy::ALL {
        let out = serve(policy);
        let mut summed = TieringMetrics::default();
        for m in &out.per_tenant {
            summed.merge(m);
        }
        assert_eq!(
            summed, out.aggregate,
            "{policy}: tenant counters must partition the hierarchy totals"
        );
        // And the decomposition is non-trivial: both tenants were charged.
        assert!(out.per_tenant.iter().all(|m| m.accesses > 0));
    }
}

#[test]
fn serving_is_deterministic() {
    for policy in [PartitionPolicy::StrictQuota, PartitionPolicy::FullyShared] {
        let a = serve(policy);
        let b = serve(policy);
        assert_eq!(a.report, b.report, "{policy}: same seed, same report");
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.per_tenant, b.per_tenant);
    }
}

#[test]
fn structural_invariants_hold_after_a_full_run() {
    use gmt_gpu::{Executor, MemoryBackend};

    for policy in PartitionPolicy::ALL {
        let config = ServeConfig {
            gmt: GmtConfig::new(TierGeometry::from_tier1(TIER1, 4.0, 2.0)),
            partition: policy,
        };
        let service = TieredService::new(&config, mix(policy)).expect("valid config");
        let schedule = service.offered_load();
        let out = Executor::new(ExecutorConfig::default()).run_arrivals(service, schedule);
        let mut service = out.backend;
        service.check_invariants().expect("invariants after run");
        let done = out.elapsed;
        service.finish(gmt_sim::Time::ZERO + done);
    }
}

#[test]
fn offered_load_is_sorted_and_covers_every_tenant() {
    let config = ServeConfig {
        gmt: GmtConfig::new(TierGeometry::from_tier1(TIER1, 4.0, 2.0)),
        partition: PartitionPolicy::FullyShared,
    };
    let service =
        TieredService::new(&config, mix(PartitionPolicy::FullyShared)).expect("valid config");
    let load = service.offered_load();
    assert_eq!(load.len(), 800 + 512);
    for pair in load.windows(2) {
        assert!(pair[0].0 <= pair[1].0, "arrivals sorted");
    }
    let tenants: std::collections::BTreeSet<u32> = load
        .iter()
        .map(|(_, a)| service.tenant_of(a.pages.first()).0)
        .collect();
    assert_eq!(tenants.into_iter().collect::<Vec<_>>(), vec![0, 1]);
}

#[test]
fn mismatched_registry_is_rejected() {
    let config = ServeConfig {
        gmt: GmtConfig::new(TierGeometry::from_tier1(TIER1, 4.0, 2.0)),
        partition: PartitionPolicy::StrictQuota,
    };
    let registry = mix(PartitionPolicy::FullyShared);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        TieredService::new(&config, registry)
    }));
    assert!(result.is_err(), "policy mismatch must panic loudly");
}

#[test]
fn degenerate_substrate_config_is_refused() {
    let mut gmt = GmtConfig::new(TierGeometry::from_tier1(TIER1, 4.0, 2.0));
    gmt.reuse.bypass_threshold = 7.0;
    let config = ServeConfig {
        gmt,
        partition: PartitionPolicy::FullyShared,
    };
    assert!(TieredService::new(&config, mix(PartitionPolicy::FullyShared)).is_err());
}
