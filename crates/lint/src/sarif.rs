//! SARIF 2.1.0 output for code-scanning upload.
//!
//! GitHub code scanning (and most SARIF viewers) ingest a single
//! `sarifLog` object with one run per tool. The renderer here emits the
//! minimal-but-valid subset: `tool.driver` with the full rule table, and
//! one `result` per surviving finding with a physical location. Like the
//! JSON renderer in [`crate::diag`], everything is emitted by hand — the
//! linter stays dependency-free.
//!
//! [`validate_sarif`] is a structural checker built on a tiny in-crate
//! JSON parser. It exists so CI can prove the emitted log is well-formed
//! SARIF 2.1.0 (version string, schema URI, driver name, and the shape of
//! every result) without shipping a schema validator.

use std::fmt::Write;

use crate::diag::{json_str, Level, Report};
use crate::rules::RULES;

/// The canonical SARIF 2.1.0 schema URI.
pub const SARIF_SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// SARIF `level` for a lint [`Level`].
fn sarif_level(level: Level) -> &'static str {
    match level {
        Level::Allow => "note",
        Level::Warn => "warning",
        Level::Deny => "error",
    }
}

/// Renders `report` as a complete SARIF 2.1.0 log with a single run.
///
/// File paths are emitted as workspace-relative URIs with `/` separators
/// so the log is stable across platforms.
pub fn render_sarif(report: &Report) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"$schema\":");
    out.push_str(&json_str(SARIF_SCHEMA));
    out.push_str(",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":");
    out.push_str("{\"name\":\"gmt-lint\",\"rules\":[");
    for (i, r) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":{},\"name\":{},\"shortDescription\":{{\"text\":{}}},\
             \"defaultConfiguration\":{{\"level\":{}}}}}",
            json_str(r.id),
            json_str(r.name),
            json_str(r.summary),
            json_str(sarif_level(r.default_level)),
        );
    }
    out.push_str("]}},\"results\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let uri: String = f
            .file
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let _ = write!(
            out,
            "{{\"ruleId\":{},\"level\":{},\"message\":{{\"text\":{}}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
             {{\"uri\":{}}},\"region\":{{\"startLine\":{},\"startColumn\":{},\
             \"endLine\":{},\"endColumn\":{}}}}}}}]}}",
            json_str(f.rule),
            json_str(sarif_level(f.level)),
            json_str(&f.message),
            json_str(&uri),
            f.line,
            f.col,
            f.end_line,
            f.end_col,
        );
    }
    out.push_str("]}]}");
    out
}

/// Checks that `text` is well-formed JSON shaped like a SARIF 2.1.0 log:
/// correct `version`, a schema URI, at least one run with a named driver,
/// and every result carrying a `ruleId`, a valid `level`, a non-empty
/// `message.text`, and a located region with positive line/column.
///
/// # Errors
///
/// Returns a human-readable description of the first structural problem.
pub fn validate_sarif(text: &str) -> Result<(), String> {
    let log = Json::parse(text)?;
    let obj = log.as_object().ok_or("top level is not an object")?;
    match get(obj, "version").and_then(Json::as_str) {
        Some("2.1.0") => {}
        Some(v) => return Err(format!("version is {v:?}, expected \"2.1.0\"")),
        None => return Err("missing string property `version`".into()),
    }
    let schema = get(obj, "$schema")
        .and_then(Json::as_str)
        .ok_or("missing string property `$schema`")?;
    if !schema.contains("sarif-2.1.0") {
        return Err(format!("$schema {schema:?} does not name sarif-2.1.0"));
    }
    let runs = get(obj, "runs")
        .and_then(Json::as_array)
        .ok_or("missing array property `runs`")?;
    if runs.is_empty() {
        return Err("`runs` is empty".into());
    }
    for (ri, run) in runs.iter().enumerate() {
        let run = run
            .as_object()
            .ok_or_else(|| format!("runs[{ri}] is not an object"))?;
        let driver = get(run, "tool")
            .and_then(Json::as_object)
            .and_then(|t| get(t, "driver"))
            .and_then(Json::as_object)
            .ok_or_else(|| format!("runs[{ri}] has no tool.driver object"))?;
        if get(driver, "name").and_then(Json::as_str).is_none() {
            return Err(format!("runs[{ri}].tool.driver has no string `name`"));
        }
        let results = get(run, "results")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("runs[{ri}] has no `results` array"))?;
        for (i, result) in results.iter().enumerate() {
            validate_result(result, ri, i)?;
        }
    }
    Ok(())
}

fn validate_result(result: &Json, ri: usize, i: usize) -> Result<(), String> {
    let at = |what: &str| format!("runs[{ri}].results[{i}]: {what}");
    let result = result.as_object().ok_or_else(|| at("not an object"))?;
    if get(result, "ruleId").and_then(Json::as_str).is_none() {
        return Err(at("missing string `ruleId`"));
    }
    match get(result, "level").and_then(Json::as_str) {
        Some("none" | "note" | "warning" | "error") => {}
        Some(l) => return Err(at(&format!("invalid level {l:?}"))),
        None => return Err(at("missing string `level`")),
    }
    let message = get(result, "message")
        .and_then(Json::as_object)
        .and_then(|m| get(m, "text"))
        .and_then(Json::as_str)
        .ok_or_else(|| at("missing message.text"))?;
    if message.is_empty() {
        return Err(at("message.text is empty"));
    }
    let locations = get(result, "locations")
        .and_then(Json::as_array)
        .ok_or_else(|| at("missing `locations` array"))?;
    for loc in locations {
        let physical = loc
            .as_object()
            .and_then(|l| get(l, "physicalLocation"))
            .and_then(Json::as_object)
            .ok_or_else(|| at("location has no physicalLocation"))?;
        let uri = get(physical, "artifactLocation")
            .and_then(Json::as_object)
            .and_then(|a| get(a, "uri"))
            .and_then(Json::as_str)
            .ok_or_else(|| at("physicalLocation has no artifactLocation.uri"))?;
        if uri.contains('\\') {
            return Err(at("artifact uri uses backslashes"));
        }
        if let Some(region) = get(physical, "region").and_then(Json::as_object) {
            for key in ["startLine", "startColumn", "endLine", "endColumn"] {
                if let Some(n) = get(region, key).and_then(Json::as_num) {
                    if n < 1.0 {
                        return Err(at(&format!("region.{key} must be >= 1")));
                    }
                }
            }
            let start = get(region, "startLine").and_then(Json::as_num);
            let end = get(region, "endLine").and_then(Json::as_num);
            if let (Some(s), Some(e)) = (start, end) {
                if e < s {
                    return Err(at("region.endLine precedes startLine"));
                }
            }
        }
    }
    Ok(())
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A parsed JSON value. Objects keep insertion order; numbers are `f64`
/// (sufficient for line/column checks).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Parses `text` as a single JSON document.
    fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {:?} at offset {pos}", *c as char)),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("malformed literal at offset {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("malformed number {text:?} at offset {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        // Surrogate pairs only appear for astral chars, which
                        // the renderer never escapes; replace, don't reject.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?} at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                let start = *pos;
                while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
            None => return Err("unterminated string".into()),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // past the [
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            other => return Err(format!("expected , or ] but found {other:?}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // past the {
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected : at offset {pos}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            other => return Err(format!("expected , or }} but found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Finding;
    use std::path::PathBuf;

    fn report() -> Report {
        Report {
            findings: vec![Finding {
                rule: "U1",
                level: Level::Deny,
                file: PathBuf::from("crates/sim/src/time.rs"),
                line: 12,
                col: 9,
                end_line: 12,
                end_col: 23,
                message: "mixed dimensions: ns + bytes (say \"why\")".to_string(),
            }],
            suppressed: 1,
            baselined: 0,
            files_scanned: 3,
        }
    }

    #[test]
    fn rendered_log_passes_the_validator() {
        let sarif = render_sarif(&report());
        validate_sarif(&sarif).expect("rendered SARIF must validate");
        assert!(sarif.contains("\"version\":\"2.1.0\""));
        assert!(sarif.contains("\"ruleId\":\"U1\""));
        assert!(sarif.contains("\"startLine\":12"));
        assert!(sarif.contains("\"endLine\":12"));
        assert!(sarif.contains("\"endColumn\":23"));
    }

    #[test]
    fn every_registered_rule_appears_in_the_driver_table() {
        let sarif = render_sarif(&Report::default());
        for r in RULES {
            assert!(
                sarif.contains(&format!("\"id\":\"{}\"", r.id)),
                "rule {} missing from driver.rules",
                r.id
            );
        }
        validate_sarif(&sarif).expect("empty report must still validate");
    }

    #[test]
    fn validator_rejects_structural_damage() {
        let good = render_sarif(&report());
        assert!(validate_sarif("{}").is_err());
        assert!(validate_sarif("not json").is_err());
        assert!(validate_sarif(&good.replace("2.1.0\",\"runs", "2.0.0\",\"runs")).is_err());
        assert!(validate_sarif(&good.replace("\"ruleId\"", "\"ruleID\"")).is_err());
        assert!(validate_sarif(&good.replace("\"error\"", "\"fatal\"")).is_err());
        assert!(validate_sarif(&good.replace("\"startLine\":12", "\"startLine\":0")).is_err());
    }

    #[test]
    fn escapes_survive_a_parse_round_trip() {
        let mut r = report();
        r.findings[0].message = "tab\there \"quoted\" back\\slash".to_string();
        let sarif = render_sarif(&r);
        let parsed = Json::parse(&sarif).expect("parses");
        let text = (|| {
            let runs = get(parsed.as_object()?, "runs")?.as_array()?;
            let results = get(runs[0].as_object()?, "results")?.as_array()?;
            let msg = get(results[0].as_object()?, "message")?.as_object()?;
            Some(get(msg, "text")?.as_str()?.to_string())
        })()
        .expect("message.text present");
        assert_eq!(text, "tab\there \"quoted\" back\\slash");
    }
}
