//! Workspace discovery: which `.rs` files belong to which member crate.
//!
//! Membership comes from the root `Cargo.toml`'s `[workspace] members`
//! list (globs like `crates/*` are expanded against the filesystem), so
//! the linter follows the workspace as crates are added — no hardcoded
//! crate list to drift. `vendor/*` members are skipped by default: they
//! are offline API stubs of third-party crates, not code this repo's
//! invariants govern.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::TargetKind;

/// One `.rs` file scheduled for linting.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Path relative to the workspace root (stable across machines).
    pub rel: PathBuf,
    /// The member's short name (`sim`, `core`, … or `gmt` for the root).
    pub crate_name: String,
    /// Which target the file compiles into.
    pub target: TargetKind,
    /// Whether this is the crate root (`src/lib.rs`, or `src/main.rs`
    /// for binary-only crates) — the file S1 inspects.
    pub crate_root: bool,
}

/// Walks upward from `start` to the nearest directory whose `Cargo.toml`
/// declares a `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Expands the `[workspace] members` list of `root/Cargo.toml` into
/// member directories, in sorted order. Only trailing-`*` globs are
/// supported — the two forms this workspace uses.
pub fn member_dirs(root: &Path, include_vendor: bool) -> io::Result<Vec<PathBuf>> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))?;
    let mut members = Vec::new();
    for entry in parse_members(&manifest) {
        if !include_vendor && entry.starts_with("vendor") {
            continue;
        }
        if let Some(prefix) = entry.strip_suffix("/*") {
            let base = root.join(prefix);
            let Ok(read) = fs::read_dir(&base) else {
                continue;
            };
            let mut dirs: Vec<PathBuf> = read
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.is_dir() && p.join("Cargo.toml").exists())
                .collect();
            dirs.sort();
            members.extend(dirs);
        } else {
            let dir = root.join(&entry);
            if dir.join("Cargo.toml").exists() {
                members.push(dir);
            }
        }
    }
    Ok(members)
}

/// Pulls the quoted entries out of `members = [ ... ]`.
fn parse_members(manifest: &str) -> Vec<String> {
    let Some(at) = manifest.find("members") else {
        return Vec::new();
    };
    let Some(open) = manifest[at..].find('[') else {
        return Vec::new();
    };
    let Some(close) = manifest[at + open..].find(']') else {
        return Vec::new();
    };
    let list = &manifest[at + open + 1..at + open + close];
    list.split(',')
        .map(|s| s.trim().trim_matches('"').to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// Collects every lintable `.rs` file of the workspace, in a
/// deterministic (sorted) order.
///
/// Per member (plus the root package itself) the walk covers `src/`,
/// `tests/`, `examples/` and `benches/`, skipping any directory named
/// `fixtures` (lint-test corpora are data, not code) or `target`.
pub fn workspace_files(root: &Path, include_vendor: bool) -> io::Result<Vec<SourceFile>> {
    let mut members = member_dirs(root, include_vendor)?;
    // The root manifest doubles as the `gmt` facade package.
    members.insert(0, root.to_path_buf());
    let mut out = Vec::new();
    for dir in members {
        let crate_name = if dir == root {
            "gmt".to_string()
        } else {
            dir.file_name()
                .map(|n| n.to_string_lossy().to_string())
                .unwrap_or_default()
        };
        let lib_root = dir.join("src/lib.rs");
        let bin_only = !lib_root.exists();
        let crate_root = if bin_only {
            dir.join("src/main.rs")
        } else {
            lib_root
        };
        for (sub, target) in [
            (
                "src",
                if bin_only {
                    TargetKind::Bin
                } else {
                    TargetKind::Lib
                },
            ),
            ("tests", TargetKind::Tests),
            ("examples", TargetKind::Example),
            ("benches", TargetKind::Bench),
        ] {
            let base = dir.join(sub);
            if !base.is_dir() {
                continue;
            }
            // The root package's crates/ and vendor/ live beside src/, so
            // only the member's own tree is walked here.
            let mut files = Vec::new();
            collect_rs(&base, &mut files)?;
            files.sort();
            for abs in files {
                let target = if sub == "src" && abs.starts_with(base.join("bin")) {
                    TargetKind::Bin
                } else {
                    target
                };
                let rel = abs.strip_prefix(root).unwrap_or(&abs).to_path_buf();
                out.push(SourceFile {
                    crate_root: abs == crate_root,
                    abs,
                    rel,
                    crate_name: crate_name.clone(),
                    target,
                });
            }
        }
    }
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if path.is_dir() {
            if name == "fixtures" || name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_parse_globs_and_literals() {
        let manifest = "[workspace]\nmembers = [\"crates/*\", \"vendor/*\",\n  \"tools/extra\"]\n";
        assert_eq!(
            parse_members(manifest),
            vec!["crates/*", "vendor/*", "tools/extra"]
        );
    }

    fn repo_root() -> PathBuf {
        // crates/lint/ -> workspace root is two levels up.
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .unwrap()
            .to_path_buf()
    }

    #[test]
    fn real_workspace_walk_finds_known_crates_and_skips_vendor() {
        let files = workspace_files(&repo_root(), false).unwrap();
        assert!(files.iter().any(|f| f.crate_name == "sim"));
        assert!(files.iter().any(|f| f.crate_name == "gmt"));
        assert!(!files.iter().any(|f| f.rel.starts_with("vendor")));
        assert!(
            !files
                .iter()
                .any(|f| f.rel.to_string_lossy().contains("fixtures")),
            "fixture corpora are data, not lintable code"
        );
        let roots: Vec<_> = files.iter().filter(|f| f.crate_root).collect();
        assert!(roots.len() >= 12, "every member surfaces its crate root");
    }

    #[test]
    fn bin_targets_are_classified() {
        let files = workspace_files(&repo_root(), false).unwrap();
        let bench_bin = files
            .iter()
            .find(|f| f.rel.ends_with("crates/serve/src/bin/serve_bench.rs"))
            .expect("serve_bench exists");
        assert_eq!(bench_bin.target, TargetKind::Bin);
        let lib = files
            .iter()
            .find(|f| f.rel.ends_with("crates/serve/src/runtime.rs"))
            .expect("runtime.rs exists");
        assert_eq!(lib.target, TargetKind::Lib);
    }

    #[test]
    fn find_root_walks_upward() {
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        assert_eq!(find_root(&here), Some(repo_root()));
    }
}
