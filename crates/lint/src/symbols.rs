//! Workspace-wide symbol table for the semantic rules (U1/C1/T1).
//!
//! Built from every parsed file's AST in one pass, the table answers the
//! cross-file questions the token rules cannot: which unit a function
//! parameter expects (from its name suffix), which fields a config
//! struct declares and whether they are numeric, which enum variants
//! exist, and which identifiers any `validate()` body mentions.
//!
//! Unit inference is deliberately suffix-based and exact: only the final
//! `_`-separated segment of an identifier names a unit, so
//! `link_bytes_per_sec` (ends in `sec`) carries no dimension while
//! `latency_ns` does. The `Dur`/`Time` newtypes from `crates/sim` are
//! tracked as their own dimensions: values of those types are checked by
//! rustc's operator impls, so the linter only flags *raw* integers whose
//! inferred units disagree.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

use crate::ast::{AnyNode, File, Item, ItemKind};
use crate::lexer::{lex, LexOutput, TokKind};
use crate::rules::TargetKind;

/// A concrete measurement unit inferred from an identifier suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Unit {
    /// Nanoseconds (`_ns`).
    Ns,
    /// Microseconds (`_us`).
    Us,
    /// Milliseconds (`_ms`).
    Ms,
    /// Byte counts (`_bytes`).
    Bytes,
    /// Page counts (`_pages`).
    Pages,
    /// Gigabytes per second (`_gbps`).
    Gbps,
}

impl Unit {
    /// The suffix spelling, for diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            Unit::Ns => "ns",
            Unit::Us => "us",
            Unit::Ms => "ms",
            Unit::Bytes => "bytes",
            Unit::Pages => "pages",
            Unit::Gbps => "gbps",
        }
    }
}

/// Infers a unit from the final `_`-separated segment of `name`.
pub fn unit_of_name(name: &str) -> Option<Unit> {
    let seg = name.rsplit('_').next().unwrap_or(name);
    Some(match seg {
        "ns" => Unit::Ns,
        "us" => Unit::Us,
        "ms" => Unit::Ms,
        "bytes" => Unit::Bytes,
        "pages" => Unit::Pages,
        "gbps" => Unit::Gbps,
        _ => return None,
    })
}

/// The dimension carried by an expression or binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dim {
    /// A raw number with a suffix-inferred unit.
    Known(Unit),
    /// The `Dur` newtype — unit-safe by construction.
    Dur,
    /// The `Time` newtype — unit-safe by construction.
    Time,
    /// No inferable dimension.
    Unknown,
}

impl Dim {
    /// The known unit, if any.
    pub fn unit(self) -> Option<Unit> {
        match self {
            Dim::Known(u) => Some(u),
            _ => None,
        }
    }
}

/// Infers a dimension from a type's token spelling.
pub fn dim_of_ty(ty: &[String]) -> Dim {
    match ty
        .iter()
        .map(String::as_str)
        .find(|t| *t != "&" && *t != "mut")
    {
        Some("Dur") => Dim::Dur,
        Some("Time") => Dim::Time,
        _ => Dim::Unknown,
    }
}

/// Whether a field type is a numeric primitive (C1's validate() scope).
fn is_numeric_ty(ty: &[String]) -> bool {
    ty.len() == 1
        && matches!(
            ty[0].as_str(),
            "u8" | "u16"
                | "u32"
                | "u64"
                | "u128"
                | "usize"
                | "i8"
                | "i16"
                | "i32"
                | "i64"
                | "i128"
                | "isize"
                | "f32"
                | "f64"
        )
}

/// One function signature, keyed by bare name in [`Symbols::fns`].
#[derive(Debug, Clone)]
pub struct FnSig {
    /// Number of non-receiver parameters.
    pub arity: usize,
    /// Per-parameter unit inferred from the parameter name.
    pub param_units: Vec<Option<Unit>>,
    /// Dimension of the return value (type first, name suffix second).
    pub ret_dim: Dim,
}

/// One declared struct field.
#[derive(Debug, Clone)]
pub struct FieldInfo {
    /// Field name.
    pub name: String,
    /// Declared `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// Whether the type is a bare numeric primitive.
    pub numeric: bool,
    /// Dimension of the field's type (`Dur`/`Time`) — not its name.
    pub ty_dim: Dim,
    /// Token index of the field name in the defining file.
    pub name_tok: usize,
    /// The field type's token texts, verbatim. The flow rules classify
    /// these: `HashMap`/`HashSet` feed N1's iteration-order taint, and
    /// `Rc`/`RefCell`/`Cell` feed G1's shard-safety inventory.
    pub ty: Vec<String>,
}

/// One struct definition.
#[derive(Debug, Clone)]
pub struct StructInfo {
    /// Index of the defining file in the analyzed-file slice.
    pub file: usize,
    /// Declared fields in source order.
    pub fields: Vec<FieldInfo>,
}

/// A lexed + parsed source file, the unit all semantic passes consume.
#[derive(Debug)]
pub struct AnalyzedFile {
    /// Path relative to the workspace root.
    pub rel: PathBuf,
    /// Owning member crate (`sim`, `core`, …).
    pub crate_name: String,
    /// Which target the file compiles into.
    pub target: TargetKind,
    /// Token stream and suppression comments.
    pub lexed: LexOutput,
    /// The parsed (lossless) syntax tree.
    pub ast: File,
    /// Whether this is the crate root file (S1's subject).
    pub crate_root: bool,
}

impl AnalyzedFile {
    /// Lexes and parses `source` as the file at `rel`.
    pub fn analyze(
        rel: PathBuf,
        crate_name: String,
        target: TargetKind,
        crate_root: bool,
        source: &str,
    ) -> AnalyzedFile {
        let lexed = lex(source);
        let ast = crate::parser::parse_file(&lexed.tokens);
        AnalyzedFile {
            rel,
            crate_name,
            target,
            lexed,
            ast,
            crate_root,
        }
    }
}

/// The workspace-wide symbol table.
#[derive(Debug, Default)]
pub struct Symbols {
    /// Function signatures by bare name (all same-name overloads).
    pub fns: BTreeMap<String, Vec<FnSig>>,
    /// Struct definitions by name (first definition wins).
    pub structs: BTreeMap<String, StructInfo>,
    /// Enum variants by enum name.
    pub enums: BTreeMap<String, Vec<String>>,
    /// Every identifier mentioned inside any `fn validate` body.
    pub validate_idents: BTreeSet<String>,
}

/// Builds the symbol table from every analyzed file.
pub fn build_symbols(files: &[AnalyzedFile]) -> Symbols {
    let mut syms = Symbols::default();
    for (idx, file) in files.iter().enumerate() {
        for item in &file.ast.items {
            collect_item(&mut syms, idx, file, item);
        }
    }
    syms
}

fn collect_item(syms: &mut Symbols, file_idx: usize, file: &AnalyzedFile, item: &Item) {
    match &item.kind {
        ItemKind::Fn(f) => {
            let ret_dim = match dim_of_ty(&f.ret_ty) {
                Dim::Unknown => unit_of_name(&f.name).map_or(Dim::Unknown, Dim::Known),
                d => d,
            };
            let sig = FnSig {
                arity: f.params.len(),
                param_units: f
                    .params
                    .iter()
                    .map(|p| p.name.as_deref().and_then(unit_of_name))
                    .collect(),
                ret_dim,
            };
            syms.fns.entry(f.name.clone()).or_default().push(sig);
            if f.name == "validate" {
                if let Some(body) = &f.body {
                    let toks = &file.lexed.tokens;
                    let hi = body.span.hi.min(toks.len());
                    for tok in &toks[body.span.lo..hi] {
                        if tok.kind == TokKind::Ident {
                            syms.validate_idents.insert(tok.text.clone());
                        }
                    }
                }
            }
        }
        ItemKind::Struct(s) => {
            let info = StructInfo {
                file: file_idx,
                fields: s
                    .fields
                    .iter()
                    .map(|fd| FieldInfo {
                        name: fd.name.clone(),
                        is_pub: fd.is_pub,
                        numeric: is_numeric_ty(&fd.ty),
                        ty_dim: dim_of_ty(&fd.ty),
                        name_tok: fd.name_tok,
                        ty: fd.ty.clone(),
                    })
                    .collect(),
            };
            syms.structs.entry(s.name.clone()).or_insert(info);
        }
        ItemKind::Enum(e) => {
            syms.enums
                .entry(e.name.clone())
                .or_insert_with(|| e.variants.clone());
        }
        ItemKind::Impl(imp) => {
            for inner in &imp.items {
                collect_item(syms, file_idx, file, inner);
            }
        }
        ItemKind::Mod(m) => {
            for inner in &m.items {
                collect_item(syms, file_idx, file, inner);
            }
        }
        ItemKind::Verbatim => {}
    }
}

/// Maps each token index to the `self_ty` of the innermost enclosing
/// `impl` block, for C1's "read outside the struct's own impls" test.
pub fn impl_context_map(file: &AnalyzedFile) -> Vec<Option<String>> {
    let mut map = vec![None; file.lexed.tokens.len()];
    for item in &file.ast.items {
        mark_impls(item, &mut map);
    }
    map
}

fn mark_impls(item: &Item, map: &mut [Option<String>]) {
    match &item.kind {
        ItemKind::Impl(imp) => {
            let hi = item.span.hi.min(map.len());
            for slot in map.iter_mut().take(hi).skip(item.span.lo) {
                *slot = Some(imp.self_ty.clone());
            }
            // Nested impls (rare) override their parent's range.
            for inner in &imp.items {
                mark_impls(inner, map);
            }
        }
        ItemKind::Mod(m) => {
            for inner in &m.items {
                mark_impls(inner, map);
            }
        }
        _ => {}
    }
}

/// Depth-first, source-order visit of every AST node in `file`.
pub fn walk_nodes<'a>(file: &'a File, visit: &mut dyn FnMut(AnyNode<'a>)) {
    let mut stack: Vec<AnyNode<'a>> = file.items.iter().rev().map(AnyNode::Item).collect();
    let mut kids = Vec::new();
    while let Some(node) = stack.pop() {
        visit(node);
        kids.clear();
        node.children(&mut kids);
        for k in kids.drain(..).rev() {
            stack.push(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzed(src: &str) -> AnalyzedFile {
        AnalyzedFile::analyze(
            PathBuf::from("crates/x/src/lib.rs"),
            "x".into(),
            TargetKind::Lib,
            false,
            src,
        )
    }

    #[test]
    fn suffixes_map_to_units_by_final_segment_only() {
        assert_eq!(unit_of_name("latency_ns"), Some(Unit::Ns));
        assert_eq!(unit_of_name("ns"), Some(Unit::Ns));
        assert_eq!(unit_of_name("win_bytes"), Some(Unit::Bytes));
        assert_eq!(unit_of_name("link_bytes_per_sec"), None);
        assert_eq!(unit_of_name("pcie_gbps"), Some(Unit::Gbps));
        assert_eq!(unit_of_name("t1_pages"), Some(Unit::Pages));
        assert_eq!(unit_of_name("nsec"), None);
    }

    #[test]
    fn fn_table_records_units_and_return_dims() {
        let f = analyzed(
            "fn pace(start_ns: u64, budget: Dur) -> u64 { start_ns }\n\
             fn deadline_us(x: u64) -> u64 { x }\n\
             fn mk() -> Dur { Dur::ZERO }",
        );
        let syms = build_symbols(std::slice::from_ref(&f));
        let pace = &syms.fns["pace"][0];
        assert_eq!(pace.arity, 2);
        assert_eq!(pace.param_units, vec![Some(Unit::Ns), None]);
        assert_eq!(pace.ret_dim, Dim::Unknown);
        assert_eq!(syms.fns["deadline_us"][0].ret_dim, Dim::Known(Unit::Us));
        assert_eq!(syms.fns["mk"][0].ret_dim, Dim::Dur);
    }

    #[test]
    fn struct_table_flags_numeric_and_typed_fields() {
        let f = analyzed(
            "pub struct SsdConfig { pub block_bytes: u32, pub read_latency: Dur, pub name: String }",
        );
        let syms = build_symbols(std::slice::from_ref(&f));
        let s = &syms.structs["SsdConfig"];
        assert!(s.fields[0].numeric && s.fields[0].is_pub);
        assert_eq!(s.fields[1].ty_dim, Dim::Dur);
        assert!(!s.fields[1].numeric);
        assert!(!s.fields[2].numeric);
    }

    #[test]
    fn validate_bodies_feed_the_ident_set() {
        let f = analyzed(
            "impl C { pub fn validate(&self) -> Result<(), E> { if self.channels == 0 { return Err(E::Zero); } Ok(()) } }",
        );
        let syms = build_symbols(std::slice::from_ref(&f));
        assert!(syms.validate_idents.contains("channels"));
        assert!(!syms.validate_idents.contains("block_bytes"));
    }

    #[test]
    fn impl_context_covers_only_impl_ranges() {
        let f = analyzed("fn free() {}\nimpl S { fn m(&self) { self.x; } }");
        let map = impl_context_map(&f);
        let toks = &f.lexed.tokens;
        let x_pos = toks.iter().position(|t| t.is_ident("x")).expect("x");
        let free_pos = toks.iter().position(|t| t.is_ident("free")).expect("free");
        assert_eq!(map[x_pos].as_deref(), Some("S"));
        assert_eq!(map[free_pos], None);
    }
}
