//! # gmt-lint — repo-specific static analysis for the GMT workspace
//!
//! The reproduction's credibility rests on bit-reproducible simulation:
//! golden-trace fixtures, differential tests and the multi-tenant
//! `serve_bench` all assume a seeded run is byte-identical across
//! machines. `gmt-lint` turns the invariants behind that assumption into
//! a CI gate instead of tribal knowledge:
//!
//! * **D1 no-wall-clock** — simulation crates use virtual time only,
//! * **D2 no-unseeded-rng** — all randomness is threaded from a seed,
//! * **D3 no-hashmap-in-export** — export paths iterate ordered maps,
//! * **S1 forbid-unsafe** — every crate root forbids `unsafe`,
//! * **P1 no-panic-in-lib** — library code surfaces typed errors,
//! * **M1 metrics-conservation** — `TieringMetrics::merge` sums every field.
//!
//! The analysis tokenizes with a hand-rolled lexer ([`lexer`]) rather
//! than a parser dependency, keeping the workspace offline-buildable.
//! Violations carry rustc-style `file:line:col` spans, can be silenced
//! per line with `// gmt-lint: allow(<rule>): reason`, and are emitted
//! as text or `--format json` for CI annotation. `--fix` applies the
//! mechanically safe D3 rewrite ([`fix`]).
//!
//! Run it with:
//!
//! ```text
//! cargo run -p gmt-lint -- --format json
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod diag;
pub mod engine;
pub mod fix;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod sarif;
pub mod symbols;
pub mod workspace;

pub use diag::{Finding, Level, Report};
pub use engine::{check_crate_root, check_source, lint_workspace};
pub use rules::{Config, FileContext, TargetKind, RULES};
