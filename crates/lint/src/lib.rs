//! # gmt-lint — repo-specific static analysis for the GMT workspace
//!
//! The reproduction's credibility rests on bit-reproducible simulation:
//! golden-trace fixtures, differential tests and the multi-tenant
//! `serve_bench` all assume a seeded run is byte-identical across
//! machines. `gmt-lint` turns the invariants behind that assumption into
//! a CI gate instead of tribal knowledge:
//!
//! * **D1 no-wall-clock** — simulation crates use virtual time only,
//! * **D2 no-unseeded-rng** — all randomness is threaded from a seed,
//! * **D3 no-hashmap-in-export** — export paths iterate ordered maps,
//! * **S1 forbid-unsafe** — every crate root forbids `unsafe`,
//! * **P1 no-panic-in-lib** — library code surfaces typed errors,
//! * **M1 metrics-conservation** — `TieringMetrics::merge` sums every field,
//! * **N1 nondeterminism-taint** — flow-sensitive: wall-clock, RNG,
//!   thread-id and hash-iteration taint must not reach export sinks,
//! * **A1 alloc-in-hot-loop** — no allocation churn in loops reachable
//!   from the DES event roots,
//! * **G1 shard-safety** — shared mutable state on the event-loop path
//!   is denied or inventoried for the sharded-DES roadmap item.
//!
//! The analysis tokenizes with a hand-rolled lexer ([`lexer`]) rather
//! than a parser dependency, keeping the workspace offline-buildable.
//! Violations carry rustc-style `file:line:col` spans, can be silenced
//! per line with `// gmt-lint: allow(<rule>): reason`, and are emitted
//! as text or `--format json` for CI annotation. `--fix` applies the
//! mechanically safe D3 rewrite ([`fix`]).
//!
//! Run it with:
//!
//! ```text
//! cargo run -p gmt-lint -- --format json
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod diag;
pub mod engine;
pub mod fix;
pub mod flow;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod sarif;
pub mod symbols;
pub mod workspace;

pub use diag::{Finding, Level, Report};
pub use engine::{check_crate_root, check_source, lint_workspace};
pub use flow::ShardReport;
pub use rules::{Config, FileContext, TargetKind, RULES};
