//! Workspace call graph over the symbol table, with name-based edges.
//!
//! Calls are resolved by *bare name*: `self.promote(x)`, `promote(x)`
//! and `Tier::promote(x)` all create edges to every workspace function
//! named `promote`. That over-approximates dispatch (trait impls and
//! same-name methods merge), which is the right direction for both
//! consumers: A1's hot-path reachability must not miss a callee, and
//! N1's bottom-up summaries join over all candidates so a taint that
//! *any* resolution could produce is kept. Ubiquitous constructor and
//! std-shadowing names (`new`, `default`, `from`, `clone`, `collect`,
//! `with_capacity`) never form edges — `Vec::new()` must not make every
//! workspace `fn new` look hot.

use std::collections::BTreeMap;

use crate::ast::{AnyNode, ExprKind, FnItem, Item, ItemKind};
use crate::rules::{test_mask, TargetKind};
use crate::symbols::AnalyzedFile;

/// Index of a function in [`CallGraph::fns`].
pub type FnId = usize;

/// One workspace function and where it lives.
#[derive(Debug)]
pub struct FnInfo<'a> {
    /// Index of the defining file in the analyzed-file slice.
    pub file: usize,
    /// The parsed function item.
    pub item: &'a FnItem,
    /// `self_ty` of the enclosing `impl`, when the fn is a method.
    pub self_ty: Option<String>,
    /// Whether the fn sits inside `#[cfg(test)]`/`#[test]` code.
    pub in_test: bool,
    /// Whether the receiver is `&mut self` or `mut self`.
    pub receiver_mut: bool,
}

/// Names that never form call edges: constructors and std-prelude
/// shadows whose workspace homonyms would wire the graph into a hairball.
const NON_EDGE_NAMES: &[&str] = &[
    "new",
    "default",
    "from",
    "clone",
    "collect",
    "with_capacity",
];

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph<'a> {
    /// Every function item in the workspace, in file/source order.
    pub fns: Vec<FnInfo<'a>>,
    /// Function ids by bare name (all same-name definitions).
    pub by_name: BTreeMap<&'a str, Vec<FnId>>,
    /// Callee ids per function, deduplicated.
    pub callees: Vec<Vec<FnId>>,
}

impl<'a> CallGraph<'a> {
    /// Builds the graph over every Lib/Bin file in `files`.
    pub fn build(files: &'a [AnalyzedFile]) -> CallGraph<'a> {
        let mut cg = CallGraph::default();
        for (fi, file) in files.iter().enumerate() {
            if !matches!(file.target, TargetKind::Lib | TargetKind::Bin) {
                continue;
            }
            let mask = test_mask(&file.lexed.tokens);
            for item in &file.ast.items {
                collect_fns(&mut cg, fi, file, item, None, &mask);
            }
        }
        for id in 0..cg.fns.len() {
            let name = cg.fns[id].item.name.as_str();
            cg.by_name.entry(name).or_default().push(id);
        }
        // Edges: every call name in a body resolves to all same-name fns.
        cg.callees = cg
            .fns
            .iter()
            .map(|f| {
                let mut out: Vec<FnId> = Vec::new();
                for name in called_names(f.item) {
                    if NON_EDGE_NAMES.contains(&name) {
                        continue;
                    }
                    if let Some(ids) = cg.by_name.get(name) {
                        out.extend(ids.iter().copied());
                    }
                }
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect();
        cg
    }

    /// Function ids whose bare name is `name`.
    pub fn named(&self, name: &str) -> &[FnId] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Forward reachability from `roots` (roots included), skipping
    /// test-masked functions — test helpers calling hot code must not
    /// drag their own bodies into the hot set.
    pub fn reachable(&self, roots: &[FnId]) -> Vec<bool> {
        let mut seen = vec![false; self.fns.len()];
        let mut stack: Vec<FnId> = roots
            .iter()
            .copied()
            .filter(|&id| !self.fns[id].in_test)
            .collect();
        for &id in &stack {
            seen[id] = true;
        }
        while let Some(id) = stack.pop() {
            for &callee in &self.callees[id] {
                if !seen[callee] && !self.fns[callee].in_test {
                    seen[callee] = true;
                    stack.push(callee);
                }
            }
        }
        seen
    }
}

fn collect_fns<'a>(
    cg: &mut CallGraph<'a>,
    file_idx: usize,
    file: &'a AnalyzedFile,
    item: &'a Item,
    self_ty: Option<&str>,
    mask: &[bool],
) {
    match &item.kind {
        ItemKind::Fn(f) => {
            cg.fns.push(FnInfo {
                file: file_idx,
                item: f,
                self_ty: self_ty.map(str::to_string),
                in_test: mask.get(f.name_tok).copied().unwrap_or(false),
                receiver_mut: f.has_receiver && receiver_is_mut(file, item, f),
            });
        }
        ItemKind::Impl(imp) => {
            let ty = if imp.self_ty.is_empty() {
                None
            } else {
                Some(imp.self_ty.as_str())
            };
            for inner in &imp.items {
                collect_fns(cg, file_idx, file, inner, ty, mask);
            }
        }
        ItemKind::Mod(m) => {
            for inner in &m.items {
                collect_fns(cg, file_idx, file, inner, self_ty, mask);
            }
        }
        _ => {}
    }
}

/// Whether a method's receiver is `&mut self` or `mut self`: scans the
/// parameter list tokens (from the name to the body/`;`) for a `self`
/// directly preceded by `mut`.
fn receiver_is_mut(file: &AnalyzedFile, item: &Item, f: &FnItem) -> bool {
    let toks = &file.lexed.tokens;
    let end = f
        .body
        .as_ref()
        .map_or(item.span.hi, |b| b.span.lo)
        .min(toks.len());
    let mut depth = 0usize;
    for i in f.name_tok..end {
        let t = &toks[i];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            if depth == 1 {
                break;
            }
            depth = depth.saturating_sub(1);
        } else if depth == 1 && t.is_ident("self") {
            return i > 0 && toks[i - 1].is_ident("mut");
        }
    }
    false
}

/// Every bare call name in `f`'s body: `Call` path last segments and
/// `MethodCall` names, in walk order (with duplicates).
fn called_names<'a>(f: &'a FnItem) -> Vec<&'a str> {
    let mut out = Vec::new();
    let Some(body) = &f.body else {
        return out;
    };
    let mut stack: Vec<AnyNode<'a>> = vec![AnyNode::Block(body)];
    let mut kids = Vec::new();
    while let Some(node) = stack.pop() {
        if let AnyNode::Expr(e) = node {
            match &e.kind {
                ExprKind::Call { callee, .. } => {
                    if let ExprKind::Path(segs) = &callee.kind {
                        if let Some(last) = segs.last() {
                            out.push(last.as_str());
                        }
                    }
                }
                ExprKind::MethodCall { name, .. } => out.push(name.as_str()),
                _ => {}
            }
        }
        kids.clear();
        node.children(&mut kids);
        stack.append(&mut kids);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn analyze(src: &str) -> AnalyzedFile {
        AnalyzedFile::analyze(
            PathBuf::from("crates/core/src/x.rs"),
            "core".into(),
            TargetKind::Lib,
            false,
            src,
        )
    }

    #[test]
    fn edges_follow_bare_names_through_methods_and_calls() {
        let f = analyze(
            "struct S;\n\
             impl S {\n  fn access(&mut self) { self.promote(1); helper(); }\n\
             \n  fn promote(&mut self, x: u32) { evict(x); }\n}\n\
             fn helper() {}\nfn evict(_x: u32) {}\nfn cold() { helper(); }",
        );
        let files = [f];
        let cg = CallGraph::build(&files);
        let access = cg.named("access")[0];
        let hot = cg.reachable(&[access]);
        let hot_names: Vec<&str> = cg
            .fns
            .iter()
            .enumerate()
            .filter(|(id, _)| hot[*id])
            .map(|(_, f)| f.item.name.as_str())
            .collect();
        assert!(hot_names.contains(&"access"));
        assert!(hot_names.contains(&"promote"), "{hot_names:?}");
        assert!(hot_names.contains(&"evict"), "two hops: {hot_names:?}");
        assert!(hot_names.contains(&"helper"));
        assert!(
            !hot_names.contains(&"cold"),
            "cold is a caller, not a callee"
        );
    }

    #[test]
    fn constructor_names_do_not_form_edges() {
        let f = analyze(
            "struct S;\nimpl S { fn new() -> S { expensive_setup(); S } }\n\
             fn expensive_setup() {}\n\
             fn access() { let _v: Vec<u32> = Vec::new(); }",
        );
        let files = [f];
        let cg = CallGraph::build(&files);
        let access = cg.named("access")[0];
        let hot = cg.reachable(&[access]);
        let new_id = cg.named("new")[0];
        assert!(!hot[new_id], "Vec::new must not pull in S::new");
    }

    #[test]
    fn test_code_is_outside_the_graph_frontier() {
        let f = analyze(
            "fn access() { step(); }\nfn step() {}\n\
             #[cfg(test)]\nmod tests { fn access() { super::only_tests(); } }\n\
             fn only_tests() {}",
        );
        let files = [f];
        let cg = CallGraph::build(&files);
        // Both `access` fns exist; reachability from the non-test one.
        let roots: Vec<FnId> = cg.named("access").to_vec();
        let hot = cg.reachable(&roots);
        let only_tests = cg.named("only_tests")[0];
        assert!(
            !hot[only_tests],
            "the test-module access must not make only_tests hot"
        );
    }

    #[test]
    fn receiver_mutability_is_detected() {
        let f = analyze(
            "struct S;\nimpl S {\n  fn a(&mut self) {}\n  fn b(&self) {}\n  fn c(mut self) {}\n  fn d(x: u32) -> u32 { x }\n}",
        );
        let files = [f];
        let cg = CallGraph::build(&files);
        let by = |n: &str| &cg.fns[cg.named(n)[0]];
        assert!(by("a").receiver_mut);
        assert!(!by("b").receiver_mut);
        assert!(by("c").receiver_mut);
        assert!(!by("d").receiver_mut);
    }
}
