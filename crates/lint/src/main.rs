//! The `gmt-lint` binary: lints the workspace and exits non-zero when a
//! deny-level finding survives.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant; // gmt-lint: allow(D1): the linter itself is host tooling, not simulation.

use gmt_lint::rules::rule;
use gmt_lint::symbols::build_symbols;
use gmt_lint::{fix, sarif, Config, Level, Report, RULES};

const USAGE: &str = "\
gmt-lint — determinism, tiering and export invariants for the GMT workspace

USAGE:
    gmt-lint [OPTIONS]

OPTIONS:
    --root <PATH>           Workspace root (default: nearest [workspace] above cwd)
    --format <FMT>          Output format: text (default), json or sarif
    --fix                   Apply the safe D3 and U1 rewrites, then re-lint
    --allow <RULE>          Run RULE (or `all`) at allow level (repeatable)
    --warn <RULE>           Run RULE (or `all`) at warn level (repeatable)
    --deny <RULE>           Run RULE (or `all`) at deny level (repeatable)
    --baseline <PATH>       Silence findings recorded in the snapshot at PATH
    --write-baseline <PATH> Write the current findings as a snapshot and exit
    --max-millis <N>        Fail (exit 2) if the lint pass itself exceeds N ms
    --timings               Report per-rule wall time on stderr
    --shard-report <PATH>   Write the G1 sharding-readiness inventory (JSON) to PATH
    --include-vendor        Also lint vendor/* stub crates
    --list-rules            Print the rule table and exit
    -h, --help              Print this help

EXIT CODES:
    0  no deny-level findings        1  deny-level findings
    2  usage or I/O error, or the --max-millis budget was exceeded

Suppress a single line with `// gmt-lint: allow(<RULE>): reason`, either
trailing the offending line or on the line directly above it. A baseline
snapshot silences pre-existing findings wholesale so new code can be held
to a stricter bar than old code; regenerate it with --write-baseline.";

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(err) => {
            eprintln!("gmt-lint: error: {err}");
            ExitCode::from(2)
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

/// One finding's identity in a baseline snapshot. Line/column are left
/// out on purpose: unrelated edits move findings around a file, and a
/// moved finding is not a new one.
fn baseline_key(f: &gmt_lint::Finding) -> String {
    format!("{}\t{}\t{}", f.rule, f.file.display(), f.message)
}

fn run() -> Result<bool, String> {
    let mut config = Config::default();
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut apply_fix = false;
    let mut include_vendor = false;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut max_millis: Option<u64> = None;
    let mut show_timings = false;
    let mut shard_report: Option<PathBuf> = None;

    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = Some(PathBuf::from(args.next().ok_or("--root needs a path")?));
            }
            "--format" => {
                format = match args.next().as_deref() {
                    Some("json") => Format::Json,
                    Some("text") => Format::Text,
                    Some("sarif") => Format::Sarif,
                    other => return Err(format!("unknown format {other:?} (text|json|sarif)")),
                };
            }
            "--fix" => apply_fix = true,
            "--allow" | "--warn" | "--deny" => {
                let level = Level::parse(&arg[2..]).expect("flag names are levels");
                let id = args
                    .next()
                    .ok_or_else(|| format!("{arg} needs a rule id"))?;
                if id == "all" {
                    for r in RULES {
                        config.overrides.insert(r.id.to_string(), level);
                    }
                } else if rule(&id).is_some() {
                    config.overrides.insert(id, level);
                } else {
                    return Err(format!("unknown rule `{id}` (try --list-rules)"));
                }
            }
            "--baseline" => {
                baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a path")?));
            }
            "--write-baseline" => {
                write_baseline = Some(PathBuf::from(
                    args.next().ok_or("--write-baseline needs a path")?,
                ));
            }
            "--max-millis" => {
                let n = args.next().ok_or("--max-millis needs a number")?;
                max_millis = Some(
                    n.parse::<u64>()
                        .map_err(|_| format!("--max-millis: `{n}` is not a number"))?,
                );
            }
            "--timings" => show_timings = true,
            "--shard-report" => {
                shard_report = Some(PathBuf::from(
                    args.next().ok_or("--shard-report needs a path")?,
                ));
            }
            "--include-vendor" => include_vendor = true,
            "--list-rules" => {
                for r in RULES {
                    println!(
                        "{:<3} {:<22} {:<5} {}",
                        r.id, r.name, r.default_level, r.summary
                    );
                }
                return Ok(true);
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = env::current_dir().map_err(|e| e.to_string())?;
            gmt_lint::workspace::find_root(&cwd)
                .ok_or("no [workspace] Cargo.toml above the current directory")?
        }
    };

    let started = Instant::now();
    let mut files =
        gmt_lint::engine::load_workspace(&root, include_vendor).map_err(|e| e.to_string())?;
    let (mut report, mut timings, mut shard) = gmt_lint::engine::lint_files_timed(&files, &config);

    if apply_fix {
        let fixed_files = apply_fixes(&root, &files, &report, &config)?;
        if fixed_files > 0 {
            eprintln!(
                "gmt-lint: rewrote {fixed_files} file(s) for D3/U1; \
                 re-linting (run `cargo build` to confirm the rewrite compiles)"
            );
            files = gmt_lint::engine::load_workspace(&root, include_vendor)
                .map_err(|e| e.to_string())?;
            (report, timings, shard) = gmt_lint::engine::lint_files_timed(&files, &config);
        }
    }

    if let Some(path) = shard_report {
        fs::write(&path, shard.render_json()).map_err(|e| e.to_string())?;
        eprintln!(
            "gmt-lint: wrote shard-readiness report ({} entr{}, {} hot fn(s)) to {}",
            shard.entries.len(),
            if shard.entries.len() == 1 { "y" } else { "ies" },
            shard.hot_fns,
            path.display()
        );
    }

    if let Some(path) = write_baseline {
        // Entries land in (file, line, rule) order so a regenerated
        // baseline diffs minimally against the previous one; the keys
        // themselves stay line-free (see `baseline_key`).
        let mut ordered: Vec<&gmt_lint::Finding> = report.findings.iter().collect();
        ordered.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut out = String::new();
        for f in ordered {
            let key = baseline_key(f);
            if seen.insert(key.clone()) {
                out.push_str(&key);
                out.push('\n');
            }
        }
        fs::write(&path, out).map_err(|e| e.to_string())?;
        eprintln!(
            "gmt-lint: wrote {} baseline entr{} to {}",
            seen.len(),
            if seen.len() == 1 { "y" } else { "ies" },
            path.display()
        );
        return Ok(true);
    }

    if let Some(path) = baseline {
        let text =
            fs::read_to_string(&path).map_err(|e| format!("baseline {}: {e}", path.display()))?;
        let known: BTreeSet<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let before = report.findings.len();
        report
            .findings
            .retain(|f| !known.contains(baseline_key(f).as_str()));
        report.baselined = before - report.findings.len();
    }

    let elapsed = started.elapsed();
    if show_timings {
        let mut by_cost = timings.clone();
        by_cost.sort_by_key(|&(_, d)| std::cmp::Reverse(d));
        eprintln!("gmt-lint: per-rule wall time (total {elapsed:?}):");
        for (name, d) in &by_cost {
            eprintln!("  {name:<10} {:>9.3}ms", d.as_secs_f64() * 1e3);
        }
    }
    match format {
        Format::Json => println!("{}", report.render_json()),
        Format::Sarif => {
            let log = sarif::render_sarif(&report);
            sarif::validate_sarif(&log).map_err(|e| format!("emitted SARIF is invalid: {e}"))?;
            println!("{log}");
        }
        Format::Text => {
            println!("{}", report.render_text());
            eprintln!("gmt-lint: completed in {elapsed:?}");
        }
    }
    if let Some(budget) = max_millis {
        if elapsed.as_millis() > u128::from(budget) {
            return Err(format!(
                "lint pass took {elapsed:?}, over the --max-millis {budget} budget"
            ));
        }
    }
    Ok(!report.has_deny())
}

/// Applies the D3 and U1 rewrites to every file the report flags.
///
/// U1 fixes use the already-analyzed token offsets, so they run against
/// the on-disk text first; D3 re-lexes whatever U1 produced.
fn apply_fixes(
    root: &std::path::Path,
    files: &[gmt_lint::symbols::AnalyzedFile],
    report: &Report,
    config: &Config,
) -> Result<usize, String> {
    let syms = build_symbols(files);
    let mut flagged: Vec<PathBuf> = report
        .findings
        .iter()
        .filter(|f| f.rule == "D3" || f.rule == "U1")
        .map(|f| f.file.clone())
        .collect();
    flagged.sort();
    flagged.dedup();
    let mut fixed_files = 0usize;
    for rel in flagged {
        let abs = root.join(&rel);
        let source = fs::read_to_string(&abs).map_err(|e| e.to_string())?;
        let mut text = source.clone();
        if let Some(file) = files.iter().find(|f| f.rel == rel) {
            if let Some(fixed) = fix::fix_u1(&text, file, &syms, config) {
                text = fixed;
            }
        }
        if let Some(fixed) = fix::fix_d3(&text) {
            text = fixed;
        }
        if text != source {
            fs::write(&abs, text).map_err(|e| e.to_string())?;
            fixed_files += 1;
        }
    }
    Ok(fixed_files)
}
