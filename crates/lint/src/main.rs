//! The `gmt-lint` binary: lints the workspace and exits non-zero when a
//! deny-level finding survives.

#![forbid(unsafe_code)]

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant; // gmt-lint: allow(D1): the linter itself is host tooling, not simulation.

use gmt_lint::rules::rule;
use gmt_lint::{fix, Config, Level, RULES};

const USAGE: &str = "\
gmt-lint — determinism, tiering and export invariants for the GMT workspace

USAGE:
    gmt-lint [OPTIONS]

OPTIONS:
    --root <PATH>       Workspace root (default: nearest [workspace] above cwd)
    --format <FMT>      Output format: text (default) or json
    --fix               Apply the mechanically safe D3 rewrite, then re-lint
    --allow <RULE>      Run RULE at allow level (repeatable)
    --warn <RULE>       Run RULE at warn level (repeatable)
    --deny <RULE>       Run RULE at deny level (repeatable)
    --include-vendor    Also lint vendor/* stub crates
    --list-rules        Print the rule table and exit
    -h, --help          Print this help

EXIT CODES:
    0  no deny-level findings        1  deny-level findings
    2  usage or I/O error

Suppress a single line with `// gmt-lint: allow(<RULE>): reason`, either
trailing the offending line or on the line directly above it.";

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(err) => {
            eprintln!("gmt-lint: error: {err}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let mut config = Config::default();
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut apply_fix = false;
    let mut include_vendor = false;

    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = Some(PathBuf::from(args.next().ok_or("--root needs a path")?));
            }
            "--format" => {
                json = match args.next().as_deref() {
                    Some("json") => true,
                    Some("text") => false,
                    other => return Err(format!("unknown format {other:?} (text|json)")),
                };
            }
            "--fix" => apply_fix = true,
            "--allow" | "--warn" | "--deny" => {
                let level = Level::parse(&arg[2..]).expect("flag names are levels");
                let id = args
                    .next()
                    .ok_or_else(|| format!("{arg} needs a rule id"))?;
                if rule(&id).is_none() {
                    return Err(format!("unknown rule `{id}` (try --list-rules)"));
                }
                config.overrides.insert(id, level);
            }
            "--include-vendor" => include_vendor = true,
            "--list-rules" => {
                for r in RULES {
                    println!(
                        "{:<3} {:<22} {:<5} {}",
                        r.id, r.name, r.default_level, r.summary
                    );
                }
                return Ok(true);
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = env::current_dir().map_err(|e| e.to_string())?;
            gmt_lint::workspace::find_root(&cwd)
                .ok_or("no [workspace] Cargo.toml above the current directory")?
        }
    };

    let started = Instant::now();
    let mut report =
        gmt_lint::lint_workspace(&root, &config, include_vendor).map_err(|e| e.to_string())?;

    if apply_fix {
        let mut fixed_files = 0usize;
        let mut d3_files: Vec<PathBuf> = report
            .findings
            .iter()
            .filter(|f| f.rule == "D3")
            .map(|f| root.join(&f.file))
            .collect();
        d3_files.dedup();
        for path in d3_files {
            let source = fs::read_to_string(&path).map_err(|e| e.to_string())?;
            if let Some(fixed) = fix::fix_d3(&source) {
                fs::write(&path, fixed).map_err(|e| e.to_string())?;
                fixed_files += 1;
            }
        }
        if fixed_files > 0 {
            eprintln!(
                "gmt-lint: rewrote {fixed_files} file(s) for D3; \
                 re-linting (run `cargo build` to confirm the rewrite compiles)"
            );
            report = gmt_lint::lint_workspace(&root, &config, include_vendor)
                .map_err(|e| e.to_string())?;
        }
    }

    if json {
        println!("{}", report.render_json());
    } else {
        println!("{}", report.render_text());
        eprintln!("gmt-lint: completed in {:?}", started.elapsed());
    }
    Ok(!report.has_deny())
}
