//! The flow-sensitive rule families: N1 nondeterminism-taint, A1
//! alloc-in-hot-loop, and G1 shard-safety, built on [`crate::cfg`],
//! [`crate::dataflow`] and [`crate::callgraph`].
//!
//! # N1 — nondeterminism taint
//!
//! The taint lattice is a bitmask per variable: `WALL_CLOCK` (values
//! from `Instant::now`/`SystemTime::now`), `RNG` (`thread_rng`/
//! `from_entropy`/`OsRng`), `HASH_ITER` (anything observed through
//! `HashMap`/`HashSet` iteration order), `THREAD_ID`
//! (`thread::current()`), and the structural `HASH_CONTAINER` bit
//! marking values that *are* hash collections (iterating one yields
//! `HASH_ITER`; handing one to a sink lets the sink iterate it). Taint
//! moves through assignments, field reads, arithmetic, and calls; it
//! dies at order-independent observations (`len`, `contains`, `sum`,
//! `min`/`max`, …) and at explicit reordering (`sort*`, `collect` into
//! a `BTree*`-ascribed binding). A finding fires only when taint reaches
//! an export/trace sink — `emit`, `to_jsonl`, a `TraceEvent` literal —
//! directly or through a call chain, via bottom-up function summaries
//! (which params a function sinks, what taint it returns).
//!
//! # A1 — allocation on the hot path
//!
//! The hot set is the call-graph closure of the DES roots: the
//! per-event entry points (`access`, `poll`, `poll_until`, `step` —
//! their whole body runs once per simulated event, so the body itself
//! counts as loop depth 1) and the replay drivers (`run`,
//! `run_arrivals` — only their internal loops are hot). Inside hot
//! loops, `Vec::new`, `Box::new`, `with_capacity`, `clone()`,
//! `collect()`, `format!` and `vec!` are flagged: this is allocation
//! churn the ROADMAP item-1 arena refactor exists to remove.
//!
//! # G1 — shard-safety inventory
//!
//! Every `static`, every `Rc`/`RefCell`/`Cell`/`UnsafeCell` field and
//! every `&mut self` method on a type touched by the hot path is
//! catalogued into a machine-readable sharding-readiness report (the
//! worklist for the ROADMAP item-2 sharded DES). `static mut`,
//! `thread_local!` and interior-mutability fields on hot types are
//! deny findings; `Arc`/`Mutex`-style sync state and `&mut self`
//! methods are report-only inventory.
//!
//! Known approximations, all conservative for their consumers: macro
//! bodies are opaque to N1 (D2/D3 still cover them syntactically),
//! receiver (`self`) taint does not flow through summaries, and calls
//! resolve by bare name (joining all candidates).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;
use std::time::Instant; // gmt-lint: allow(D1): host-side lint timing, not simulation.

use crate::ast::{Block, Expr, ExprKind, StmtKind};
use crate::callgraph::{CallGraph, FnId};
use crate::cfg::{build_cfg, Cfg, Node};
use crate::dataflow::{replay, solve, Analysis};
use crate::diag::{json_str, Finding, Level};
use crate::lexer::{TokKind, Token};
use crate::rules::{test_mask, Config, FileContext, Findings, TargetKind};
use crate::symbols::{AnalyzedFile, Symbols};

// --------------------------------------------------------------------------
// The taint lattice.
// --------------------------------------------------------------------------

/// Value came from a wall clock (`Instant::now`, `SystemTime::now`).
pub const WALL_CLOCK: u8 = 1 << 0;
/// Value came from an unseeded RNG.
pub const RNG: u8 = 1 << 1;
/// Value was observed through hash-map/set iteration order.
pub const HASH_ITER: u8 = 1 << 2;
/// Value identifies the host thread.
pub const THREAD_ID: u8 = 1 << 3;
/// Structural: the value *is* a `HashMap`/`HashSet` (iterating it, or
/// letting a sink serialize it, is order-nondeterministic).
pub const HASH_CONTAINER: u8 = 1 << 4;

/// The kinds that flow through data operations as value taint.
const VALUE_TAINT: u8 = WALL_CLOCK | RNG | HASH_ITER | THREAD_ID;
/// The kinds that make a sink argument a violation.
const SINK_TAINT: u8 = VALUE_TAINT | HASH_CONTAINER;

/// Human spelling of a taint mask, for diagnostics.
pub fn taint_label(kinds: u8) -> String {
    let mut parts: Vec<&str> = Vec::new();
    if kinds & HASH_ITER != 0 {
        parts.push("HashMap/HashSet iteration order");
    }
    if kinds & HASH_CONTAINER != 0 {
        parts.push("a hash container (the sink will iterate it)");
    }
    if kinds & WALL_CLOCK != 0 {
        parts.push("the wall clock");
    }
    if kinds & RNG != 0 {
        parts.push("an unseeded RNG");
    }
    if kinds & THREAD_ID != 0 {
        parts.push("thread identity");
    }
    parts.join(" + ")
}

/// The taint of one value: nondeterminism kinds plus which function
/// parameters it (transitively) depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Taint {
    /// Bitmask of `WALL_CLOCK`/`RNG`/`HASH_ITER`/`THREAD_ID`/`HASH_CONTAINER`.
    pub kinds: u8,
    /// Bit `i` set: the value depends on parameter `i` (up to 32 params).
    pub params: u32,
}

impl Taint {
    const CLEAN: Taint = Taint {
        kinds: 0,
        params: 0,
    };

    fn join(self, other: Taint) -> Taint {
        Taint {
            kinds: self.kinds | other.kinds,
            params: self.params | other.params,
        }
    }

    /// The data-flow projection: what a derived value inherits.
    fn derived(self) -> Taint {
        Taint {
            kinds: self.kinds & VALUE_TAINT,
            params: self.params,
        }
    }

    fn is_sinkworthy(self) -> bool {
        self.kinds & SINK_TAINT != 0
    }
}

/// What one function does with taint, computed bottom-up to fixpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Summary {
    /// Taint of the return value (kinds it mints, params it forwards).
    pub ret: Taint,
    /// Bit `i` set: parameter `i` flows into a sink inside the callee.
    pub sink_params: u32,
}

// --------------------------------------------------------------------------
// Name tables.
// --------------------------------------------------------------------------

/// Export/trace sink names (functions and methods).
const SINK_NAMES: &[&str] = &[
    "emit",
    "to_jsonl",
    "to_csv",
    "to_json",
    "export_jsonl",
    "export_csv",
    "write_jsonl",
    "write_csv",
    "render_json",
    "render_text",
    "serialize",
];

/// Struct literals whose field values are sink inputs.
const SINK_STRUCTS: &[&str] = &["TraceEvent", "TraceRecord"];

/// Iterator-producing methods: on a hash container they mint `HASH_ITER`.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
];

/// Order-independent observations: they kill `HASH_ITER`/`HASH_CONTAINER`
/// on the result (a count or keyed lookup does not depend on iteration
/// order), while clock/RNG/thread taint still flows through.
const ORDER_INDEPENDENT: &[&str] = &[
    "len",
    "is_empty",
    "capacity",
    "count",
    "contains",
    "contains_key",
    "get",
    "get_mut",
    "sum",
    "product",
    "max",
    "min",
];

/// In-place reorderings that sanitize a binding's `HASH_ITER` taint.
const SORT_METHODS: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// Call names the summary machinery never resolves. Mirrors (and
/// extends) the call graph's constructor exclusion: these names shadow
/// std container/iterator methods, so joining all workspace homonyms
/// would smear one implementation's taint over every `.iter()`/`.get()`
/// in the workspace (`Fifo::iter` iterates a `HashSet`; that must not
/// make `Vec::iter` look order-nondeterministic). The std semantics the
/// explicit source/sanitizer tables assign to these names still apply.
const NO_SUMMARY_NAMES: &[&str] = &[
    "new",
    "default",
    "from",
    "clone",
    "collect",
    "with_capacity",
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    "extend",
    "clear",
    "next",
    "first",
    "last",
    "copied",
    "cloned",
    "map",
    "filter",
    "fold",
    "max",
    "min",
    "take",
];

/// Per-event DES roots: their whole body runs once per simulated event.
const PER_EVENT_ROOTS: &[&str] = &["access", "poll", "poll_until", "step"];
/// Replay drivers: hot only inside their own loops.
const DRIVER_ROOTS: &[&str] = &["run", "run_arrivals"];
/// Crates whose root-named fns anchor the hot path.
const ROOT_CRATES: &[&str] = &["core", "gpu", "ssd", "serve", "baselines", "sim"];

/// Allocation-churn method names (A1).
const ALLOC_METHODS: &[&str] = &["clone", "to_vec", "to_string", "to_owned", "collect"];
/// Allocation-churn macros (A1).
const ALLOC_MACROS: &[&str] = &["format", "vec"];
/// Types whose `new`/`with_capacity`/`default` allocate (A1).
const ALLOC_TYPES: &[&str] = &[
    "Vec",
    "VecDeque",
    "Box",
    "String",
    "BTreeMap",
    "BTreeSet",
    "HashMap",
    "HashSet",
    "BinaryHeap",
];

fn ty_is_hash_container(ty: &[String]) -> bool {
    ty.iter().any(|t| t == "HashMap" || t == "HashSet")
}

fn ty_is_btree(ty: &[String]) -> bool {
    ty.iter().any(|t| t == "BTreeMap" || t == "BTreeSet")
}

// --------------------------------------------------------------------------
// The intraprocedural taint analysis (one function at a time).
// --------------------------------------------------------------------------

/// One tainted-value-reaches-sink observation.
struct SinkHit {
    /// Token index of the sink name.
    tok: usize,
    /// Taint kinds of the offending value.
    kinds: u8,
    /// The sink's name.
    sink: String,
    /// Set when the value sinks *inside* a callee (interprocedural hit).
    via: Option<String>,
}

struct TaintAnalysis<'a> {
    syms: &'a Symbols,
    cg: &'a CallGraph<'a>,
    summaries: &'a [Summary],
    /// `self_ty` of the function under analysis (for `self.field` reads).
    self_ty: Option<&'a str>,
    /// Parameter seeds: name → param-bit taint.
    param_seeds: Vec<(String, Taint)>,
    /// Join of every returned value's taint (filled by transfer).
    ret: Taint,
    /// Params that reached a sink (filled by transfer).
    sank_params: u32,
    /// When set, sink observations with real kinds are recorded.
    hits: Option<Vec<SinkHit>>,
}

type Fact = BTreeMap<String, Taint>;

impl<'a> TaintAnalysis<'a> {
    fn record_sink(&mut self, tok: usize, taint: Taint, sink: &str, via: Option<&str>) {
        self.sank_params |= taint.params;
        if taint.is_sinkworthy() {
            if let Some(hits) = &mut self.hits {
                hits.push(SinkHit {
                    tok,
                    kinds: taint.kinds & SINK_TAINT,
                    sink: sink.to_string(),
                    via: via.map(str::to_string),
                });
            }
        }
    }

    /// Joins the summaries of every workspace fn named `name`.
    fn summary_of(&self, name: &str) -> Option<Summary> {
        if NO_SUMMARY_NAMES.contains(&name) {
            return None;
        }
        let ids = self.cg.named(name);
        if ids.is_empty() {
            return None;
        }
        let mut joined = Summary::default();
        for &id in ids {
            let s = self.summaries[id];
            joined.ret = joined.ret.join(s.ret);
            joined.sink_params |= s.sink_params;
        }
        Some(joined)
    }

    /// Applies a resolved callee summary to a call's arguments.
    fn apply_summary(
        &mut self,
        name: &str,
        name_tok: usize,
        summary: Summary,
        args: &[Taint],
    ) -> Taint {
        let mut out = Taint {
            kinds: summary.ret.kinds & VALUE_TAINT,
            params: 0,
        };
        for (i, arg) in args.iter().enumerate() {
            let bit = 1u32 << i.min(31);
            if summary.ret.params & bit != 0 {
                out = out.join(arg.derived());
            }
            if summary.sink_params & bit != 0 {
                self.record_sink(name_tok, *arg, name, Some(name));
            }
        }
        out
    }

    /// Evaluates `e` under `fact`, recording sink observations.
    fn eval(&mut self, e: &Expr, fact: &mut Fact) -> Taint {
        match &e.kind {
            ExprKind::Lit | ExprKind::MacroCall | ExprKind::Verbatim => Taint::CLEAN,
            ExprKind::Path(segs) => {
                if let [single] = segs.as_slice() {
                    if let Some(t) = fact.get(single) {
                        return *t;
                    }
                }
                Taint::CLEAN
            }
            ExprKind::Unary(inner) => inner.as_ref().map_or(Taint::CLEAN, |i| self.eval(i, fact)),
            ExprKind::Cast(i) | ExprKind::Paren(i) | ExprKind::Try(i) => self.eval(i, fact),
            ExprKind::Closure(body) => self.eval(body, fact).derived(),
            ExprKind::Group(elems) => elems
                .iter()
                .map(|el| self.eval(el, fact))
                .fold(Taint::CLEAN, Taint::join),
            ExprKind::Binary { lhs, rhs, .. } => {
                let l = self.eval(lhs, fact);
                let r = self.eval(rhs, fact);
                l.join(r).derived()
            }
            ExprKind::Assign { lhs, rhs, .. } => {
                let t = self.eval(rhs, fact);
                if let ExprKind::Path(segs) = &lhs.kind {
                    if let [single] = segs.as_slice() {
                        fact.insert(single.clone(), t);
                        return Taint::CLEAN;
                    }
                }
                self.eval(lhs, fact);
                Taint::CLEAN
            }
            ExprKind::Field { base, name, .. } => {
                let b = self.eval(base, fact);
                let mut t = b.derived();
                // `self.field` where the field's declared type is a hash
                // collection: the read yields a container value.
                if matches!(&base.kind, ExprKind::Path(segs) if segs.as_slice() == ["self"]) {
                    if let Some(info) = self.self_ty.and_then(|ty| self.syms.structs.get(ty)) {
                        if info
                            .fields
                            .iter()
                            .any(|f| &f.name == name && ty_is_hash_container(&f.ty))
                        {
                            t.kinds |= HASH_CONTAINER;
                        }
                    }
                }
                t
            }
            ExprKind::Index { base, index } => {
                // Keyed lookup is order-independent; the *container* bit
                // does not survive either (an element is not the map).
                let b = self.eval(base, fact);
                let i = self.eval(index, fact);
                Taint {
                    kinds: (b.kinds | i.kinds) & (WALL_CLOCK | RNG | THREAD_ID | HASH_ITER),
                    params: b.params | i.params,
                }
            }
            ExprKind::MethodCall {
                recv,
                name,
                name_tok,
                args,
            } => self.method_call(recv, name, *name_tok, args, fact),
            ExprKind::Call { callee, args } => self.call(e, callee, args, fact),
            ExprKind::StructLit { path, fields, rest } => {
                let sname = path.last().map(String::as_str).unwrap_or("");
                let is_sink = SINK_STRUCTS.contains(&sname);
                let mut t = Taint::CLEAN;
                for (fname, name_tok, value) in fields {
                    let vt = match value {
                        Some(v) => self.eval(v, fact),
                        // Shorthand `Field { x }` reads local `x`.
                        None => fact.get(fname).copied().unwrap_or(Taint::CLEAN),
                    };
                    if is_sink {
                        self.record_sink(*name_tok, vt, sname, None);
                    }
                    t = t.join(vt.derived());
                }
                if let Some(r) = rest {
                    t = t.join(self.eval(r, fact).derived());
                }
                t
            }
            // Expression-position control flow is evaluated
            // flow-insensitively: branch results join, and a scrutinee
            // or condition tainted by iteration order taints the result
            // (the chosen branch depends on it).
            ExprKind::If { cond, then, els } => {
                let c = self.eval(cond, fact);
                let t = self.eval_block(then, fact);
                let e = els
                    .as_ref()
                    .map_or(Taint::CLEAN, |els| self.eval(els, fact));
                c.derived().join(t).join(e)
            }
            ExprKind::Match { scrutinee, arms } => {
                let mut t = self.eval(scrutinee, fact).derived();
                for arm in arms {
                    if let Some(g) = &arm.guard {
                        self.eval(g, fact);
                    }
                    t = t.join(self.eval(&arm.body, fact).derived());
                }
                t
            }
            ExprKind::While { cond, body } => {
                self.eval(cond, fact);
                self.eval_block(body, fact);
                Taint::CLEAN
            }
            ExprKind::For { iter, body } => {
                let it = self.eval(iter, fact);
                // Nested-position `for`: bind nothing (the CFG handles
                // statement-position loops); still walk the body.
                let _ = it;
                self.eval_block(body, fact);
                Taint::CLEAN
            }
            ExprKind::Loop(body) | ExprKind::BlockExpr(body) => self.eval_block(body, fact),
        }
    }

    /// Evaluates a nested block flow-insensitively: bindings land in the
    /// same fact (an over-approximation of scoping), the tail
    /// expression's taint is the block's value.
    fn eval_block(&mut self, b: &Block, fact: &mut Fact) -> Taint {
        let mut last = Taint::CLEAN;
        for stmt in &b.stmts {
            last = match &stmt.kind {
                StmtKind::Let { name, ty, init, .. } => {
                    let mut t = init.as_ref().map_or(Taint::CLEAN, |e| self.eval(e, fact));
                    if ty_is_hash_container(ty) {
                        t.kinds |= HASH_CONTAINER;
                    }
                    if ty_is_btree(ty) {
                        t.kinds &= !(HASH_ITER | HASH_CONTAINER);
                    }
                    if let Some(name) = name {
                        fact.insert(name.clone(), t);
                    }
                    Taint::CLEAN
                }
                StmtKind::Expr(e) => self.eval(e, fact),
                StmtKind::Item(_) | StmtKind::Verbatim => Taint::CLEAN,
            };
        }
        last
    }

    fn method_call(
        &mut self,
        recv: &Expr,
        name: &str,
        name_tok: usize,
        args: &[Expr],
        fact: &mut Fact,
    ) -> Taint {
        let r = self.eval(recv, fact);
        let arg_taints: Vec<Taint> = args.iter().map(|a| self.eval(a, fact)).collect();
        let joined_args = arg_taints.iter().copied().fold(Taint::CLEAN, Taint::join);

        // Sources.
        if name == "from_entropy" {
            return Taint {
                kinds: RNG,
                params: 0,
            };
        }
        if ITER_METHODS.contains(&name) && r.kinds & (HASH_CONTAINER | HASH_ITER) != 0 {
            return Taint {
                kinds: (r.kinds & VALUE_TAINT) | HASH_ITER,
                params: r.params,
            };
        }

        // Sanitizers.
        if SORT_METHODS.contains(&name) {
            if let ExprKind::Path(segs) = &recv.kind {
                if let [single] = segs.as_slice() {
                    if let Some(t) = fact.get_mut(single) {
                        t.kinds &= !HASH_ITER;
                    }
                }
            }
            return Taint::CLEAN;
        }
        if ORDER_INDEPENDENT.contains(&name) {
            return Taint {
                kinds: (r.kinds | joined_args.kinds) & (WALL_CLOCK | RNG | THREAD_ID),
                params: r.params | joined_args.params,
            };
        }
        // `clone`/`to_owned` preserve the value wholesale, container
        // bit included.
        if name == "clone" || name == "to_owned" {
            return r;
        }

        // Sinks.
        if SINK_NAMES.contains(&name) {
            let observed = r.join(joined_args);
            self.record_sink(name_tok, observed, name, None);
            return observed.derived();
        }

        // Workspace callee summaries (receiver taint is not tracked
        // through summaries — documented approximation).
        if let Some(summary) = self.summary_of(name) {
            let out = self.apply_summary(name, name_tok, summary, &arg_taints);
            return out.join(r.derived());
        }

        // Default: a method result derives from its receiver and args.
        r.join(joined_args).derived()
    }

    fn call(&mut self, e: &Expr, callee: &Expr, args: &[Expr], fact: &mut Fact) -> Taint {
        let arg_taints: Vec<Taint> = args.iter().map(|a| self.eval(a, fact)).collect();
        let joined_args = arg_taints.iter().copied().fold(Taint::CLEAN, Taint::join);
        let ExprKind::Path(segs) = &callee.kind else {
            self.eval(callee, fact);
            return joined_args.derived();
        };
        let last = segs.last().map(String::as_str).unwrap_or("");
        let penult = segs.len().checked_sub(2).map(|i| segs[i].as_str());

        // Sources.
        if last == "now" && matches!(penult, Some("Instant" | "SystemTime")) {
            return Taint {
                kinds: WALL_CLOCK,
                params: 0,
            };
        }
        if last == "thread_rng" {
            return Taint {
                kinds: RNG,
                params: 0,
            };
        }
        if last == "current" && segs.iter().any(|s| s == "thread") {
            return Taint {
                kinds: THREAD_ID,
                params: 0,
            };
        }
        if matches!(last, "new" | "default" | "with_capacity")
            && matches!(penult, Some("HashMap" | "HashSet"))
        {
            return Taint {
                kinds: HASH_CONTAINER,
                params: 0,
            };
        }

        // Sinks (free-function form).
        if SINK_NAMES.contains(&last) {
            self.record_sink(e.span.lo, joined_args, last, None);
            return joined_args.derived();
        }

        // Workspace callee summaries.
        if let Some(summary) = self.summary_of(last) {
            return self.apply_summary(last, e.span.lo, summary, &arg_taints);
        }

        joined_args.derived()
    }
}

impl<'a> Analysis<'a> for TaintAnalysis<'a> {
    type Fact = Fact;

    fn entry_fact(&self) -> Fact {
        self.param_seeds.iter().cloned().collect()
    }

    fn bottom(&self) -> Fact {
        Fact::new()
    }

    fn join(&self, into: &mut Fact, from: &Fact) -> bool {
        let mut changed = false;
        for (name, t) in from {
            let slot = into.entry(name.clone()).or_insert(Taint::CLEAN);
            let merged = slot.join(*t);
            changed |= merged != *slot;
            *slot = merged;
        }
        changed
    }

    fn transfer(&mut self, _at: (usize, usize), node: &Node<'a>, fact: &mut Fact) {
        match node {
            Node::Let { name, ty, init, .. } => {
                let mut t = init.map_or(Taint::CLEAN, |e| self.eval(e, fact));
                if ty_is_hash_container(ty) {
                    t.kinds |= HASH_CONTAINER;
                }
                // `let v: BTreeMap<_,_> = tainted.collect()` re-orders:
                // the BTree ascription certifies a sorted container.
                if ty_is_btree(ty) {
                    t.kinds &= !(HASH_ITER | HASH_CONTAINER);
                }
                if let Some(name) = name {
                    fact.insert((*name).to_string(), t);
                }
            }
            Node::ForBind { name, iter } => {
                let it = self.eval(iter, fact);
                let mut t = it.derived();
                if it.kinds & (HASH_CONTAINER | HASH_ITER) != 0 {
                    t.kinds |= HASH_ITER;
                }
                if let Some(name) = name {
                    fact.insert((*name).to_string(), t);
                }
            }
            Node::Eval(e) => {
                self.eval(e, fact);
            }
            Node::Ret(e) => {
                if let Some(e) = e {
                    let t = self.eval(e, fact);
                    self.ret = self.ret.join(t);
                }
            }
        }
    }
}

// --------------------------------------------------------------------------
// Per-function orchestration.
// --------------------------------------------------------------------------

/// Everything the flow rules compute in one pass.
pub struct FlowOutput {
    /// Surviving N1/A1/G1 findings.
    pub findings: Vec<Finding>,
    /// Findings silenced by suppressions.
    pub suppressed: usize,
    /// The G1 sharding-readiness inventory.
    pub shard: ShardReport,
    /// Wall time per rule family, for `--timings`.
    pub timings: Vec<(&'static str, Duration)>,
}

fn param_seeds(cg: &CallGraph<'_>, id: FnId) -> Vec<(String, Taint)> {
    cg.fns[id]
        .item
        .params
        .iter()
        .enumerate()
        .filter_map(|(i, p)| {
            let name = p.name.clone()?;
            let mut t = Taint {
                kinds: 0,
                params: 1u32 << i.min(31),
            };
            if ty_is_hash_container(&p.ty) {
                t.kinds |= HASH_CONTAINER;
            }
            Some((name, t))
        })
        .collect()
}

/// Runs the taint analysis over one function. Returns its summary and,
/// when `report` is set, records sink hits into it.
fn analyze_fn<'a>(
    syms: &'a Symbols,
    cg: &'a CallGraph<'a>,
    summaries: &'a [Summary],
    cfgs: &[Option<Cfg<'a>>],
    id: FnId,
    collect_hits: bool,
) -> (Summary, Vec<SinkHit>) {
    let Some(cfg) = &cfgs[id] else {
        return (Summary::default(), Vec::new());
    };
    let info = &cg.fns[id];
    let mk = |hits| TaintAnalysis {
        syms,
        cg,
        summaries,
        self_ty: info.self_ty.as_deref(),
        param_seeds: param_seeds(cg, id),
        ret: Taint::CLEAN,
        sank_params: 0,
        hits,
    };
    // Solve to fixpoint (hit recording off), then one deterministic
    // replay with the solved facts to read off returns and sinks.
    let mut solver = mk(None);
    let facts = solve(cfg, &mut solver);
    let mut reader = mk(if collect_hits { Some(Vec::new()) } else { None });
    replay(cfg, &mut reader, &facts, &mut |_, _, _, _| {});
    let summary = Summary {
        ret: reader.ret,
        sink_params: reader.sank_params,
    };
    (summary, reader.hits.unwrap_or_default())
}

// --------------------------------------------------------------------------
// A1 — allocation in hot loops.
// --------------------------------------------------------------------------

/// One allocation site found by the A1 walker.
struct AllocHit {
    tok: usize,
    what: String,
}

fn a1_walk_expr(e: &Expr, toks: &[Token], depth: u32, out: &mut Vec<AllocHit>) {
    match &e.kind {
        ExprKind::Call { callee, args } => {
            if depth > 0 {
                if let ExprKind::Path(segs) = &callee.kind {
                    let last = segs.last().map(String::as_str).unwrap_or("");
                    let penult = segs.len().checked_sub(2).map(|i| segs[i].as_str());
                    if matches!(last, "new" | "with_capacity" | "default")
                        && penult.is_some_and(|p| ALLOC_TYPES.contains(&p))
                    {
                        out.push(AllocHit {
                            tok: e.span.lo,
                            what: format!("{}::{last}", penult.unwrap_or("")),
                        });
                    }
                }
            }
            a1_walk_expr(callee, toks, depth, out);
            for a in args {
                a1_walk_expr(a, toks, depth, out);
            }
        }
        ExprKind::MethodCall {
            recv,
            name,
            name_tok,
            args,
        } => {
            if depth > 0 && ALLOC_METHODS.contains(&name.as_str()) {
                out.push(AllocHit {
                    tok: *name_tok,
                    what: format!(".{name}()"),
                });
            }
            a1_walk_expr(recv, toks, depth, out);
            for a in args {
                a1_walk_expr(a, toks, depth, out);
            }
        }
        ExprKind::MacroCall => {
            if depth > 0 {
                if let Some(t) = toks.get(e.span.lo) {
                    if t.kind == TokKind::Ident && ALLOC_MACROS.contains(&t.text.as_str()) {
                        out.push(AllocHit {
                            tok: e.span.lo,
                            what: format!("{}!", t.text),
                        });
                    }
                }
            }
        }
        ExprKind::For { iter, body } => {
            a1_walk_expr(iter, toks, depth, out);
            a1_walk_block(body, toks, depth + 1, out);
        }
        ExprKind::While { cond, body } => {
            a1_walk_expr(cond, toks, depth, out);
            a1_walk_block(body, toks, depth + 1, out);
        }
        ExprKind::Loop(body) => a1_walk_block(body, toks, depth + 1, out),
        ExprKind::If { cond, then, els } => {
            a1_walk_expr(cond, toks, depth, out);
            a1_walk_block(then, toks, depth, out);
            if let Some(els) = els {
                a1_walk_expr(els, toks, depth, out);
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            a1_walk_expr(scrutinee, toks, depth, out);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    a1_walk_expr(g, toks, depth, out);
                }
                a1_walk_expr(&arm.body, toks, depth, out);
            }
        }
        ExprKind::BlockExpr(b) => a1_walk_block(b, toks, depth, out),
        ExprKind::Closure(body) => a1_walk_expr(body, toks, depth, out),
        ExprKind::Unary(inner) => {
            if let Some(i) = inner {
                a1_walk_expr(i, toks, depth, out);
            }
        }
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            a1_walk_expr(lhs, toks, depth, out);
            a1_walk_expr(rhs, toks, depth, out);
        }
        ExprKind::Field { base, .. } | ExprKind::Cast(base) => a1_walk_expr(base, toks, depth, out),
        ExprKind::Index { base, index } => {
            a1_walk_expr(base, toks, depth, out);
            a1_walk_expr(index, toks, depth, out);
        }
        ExprKind::Paren(i) | ExprKind::Try(i) => a1_walk_expr(i, toks, depth, out),
        ExprKind::Group(elems) => {
            for el in elems {
                a1_walk_expr(el, toks, depth, out);
            }
        }
        ExprKind::StructLit { fields, rest, .. } => {
            for (_, _, v) in fields {
                if let Some(v) = v {
                    a1_walk_expr(v, toks, depth, out);
                }
            }
            if let Some(r) = rest {
                a1_walk_expr(r, toks, depth, out);
            }
        }
        ExprKind::Path(_) | ExprKind::Lit | ExprKind::Verbatim => {}
    }
}

fn a1_walk_block(b: &Block, toks: &[Token], depth: u32, out: &mut Vec<AllocHit>) {
    for stmt in &b.stmts {
        match &stmt.kind {
            StmtKind::Let { init, .. } => {
                if let Some(e) = init {
                    a1_walk_expr(e, toks, depth, out);
                }
            }
            StmtKind::Expr(e) => a1_walk_expr(e, toks, depth, out),
            StmtKind::Item(_) | StmtKind::Verbatim => {}
        }
    }
}

// --------------------------------------------------------------------------
// G1 — shard-safety inventory.
// --------------------------------------------------------------------------

/// One entry in the sharding-readiness report.
#[derive(Debug, Clone)]
pub struct ShardEntry {
    /// Workspace-relative file path (with `/` separators).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// `static-mut` | `thread-local` | `static` | `interior-mut-field`
    /// | `sync-field` | `mut-self-method`.
    pub kind: &'static str,
    /// Owning type (`-` for free statics).
    pub type_name: String,
    /// Field, fn or static name.
    pub member: String,
    /// `deny` (blocks sharding) or `report` (inventory only).
    pub classification: &'static str,
    /// Whether the member is on the hot (event-loop-reachable) path.
    pub hot: bool,
}

/// The machine-readable G1 report the item-2 sharded-DES PR consumes.
#[derive(Debug, Default)]
pub struct ShardReport {
    /// Hot-root function labels (`crate::fn`), deduplicated.
    pub roots: Vec<String>,
    /// Number of functions in the hot call-graph closure.
    pub hot_fns: usize,
    /// Inventory entries, sorted by (file, line, member).
    pub entries: Vec<ShardEntry>,
}

impl ShardReport {
    /// Renders the report as a deterministic JSON document.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"gmt-shard-readiness/1\",\"roots\":[");
        for (i, r) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(r));
        }
        let _ = write!(out, "],\"hot_fns\":{},\"entries\":[", self.hot_fns);
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"file\":{},\"line\":{},\"kind\":{},\"type\":{},\"member\":{},\
                 \"classification\":{},\"hot\":{}}}",
                json_str(&e.file),
                e.line,
                json_str(e.kind),
                json_str(&e.type_name),
                json_str(&e.member),
                json_str(e.classification),
                e.hot,
            );
        }
        out.push_str("]}");
        out
    }
}

fn ty_interior_mut(ty: &[String]) -> bool {
    ty.iter()
        .any(|t| matches!(t.as_str(), "Rc" | "RefCell" | "Cell" | "UnsafeCell"))
}

fn ty_sync_shared(ty: &[String]) -> bool {
    ty.iter()
        .any(|t| matches!(t.as_str(), "Arc" | "Mutex" | "RwLock"))
}

// --------------------------------------------------------------------------
// The workspace entry point.
// --------------------------------------------------------------------------

/// Runs N1, A1 and G1 over the analyzed workspace.
pub fn check_flow_rules(files: &[AnalyzedFile], syms: &Symbols, config: &Config) -> FlowOutput {
    let mut out = FlowOutput {
        findings: Vec::new(),
        suppressed: 0,
        shard: ShardReport::default(),
        timings: Vec::new(),
    };
    let n1 = config.level("N1") != Level::Allow;
    let a1 = config.level("A1") != Level::Allow;
    let g1 = config.level("G1") != Level::Allow;
    if !n1 && !a1 && !g1 {
        return out;
    }

    let t0 = Instant::now();
    let cg = CallGraph::build(files);
    // CFGs are built once and shared by summaries and reporting.
    let cfgs: Vec<Option<Cfg<'_>>> = cg
        .fns
        .iter()
        .map(|f| {
            if f.in_test {
                return None;
            }
            f.item
                .body
                .as_ref()
                .map(|b| build_cfg(b, &files[f.file].lexed.tokens))
        })
        .collect();

    // Hot set: roots by name, in the model crates, runtime code only.
    let mut roots: Vec<FnId> = Vec::new();
    for name in PER_EVENT_ROOTS.iter().chain(DRIVER_ROOTS) {
        for &id in cg.named(name) {
            let info = &cg.fns[id];
            if ROOT_CRATES.contains(&files[info.file].crate_name.as_str()) && !info.in_test {
                roots.push(id);
            }
        }
    }
    roots.sort_unstable();
    roots.dedup();
    let hot = cg.reachable(&roots);
    out.timings.push(("callgraph", t0.elapsed()));

    let ctx_of = |fi: usize| FileContext {
        rel_path: &files[fi].rel,
        crate_name: &files[fi].crate_name,
        target: files[fi].target,
    };

    // ---- N1: bottom-up summaries, then a reporting sweep. ----
    if n1 {
        let t = Instant::now();
        let mut summaries = vec![Summary::default(); cg.fns.len()];
        // Finite lattice + monotone joins: the loop stabilizes; the
        // round cap is sheer paranoia against a non-monotone bug.
        for _round in 0..12 {
            let mut changed = false;
            for id in 0..cg.fns.len() {
                let (s, _) = analyze_fn(syms, &cg, &summaries, &cfgs, id, false);
                let merged = Summary {
                    ret: summaries[id].ret.join(s.ret),
                    sink_params: summaries[id].sink_params | s.sink_params,
                };
                if merged != summaries[id] {
                    summaries[id] = merged;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for id in 0..cg.fns.len() {
            let (_, hits) = analyze_fn(syms, &cg, &summaries, &cfgs, id, true);
            if hits.is_empty() {
                continue;
            }
            let fi = cg.fns[id].file;
            let mut acc = Findings::new(&files[fi].lexed.suppressions);
            for hit in hits {
                let Some(tok) = files[fi].lexed.tokens.get(hit.tok) else {
                    continue;
                };
                let via = hit
                    .via
                    .as_deref()
                    .map(|v| format!(" via the call chain through `{v}`"))
                    .unwrap_or_default();
                acc.push(
                    ctx_of(fi),
                    config,
                    "N1",
                    tok,
                    format!(
                        "value derived from {} reaches export sink `{}`{via}; exported \
                         bytes would differ across runs — sort, seed, or drop the source",
                        taint_label(hit.kinds),
                        hit.sink
                    ),
                );
            }
            out.findings.append(&mut acc.findings);
            out.suppressed += acc.suppressed;
        }
        out.timings.push(("N1", t.elapsed()));
    }

    // ---- A1: allocation sites in hot loops. ----
    if a1 {
        let t = Instant::now();
        for (id, &is_hot) in hot.iter().enumerate() {
            if !is_hot || cg.fns[id].in_test {
                continue;
            }
            let info = &cg.fns[id];
            let Some(body) = &info.item.body else {
                continue;
            };
            let fi = info.file;
            // Bare-name reachability can leak the hot set into tooling
            // crates (a hot fn calling any `trace(…)` marks homonyms
            // everywhere); A1 is about the simulation model, so only the
            // model crates report.
            if !ROOT_CRATES.contains(&files[fi].crate_name.as_str()) {
                continue;
            }
            let toks = &files[fi].lexed.tokens;
            // Per-event roots: the whole body runs once per simulated
            // event, so it starts at loop depth 1.
            let base_depth = u32::from(
                PER_EVENT_ROOTS.contains(&info.item.name.as_str()) && roots.contains(&id),
            );
            let mut hits = Vec::new();
            a1_walk_block(body, toks, base_depth, &mut hits);
            if hits.is_empty() {
                continue;
            }
            let mut acc = Findings::new(&files[fi].lexed.suppressions);
            let where_ = if base_depth > 0 {
                "per-event body"
            } else {
                "hot loop"
            };
            for hit in hits {
                let Some(tok) = toks.get(hit.tok) else {
                    continue;
                };
                acc.push(
                    ctx_of(fi),
                    config,
                    "A1",
                    tok,
                    format!(
                        "allocation `{}` in the {where_} of `{}` (call-graph-reachable \
                         from the DES roots); hoist into a reused scratch buffer or arena \
                         (ROADMAP item 1)",
                        hit.what, info.item.name
                    ),
                );
            }
            out.findings.append(&mut acc.findings);
            out.suppressed += acc.suppressed;
        }
        out.timings.push(("A1", t.elapsed()));
    }

    // ---- G1: shard-safety findings + inventory. ----
    if g1 {
        let t = Instant::now();
        // Root labels for the report header.
        for &id in &roots {
            let info = &cg.fns[id];
            let label = format!(
                "{}::{}",
                files[info.file].crate_name,
                match &info.self_ty {
                    Some(ty) => format!("{ty}::{}", info.item.name),
                    None => info.item.name.clone(),
                }
            );
            if !out.shard.roots.contains(&label) {
                out.shard.roots.push(label);
            }
        }
        out.shard.roots.sort();
        out.shard.hot_fns = hot.iter().filter(|h| **h).count();

        // Hot types: receivers of hot methods, plus type names mentioned
        // by hot functions' signatures and bodies.
        let mut hot_types: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for (id, &is_hot) in hot.iter().enumerate() {
            if !is_hot {
                continue;
            }
            let info = &cg.fns[id];
            if let Some(ty) = &info.self_ty {
                hot_types.insert(ty.as_str());
            }
            let toks = &files[info.file].lexed.tokens;
            for seg in info
                .item
                .params
                .iter()
                .flat_map(|p| p.ty.iter())
                .chain(info.item.ret_ty.iter())
            {
                if syms.structs.contains_key(seg) {
                    hot_types.insert(seg.as_str());
                }
            }
            if let Some(body) = &info.item.body {
                let hi = body.span.hi.min(toks.len());
                for tok in &toks[body.span.lo..hi] {
                    if tok.kind == TokKind::Ident {
                        if let Some((name, _)) = syms.structs.get_key_value(&tok.text) {
                            hot_types.insert(name.as_str());
                        }
                    }
                }
            }
        }

        // Statics and thread-locals: a token sweep per runtime file.
        for (fi, file) in files.iter().enumerate() {
            if !matches!(file.target, TargetKind::Lib | TargetKind::Bin) {
                continue;
            }
            let toks = &file.lexed.tokens;
            let mask = test_mask(toks);
            let mut acc = Findings::new(&file.lexed.suppressions);
            for (i, tok) in toks.iter().enumerate() {
                if mask[i] || tok.kind != TokKind::Ident {
                    continue;
                }
                if tok.text == "static" {
                    let is_mut = toks.get(i + 1).is_some_and(|t| t.is_ident("mut"));
                    let name_at = if is_mut { i + 2 } else { i + 1 };
                    let Some(name_tok) = toks.get(name_at).filter(|t| t.kind == TokKind::Ident)
                    else {
                        continue;
                    };
                    let kind = if is_mut { "static-mut" } else { "static" };
                    let classification = if is_mut { "deny" } else { "report" };
                    out.shard.entries.push(ShardEntry {
                        file: slash_path(&file.rel),
                        line: name_tok.line,
                        kind,
                        type_name: "-".into(),
                        member: name_tok.text.clone(),
                        classification,
                        hot: true,
                    });
                    if is_mut {
                        acc.push(
                            ctx_of(fi),
                            config,
                            "G1",
                            name_tok,
                            format!(
                                "`static mut {}` is unshardable global state; the item-2 \
                                 sharded DES needs per-shard ownership",
                                name_tok.text
                            ),
                        );
                    }
                } else if tok.text == "thread_local"
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
                {
                    out.shard.entries.push(ShardEntry {
                        file: slash_path(&file.rel),
                        line: tok.line,
                        kind: "thread-local",
                        type_name: "-".into(),
                        member: "thread_local!".into(),
                        classification: "deny",
                        hot: true,
                    });
                    acc.push(
                        ctx_of(fi),
                        config,
                        "G1",
                        tok,
                        "`thread_local!` state ties results to scheduling; the sharded \
                         DES needs explicitly-owned per-shard state"
                            .to_string(),
                    );
                }
            }
            out.findings.append(&mut acc.findings);
            out.suppressed += acc.suppressed;
        }

        // Interior-mutability and sync-shared fields, from the symbol
        // table; deny only on hot types.
        for (sname, info) in &syms.structs {
            let file = &files[info.file];
            if !matches!(file.target, TargetKind::Lib | TargetKind::Bin) {
                continue;
            }
            let is_hot = hot_types.contains(sname.as_str());
            let mut acc = Findings::new(&file.lexed.suppressions);
            for field in &info.fields {
                let interior = ty_interior_mut(&field.ty);
                let sync = ty_sync_shared(&field.ty);
                if !interior && !sync {
                    continue;
                }
                let Some(name_tok) = file.lexed.tokens.get(field.name_tok) else {
                    continue;
                };
                let kind = if interior {
                    "interior-mut-field"
                } else {
                    "sync-field"
                };
                let deny = interior && is_hot;
                out.shard.entries.push(ShardEntry {
                    file: slash_path(&file.rel),
                    line: name_tok.line,
                    kind,
                    type_name: sname.clone(),
                    member: field.name.clone(),
                    classification: if deny { "deny" } else { "report" },
                    hot: is_hot,
                });
                if deny {
                    acc.push(
                        ctx_of(info.file),
                        config,
                        "G1",
                        name_tok,
                        format!(
                            "`{sname}.{}` holds `{}` on the event-loop path; \
                             single-threaded shared mutability blocks the item-2 \
                             sharded DES — give each shard its own copy or channel",
                            field.name,
                            field.ty.join("")
                        ),
                    );
                }
            }
            out.findings.append(&mut acc.findings);
            out.suppressed += acc.suppressed;
        }

        // &mut self methods on the hot path: inventory only.
        for (id, &is_hot) in hot.iter().enumerate() {
            if !is_hot || !cg.fns[id].receiver_mut {
                continue;
            }
            let info = &cg.fns[id];
            let file = &files[info.file];
            let Some(name_tok) = file.lexed.tokens.get(info.item.name_tok) else {
                continue;
            };
            out.shard.entries.push(ShardEntry {
                file: slash_path(&file.rel),
                line: name_tok.line,
                kind: "mut-self-method",
                type_name: info.self_ty.clone().unwrap_or_else(|| "-".into()),
                member: info.item.name.clone(),
                classification: "report",
                hot: true,
            });
        }

        out.shard
            .entries
            .sort_by(|a, b| (&a.file, a.line, &a.member).cmp(&(&b.file, b.line, &b.member)));
        out.timings.push(("G1", t.elapsed()));
    }

    out
}

fn slash_path(p: &std::path::Path) -> String {
    p.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
