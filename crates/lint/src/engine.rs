//! The lint driver: walks the workspace, runs the token rules and the
//! semantic (AST + symbol-table) rules over every file, and assembles
//! the final [`Report`].
//!
//! The workspace run is a five-pass pipeline:
//!
//! 1. read + lex + parse every member file into [`AnalyzedFile`]s,
//! 2. build the workspace [`Symbols`] table,
//! 3. per file: token rules (D1/D2/D3/P1/M1), S1 on crate roots, and
//!    the U1 unit-dimension walker (which needs the global fn table),
//! 4. workspace-wide C1 config-coverage and T1 trace-schema checks,
//! 5. the flow-sensitive families (N1/A1/G1) over the call graph and
//!    per-function CFGs ([`crate::flow`]).
//!
//! Every rule pass is individually timed; `--timings` surfaces the
//! accumulated per-rule wall time so budget regressions (the CI
//! `--max-millis` gate) can be attributed to a rule instead of bisected.

use std::fs;
use std::io;
use std::path::Path;
use std::time::Duration;
use std::time::Instant; // gmt-lint: allow(D1): host-side lint timing, not simulation.

use crate::diag::{Finding, Level, Report};
use crate::flow::{check_flow_rules, ShardReport};
use crate::rules::{
    check_config_coverage, check_d1, check_d2, check_d3, check_m1, check_p1, check_trace_schema,
    check_unit_dimensions, has_forbid_unsafe, test_mask, Config, FileContext, Findings, TargetKind,
};
use crate::symbols::{build_symbols, AnalyzedFile, Symbols};
use crate::workspace::workspace_files;

/// Accumulated wall time per rule pass, in first-seen order.
pub type Timings = Vec<(&'static str, Duration)>;

fn bump(timings: &mut Timings, name: &'static str, d: Duration) {
    if let Some(entry) = timings.iter_mut().find(|(n, _)| *n == name) {
        entry.1 += d;
    } else {
        timings.push((name, d));
    }
}

fn context<'a>(file: &'a AnalyzedFile) -> FileContext<'a> {
    FileContext {
        rel_path: &file.rel,
        crate_name: &file.crate_name,
        target: file.target,
    }
}

/// Runs every per-file rule over one analyzed file, attributing wall
/// time to each rule pass.
fn check_file(
    file: &AnalyzedFile,
    syms: &Symbols,
    config: &Config,
    report: &mut Report,
    timings: &mut Timings,
) {
    let ctx = context(file);
    let mut out = Findings::new(&file.lexed.suppressions);
    let mask = test_mask(&file.lexed.tokens);
    let mut timed = |name, f: &mut dyn FnMut(&mut Findings)| {
        let t = Instant::now();
        f(&mut out);
        bump(timings, name, t.elapsed());
    };
    timed("D1", &mut |out| {
        check_d1(ctx, &file.lexed, &mask, config, out)
    });
    timed("D2", &mut |out| check_d2(ctx, &file.lexed, config, out));
    timed("D3", &mut |out| {
        check_d3(ctx, &file.lexed, &mask, config, out)
    });
    timed("P1", &mut |out| {
        check_p1(ctx, &file.lexed, &mask, config, out)
    });
    timed("M1", &mut |out| check_m1(ctx, &file.lexed, config, out));
    timed("U1", &mut |out| {
        check_unit_dimensions(ctx, file, syms, config, out, None);
    });
    report.findings.extend(out.findings);
    report.suppressed += out.suppressed;
    let t = Instant::now();
    if file.crate_root
        && config.level("S1") != Level::Allow
        && !has_forbid_unsafe(&file.lexed.tokens)
    {
        report
            .findings
            .push(missing_forbid_unsafe(&file.rel, config));
    }
    bump(timings, "S1", t.elapsed());
    report.files_scanned += 1;
}

fn missing_forbid_unsafe(rel_path: &Path, config: &Config) -> Finding {
    Finding {
        rule: "S1",
        level: config.level("S1"),
        file: rel_path.to_path_buf(),
        line: 1,
        col: 1,
        end_line: 1,
        end_col: 1,
        message: "crate root is missing `#![forbid(unsafe_code)]`; every workspace crate \
                  must statically rule unsafe code out"
            .to_string(),
    }
}

/// Lints a single source string as if it lived at `rel_path`.
///
/// This is the unit the self-test fixtures drive: the same rule set the
/// workspace run uses — token rules, symbol-table rules, and the
/// flow-sensitive N1/A1/G1 families — minus the filesystem, with the
/// file acting as its own one-file workspace. Returns the surviving
/// findings plus the number of suppressed ones.
pub fn check_source(
    rel_path: &Path,
    crate_name: &str,
    target: TargetKind,
    source: &str,
    config: &Config,
) -> (Vec<Finding>, usize) {
    let files = [AnalyzedFile::analyze(
        rel_path.to_path_buf(),
        crate_name.to_string(),
        target,
        false,
        source,
    )];
    let (report, _, _) = lint_files_timed(&files, config);
    (report.findings, report.suppressed)
}

/// Lints a crate-root source string for S1 (`#![forbid(unsafe_code)]`).
pub fn check_crate_root(rel_path: &Path, source: &str, config: &Config) -> Option<Finding> {
    if config.level("S1") == Level::Allow {
        return None;
    }
    let lexed = crate::lexer::lex(source);
    if has_forbid_unsafe(&lexed.tokens) {
        return None;
    }
    Some(missing_forbid_unsafe(rel_path, config))
}

/// Reads, lexes and parses every workspace member file.
///
/// # Errors
///
/// Returns the first I/O error from the manifest walk or a source read.
pub fn load_workspace(root: &Path, include_vendor: bool) -> io::Result<Vec<AnalyzedFile>> {
    let mut files = Vec::new();
    for file in workspace_files(root, include_vendor)? {
        let source = fs::read_to_string(&file.abs)?;
        files.push(AnalyzedFile::analyze(
            file.rel,
            file.crate_name,
            file.target,
            file.crate_root,
            &source,
        ));
    }
    Ok(files)
}

/// Lints a pre-loaded set of files as one workspace.
pub fn lint_files(files: &[AnalyzedFile], config: &Config) -> Report {
    lint_files_timed(files, config).0
}

/// Lints a pre-loaded set of files, returning the report plus per-rule
/// wall-time attribution (`--timings`) and the G1 sharding-readiness
/// inventory (`--shard-report`).
pub fn lint_files_timed(files: &[AnalyzedFile], config: &Config) -> (Report, Timings, ShardReport) {
    let mut timings = Timings::new();
    let t = Instant::now();
    let syms = build_symbols(files);
    bump(&mut timings, "symbols", t.elapsed());
    let mut report = Report::default();
    for file in files {
        check_file(file, &syms, config, &mut report, &mut timings);
    }
    let t = Instant::now();
    let (c1, c1_suppressed) = check_config_coverage(files, &syms, config);
    bump(&mut timings, "C1", t.elapsed());
    let t = Instant::now();
    let (t1, t1_suppressed) = check_trace_schema(files, &syms, config);
    bump(&mut timings, "T1", t.elapsed());
    report.findings.extend(c1);
    report.findings.extend(t1);
    report.suppressed += c1_suppressed + t1_suppressed;
    let flow = check_flow_rules(files, &syms, config);
    report.findings.extend(flow.findings);
    report.suppressed += flow.suppressed;
    for (name, d) in flow.timings {
        bump(&mut timings, name, d);
    }
    sort_findings(&mut report.findings);
    (report, timings, flow.shard)
}

/// Lints the whole workspace rooted at `root`.
///
/// # Errors
///
/// Returns the first I/O error from reading the manifest or a source
/// file; individual findings never error.
pub fn lint_workspace(root: &Path, config: &Config, include_vendor: bool) -> io::Result<Report> {
    let files = load_workspace(root, include_vendor)?;
    Ok(lint_files(&files, config))
}

fn sort_findings(findings: &mut [Finding]) {
    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn s1_fires_on_a_missing_attribute_and_respects_overrides() {
        let rel = PathBuf::from("crates/x/src/lib.rs");
        let config = Config::default();
        let f = check_crate_root(&rel, "pub fn f() {}", &config).expect("missing attr");
        assert_eq!(f.rule, "S1");
        let mut relaxed = Config::default();
        relaxed
            .overrides
            .insert("S1".to_string(), crate::diag::Level::Allow);
        assert!(check_crate_root(&rel, "pub fn f() {}", &relaxed).is_none());
    }

    #[test]
    fn timed_run_attributes_every_rule_pass() {
        let files = [AnalyzedFile::analyze(
            PathBuf::from("crates/core/src/x.rs"),
            "core".into(),
            crate::rules::TargetKind::Lib,
            false,
            "pub fn access() { let v: Vec<u32> = Vec::new(); drop(v); }",
        )];
        let config = Config::default();
        let (_, timings, _) = lint_files_timed(&files, &config);
        let names: Vec<&str> = timings.iter().map(|(n, _)| *n).collect();
        for expected in [
            "D1", "D2", "D3", "P1", "M1", "U1", "S1", "C1", "T1", "N1", "A1", "G1",
        ] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
    }
}
