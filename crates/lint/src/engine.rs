//! The lint driver: walks the workspace, runs every rule over every
//! file, and assembles the final [`Report`].

use std::fs;
use std::io;
use std::path::Path;

use crate::diag::{Finding, Level, Report};
use crate::lexer::lex;
use crate::rules::{check_tokens, has_forbid_unsafe, Config, FileContext, Findings, TargetKind};
use crate::workspace::workspace_files;

/// Lints a single source string as if it lived at `rel_path`.
///
/// This is the unit the self-test fixtures drive: the same code path the
/// workspace run uses, minus the filesystem. Returns the surviving
/// findings plus the number of suppressed ones.
pub fn check_source(
    rel_path: &Path,
    crate_name: &str,
    target: TargetKind,
    source: &str,
    config: &Config,
) -> (Vec<Finding>, usize) {
    let lexed = lex(source);
    let ctx = FileContext {
        rel_path,
        crate_name,
        target,
    };
    let mut out = Findings::new(&lexed.suppressions);
    check_tokens(ctx, &lexed, config, &mut out);
    (out.findings, out.suppressed)
}

/// Lints a crate-root source string for S1 (`#![forbid(unsafe_code)]`).
pub fn check_crate_root(rel_path: &Path, source: &str, config: &Config) -> Option<Finding> {
    if config.level("S1") == Level::Allow {
        return None;
    }
    let lexed = lex(source);
    if has_forbid_unsafe(&lexed.tokens) {
        return None;
    }
    Some(Finding {
        rule: "S1",
        level: config.level("S1"),
        file: rel_path.to_path_buf(),
        line: 1,
        col: 1,
        message: "crate root is missing `#![forbid(unsafe_code)]`; every workspace crate \
                  must statically rule unsafe code out"
            .to_string(),
    })
}

/// Lints the whole workspace rooted at `root`.
///
/// # Errors
///
/// Returns the first I/O error from reading the manifest or a source
/// file; individual findings never error.
pub fn lint_workspace(root: &Path, config: &Config, include_vendor: bool) -> io::Result<Report> {
    let mut report = Report::default();
    for file in workspace_files(root, include_vendor)? {
        let source = fs::read_to_string(&file.abs)?;
        let (findings, suppressed) =
            check_source(&file.rel, &file.crate_name, file.target, &source, config);
        report.findings.extend(findings);
        report.suppressed += suppressed;
        if file.crate_root {
            if let Some(f) = check_crate_root(&file.rel, &source, config) {
                report.findings.push(f);
            }
        }
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn s1_fires_on_a_missing_attribute_and_respects_overrides() {
        let rel = PathBuf::from("crates/x/src/lib.rs");
        let config = Config::default();
        let f = check_crate_root(&rel, "pub fn f() {}", &config).expect("missing attr");
        assert_eq!(f.rule, "S1");
        assert_eq!(f.level, Level::Deny);
        assert!(check_crate_root(&rel, "#![forbid(unsafe_code)]", &config).is_none());
        let mut relaxed = Config::default();
        relaxed.overrides.insert("S1".to_string(), Level::Allow);
        assert!(check_crate_root(&rel, "pub fn f() {}", &relaxed).is_none());
    }
}
