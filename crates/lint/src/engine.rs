//! The lint driver: walks the workspace, runs the token rules and the
//! semantic (AST + symbol-table) rules over every file, and assembles
//! the final [`Report`].
//!
//! The workspace run is a four-pass pipeline:
//!
//! 1. read + lex + parse every member file into [`AnalyzedFile`]s,
//! 2. build the workspace [`Symbols`] table,
//! 3. per file: token rules (D1/D2/D3/P1/M1), S1 on crate roots, and
//!    the U1 unit-dimension walker (which needs the global fn table),
//! 4. workspace-wide C1 config-coverage and T1 trace-schema checks.

use std::fs;
use std::io;
use std::path::Path;

use crate::diag::{Finding, Level, Report};
use crate::rules::{
    check_config_coverage, check_tokens, check_trace_schema, check_unit_dimensions,
    has_forbid_unsafe, Config, FileContext, Findings, TargetKind,
};
use crate::symbols::{build_symbols, AnalyzedFile, Symbols};
use crate::workspace::workspace_files;

fn context<'a>(file: &'a AnalyzedFile) -> FileContext<'a> {
    FileContext {
        rel_path: &file.rel,
        crate_name: &file.crate_name,
        target: file.target,
    }
}

/// Runs every per-file rule over one analyzed file.
fn check_file(file: &AnalyzedFile, syms: &Symbols, config: &Config, report: &mut Report) {
    let ctx = context(file);
    let mut out = Findings::new(&file.lexed.suppressions);
    check_tokens(ctx, &file.lexed, config, &mut out);
    check_unit_dimensions(ctx, file, syms, config, &mut out, None);
    report.findings.extend(out.findings);
    report.suppressed += out.suppressed;
    if file.crate_root
        && config.level("S1") != Level::Allow
        && !has_forbid_unsafe(&file.lexed.tokens)
    {
        report
            .findings
            .push(missing_forbid_unsafe(&file.rel, config));
    }
    report.files_scanned += 1;
}

fn missing_forbid_unsafe(rel_path: &Path, config: &Config) -> Finding {
    Finding {
        rule: "S1",
        level: config.level("S1"),
        file: rel_path.to_path_buf(),
        line: 1,
        col: 1,
        message: "crate root is missing `#![forbid(unsafe_code)]`; every workspace crate \
                  must statically rule unsafe code out"
            .to_string(),
    }
}

/// Lints a single source string as if it lived at `rel_path`.
///
/// This is the unit the self-test fixtures drive: the same rule set the
/// workspace run uses, minus the filesystem, with the file acting as its
/// own one-file workspace for the symbol-table rules. Returns the
/// surviving findings plus the number of suppressed ones.
pub fn check_source(
    rel_path: &Path,
    crate_name: &str,
    target: TargetKind,
    source: &str,
    config: &Config,
) -> (Vec<Finding>, usize) {
    let files = [AnalyzedFile::analyze(
        rel_path.to_path_buf(),
        crate_name.to_string(),
        target,
        false,
        source,
    )];
    let syms = build_symbols(&files);
    let mut report = Report::default();
    check_file(&files[0], &syms, config, &mut report);
    let (c1, c1_suppressed) = check_config_coverage(&files, &syms, config);
    let (t1, t1_suppressed) = check_trace_schema(&files, &syms, config);
    report.findings.extend(c1);
    report.findings.extend(t1);
    report.suppressed += c1_suppressed + t1_suppressed;
    sort_findings(&mut report.findings);
    (report.findings, report.suppressed)
}

/// Lints a crate-root source string for S1 (`#![forbid(unsafe_code)]`).
pub fn check_crate_root(rel_path: &Path, source: &str, config: &Config) -> Option<Finding> {
    if config.level("S1") == Level::Allow {
        return None;
    }
    let lexed = crate::lexer::lex(source);
    if has_forbid_unsafe(&lexed.tokens) {
        return None;
    }
    Some(missing_forbid_unsafe(rel_path, config))
}

/// Reads, lexes and parses every workspace member file.
///
/// # Errors
///
/// Returns the first I/O error from the manifest walk or a source read.
pub fn load_workspace(root: &Path, include_vendor: bool) -> io::Result<Vec<AnalyzedFile>> {
    let mut files = Vec::new();
    for file in workspace_files(root, include_vendor)? {
        let source = fs::read_to_string(&file.abs)?;
        files.push(AnalyzedFile::analyze(
            file.rel,
            file.crate_name,
            file.target,
            file.crate_root,
            &source,
        ));
    }
    Ok(files)
}

/// Lints a pre-loaded set of files as one workspace.
pub fn lint_files(files: &[AnalyzedFile], config: &Config) -> Report {
    let syms = build_symbols(files);
    let mut report = Report::default();
    for file in files {
        check_file(file, &syms, config, &mut report);
    }
    let (c1, c1_suppressed) = check_config_coverage(files, &syms, config);
    let (t1, t1_suppressed) = check_trace_schema(files, &syms, config);
    report.findings.extend(c1);
    report.findings.extend(t1);
    report.suppressed += c1_suppressed + t1_suppressed;
    sort_findings(&mut report.findings);
    report
}

/// Lints the whole workspace rooted at `root`.
///
/// # Errors
///
/// Returns the first I/O error from reading the manifest or a source
/// file; individual findings never error.
pub fn lint_workspace(root: &Path, config: &Config, include_vendor: bool) -> io::Result<Report> {
    let files = load_workspace(root, include_vendor)?;
    Ok(lint_files(&files, config))
}

fn sort_findings(findings: &mut [Finding]) {
    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn s1_fires_on_a_missing_attribute_and_respects_overrides() {
        let rel = PathBuf::from("crates/x/src/lib.rs");
        let config = Config::default();
        let f = check_crate_root(&rel, "pub fn f() {}", &config).expect("missing attr");
        assert_eq!(f.rule, "S1");
        let mut relaxed = Config::default();
        relaxed
            .overrides
            .insert("S1".to_string(), crate::diag::Level::Allow);
        assert!(check_crate_root(&rel, "pub fn f() {}", &relaxed).is_none());
    }
}
