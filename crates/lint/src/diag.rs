//! Findings and their rendering: rustc-style text and CI-friendly JSON.

use std::fmt;
use std::path::PathBuf;

/// How severely a rule's findings are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Findings are not reported at all.
    Allow,
    /// Findings are reported but do not fail the run.
    Warn,
    /// Findings fail the run (non-zero exit).
    Deny,
}

impl Level {
    /// Parses a CLI level name.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "allow" => Some(Level::Allow),
            "warn" => Some(Level::Warn),
            "deny" => Some(Level::Deny),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Allow => "allow",
            Level::Warn => "warn",
            Level::Deny => "deny",
        })
    }
}

/// One rule violation at one source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The violated rule's id (`D1`, `M1`, …).
    pub rule: &'static str,
    /// The effective level the rule ran at.
    pub level: Level,
    /// Path of the offending file, relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line of the violation.
    pub line: u32,
    /// 1-based column of the violation.
    pub col: u32,
    /// 1-based line of the character just past the violation.
    pub end_line: u32,
    /// 1-based column of the character just past the violation.
    pub end_col: u32,
    /// Human-readable description of what was found and what to do.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}[{}]: {}", self.level, self.rule, self.message)?;
        write!(
            f,
            "  --> {}:{}:{}",
            self.file.display(),
            self.line,
            self.col
        )
    }
}

/// The outcome of one full lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived suppression, in walk order.
    pub findings: Vec<Finding>,
    /// Findings silenced by `// gmt-lint: allow(...)` comments.
    pub suppressed: usize,
    /// Findings silenced by a `--baseline` snapshot.
    pub baselined: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether any deny-level finding survived (the run should fail).
    pub fn has_deny(&self) -> bool {
        self.findings.iter().any(|f| f.level == Level::Deny)
    }

    /// Renders the whole report as rustc-style text.
    pub fn render_text(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{f}\n");
        }
        let denies = self
            .findings
            .iter()
            .filter(|f| f.level == Level::Deny)
            .count();
        let _ = write!(
            out,
            "gmt-lint: {} finding(s) ({} deny, {} warn), {} suppressed, {} files scanned",
            self.findings.len(),
            denies,
            self.findings.len() - denies,
            self.suppressed,
            self.files_scanned,
        );
        if self.baselined > 0 {
            let _ = write!(out, ", {} baselined", self.baselined);
        }
        out
    }

    /// Renders the whole report as a single JSON object for CI
    /// annotation. Emitted by hand — the linter has no dependencies —
    /// with all strings escaped per RFC 8259.
    pub fn render_json(&self) -> String {
        use fmt::Write;
        let mut out = String::from("{\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":{},\"level\":{},\"file\":{},\"line\":{},\"col\":{},\
                 \"end_line\":{},\"end_col\":{},\"message\":{}}}",
                json_str(f.rule),
                json_str(&f.level.to_string()),
                json_str(&f.file.display().to_string()),
                f.line,
                f.col,
                f.end_line,
                f.end_col,
                json_str(&f.message),
            );
        }
        let _ = write!(
            out,
            "],\"suppressed\":{},\"baselined\":{},\"files_scanned\":{},\"ok\":{}}}",
            self.suppressed,
            self.baselined,
            self.files_scanned,
            !self.has_deny(),
        );
        out
    }
}

/// Escapes `s` as a JSON string literal, quotes included.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(level: Level) -> Finding {
        Finding {
            rule: "D1",
            level,
            file: PathBuf::from("crates/sim/src/time.rs"),
            line: 3,
            col: 7,
            end_line: 3,
            end_col: 14,
            message: "wall-clock `Instant` in virtual-time code".to_string(),
        }
    }

    #[test]
    fn text_render_is_rustc_shaped() {
        let text = finding(Level::Deny).to_string();
        assert!(text.starts_with("deny[D1]:"), "{text}");
        assert!(text.contains("--> crates/sim/src/time.rs:3:7"), "{text}");
    }

    #[test]
    fn json_render_escapes_and_reports_ok() {
        let mut report = Report {
            files_scanned: 2,
            ..Report::default()
        };
        let mut f = finding(Level::Warn);
        f.message = "quote \" and backslash \\".to_string();
        report.findings.push(f);
        let json = report.render_json();
        assert!(json.contains("\\\""));
        assert!(json.contains("\\\\"));
        assert!(
            json.contains("\"end_line\":3") && json.contains("\"end_col\":14"),
            "diagnostics carry a full region, not just a start point: {json}"
        );
        assert!(json.contains("\"ok\":true"), "warn-only run is ok: {json}");
        report.findings.push(finding(Level::Deny));
        assert!(report.render_json().contains("\"ok\":false"));
        assert!(report.has_deny());
    }

    #[test]
    fn level_parsing_round_trips() {
        for l in [Level::Allow, Level::Warn, Level::Deny] {
            assert_eq!(Level::parse(&l.to_string()), Some(l));
        }
        assert_eq!(Level::parse("fatal"), None);
    }
}
