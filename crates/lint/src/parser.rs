//! A dependency-free recursive-descent parser over [`crate::lexer`]'s
//! token stream, producing the lossless AST in [`crate::ast`].
//!
//! Design constraints, in priority order:
//!
//! 1. **Never fail.** Anything unrecognised becomes a `Verbatim` node or
//!    stays as gap tokens inside its parent's span; the parser has no
//!    error type and cannot panic on malformed input.
//! 2. **Lose nothing.** Every token ends up inside exactly one node's
//!    span (enforced by the round-trip property test), so the semantic
//!    rules see the same source the token rules do.
//! 3. **Parse only what the rules need.** Types, patterns, generics and
//!    attributes are skipped as token runs; expressions get a full Pratt
//!    parser because the unit-dimension analysis walks them.
//!
//! Multi-character operators (`::`, `=>`, `..`, `<=`, `&&`, …) do not
//! exist in the lexer's single-character `Punct` stream; they are
//! detected here by *byte adjacency* — two puncts form one operator only
//! when the second starts exactly where the first ends.

use crate::ast::{
    Arm, BinOp, Block, EnumItem, Expr, ExprKind, FieldDef, File, FnItem, ImplItem, Item, ItemKind,
    ModItem, Param, Span, Stmt, StmtKind, StructItem,
};
use crate::lexer::{TokKind, Token};

/// Parses a whole token stream into a [`File`].
pub fn parse_file(tokens: &[Token]) -> File {
    let mut p = Parser {
        toks: tokens,
        pos: 0,
    };
    let items = p.parse_items(tokens.len());
    File {
        items,
        span: Span {
            lo: 0,
            hi: tokens.len(),
        },
    }
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at(&self, i: usize) -> Option<&'a Token> {
        self.toks.get(i)
    }

    fn is_kw(&self, i: usize, kw: &str) -> bool {
        self.at(i).is_some_and(|t| t.is_ident(kw))
    }

    fn is_p(&self, i: usize, c: char) -> bool {
        self.at(i).is_some_and(|t| t.is_punct(c))
    }

    /// Whether token `i + 1` starts at the byte where token `i` ends —
    /// i.e. the two glue into one multi-character operator.
    fn glued(&self, i: usize) -> bool {
        match (self.at(i), self.at(i + 1)) {
            (Some(a), Some(b)) => b.offset == a.offset + a.len,
            _ => false,
        }
    }

    /// Index of the token after the group opened at `open` (`(`/`[`/`{`),
    /// counting only the same bracket kind — sufficient for well-nested
    /// code, and harmlessly greedy otherwise.
    fn after_matching(&self, open: usize, end: usize) -> usize {
        let (o, c) = match self.at(open).map(|t| t.text.as_str()) {
            Some("(") => ('(', ')'),
            Some("[") => ('[', ']'),
            Some("{") => ('{', '}'),
            _ => return (open + 1).min(end),
        };
        let mut depth = 0usize;
        let mut i = open;
        while i < end {
            if self.is_p(i, o) {
                depth += 1;
            } else if self.is_p(i, c) {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    /// Skips a `<...>` generic-argument list starting at `<`, guarding
    /// against the `>` inside `->` (fn-pointer types in bounds).
    fn skip_generics(&mut self, end: usize) {
        debug_assert!(self.is_p(self.pos, '<'));
        let mut depth = 0usize;
        while self.pos < end {
            if self.is_p(self.pos, '<') {
                depth += 1;
            } else if self.is_p(self.pos, '-')
                && self.glued(self.pos)
                && self.is_p(self.pos + 1, '>')
            {
                self.pos += 2;
                continue;
            } else if self.is_p(self.pos, '>') {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    self.pos += 1;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// Skips stacked `#[...]` / `#![...]` attributes.
    fn skip_attrs(&mut self, end: usize) {
        loop {
            if self.pos >= end || !self.is_p(self.pos, '#') {
                return;
            }
            let bracket = if self.is_p(self.pos + 1, '[') {
                self.pos + 1
            } else if self.is_p(self.pos + 1, '!') && self.is_p(self.pos + 2, '[') {
                self.pos + 2
            } else {
                return;
            };
            self.pos = self.after_matching(bracket, end);
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(in path)`.
    fn skip_visibility(&mut self, end: usize) {
        if self.is_kw(self.pos, "pub") {
            self.pos += 1;
            if self.pos < end && self.is_p(self.pos, '(') {
                self.pos = self.after_matching(self.pos, end);
            }
        }
    }

    // ---------------------------------------------------------------- items

    fn parse_items(&mut self, end: usize) -> Vec<Item> {
        let mut items = Vec::new();
        while self.pos < end {
            let before = self.pos;
            items.push(self.parse_item(end));
            if self.pos <= before {
                // Guaranteed progress: swallow one stray token.
                self.pos = before + 1;
            }
        }
        items
    }

    fn parse_item(&mut self, end: usize) -> Item {
        let lo = self.pos;
        self.skip_attrs(end);
        self.skip_visibility(end);
        // Skip fn qualifiers so `pub const unsafe extern "C" fn` lands on `fn`.
        let mut k = self.pos;
        while self
            .at(k)
            .is_some_and(|t| matches!(t.text.as_str(), "default" | "const" | "async" | "unsafe"))
            && t_is_ident(self.at(k))
        {
            k += 1;
        }
        if self.is_kw(k, "extern") {
            k += 1;
            if self.at(k).is_some_and(|t| t.kind == TokKind::Str) {
                k += 1;
            }
        }
        let kind = match self.at(k).map(|t| t.text.as_str()) {
            Some("fn") if t_is_ident(self.at(k)) => {
                self.pos = k;
                self.parse_fn(lo, end)
            }
            Some("struct") if k == self.pos => self.parse_struct(lo, end),
            Some("enum") if k == self.pos => self.parse_enum(lo, end),
            Some("impl") if k == self.pos => self.parse_impl(lo, end),
            Some("mod") if k == self.pos => self.parse_mod(lo, end),
            _ => self.verbatim_item(end),
        };
        Item {
            span: Span { lo, hi: self.pos },
            kind,
        }
    }

    /// Consumes an unmodelled item: everything up to a top-level `;`, or
    /// through a top-level `{...}` body (plus a glued-on `;`, as in
    /// `use a::{b};`).
    fn verbatim_item(&mut self, end: usize) -> ItemKind {
        while self.pos < end {
            if self.is_p(self.pos, ';') {
                self.pos += 1;
                return ItemKind::Verbatim;
            }
            if matches!(
                self.at(self.pos).map(|t| t.text.as_str()),
                Some("(") | Some("[")
            ) {
                self.pos = self.after_matching(self.pos, end);
                continue;
            }
            if self.is_p(self.pos, '{') {
                self.pos = self.after_matching(self.pos, end);
                if self.pos < end && self.is_p(self.pos, ';') {
                    self.pos += 1;
                }
                return ItemKind::Verbatim;
            }
            self.pos += 1;
        }
        ItemKind::Verbatim
    }

    fn parse_fn(&mut self, _lo: usize, end: usize) -> ItemKind {
        self.pos += 1; // `fn`
        let Some(name_t) = self.at(self.pos).filter(|t| t.kind == TokKind::Ident) else {
            return self.verbatim_item(end);
        };
        let name = name_t.text.clone();
        let name_tok = self.pos;
        self.pos += 1;
        if self.is_p(self.pos, '<') {
            self.skip_generics(end);
        }
        if !self.is_p(self.pos, '(') {
            return self.verbatim_item(end);
        }
        let close = self.after_matching(self.pos, end); // one past `)`
        let (has_receiver, params) = self.parse_params(self.pos + 1, close.saturating_sub(1));
        self.pos = close;
        // Return type: `-> Ty` up to `{`, `;` or `where`.
        let mut ret_ty = Vec::new();
        if self.is_p(self.pos, '-') && self.glued(self.pos) && self.is_p(self.pos + 1, '>') {
            self.pos += 2;
            while self.pos < end
                && !self.is_p(self.pos, '{')
                && !self.is_p(self.pos, ';')
                && !self.is_kw(self.pos, "where")
            {
                ret_ty.push(self.toks[self.pos].text.clone());
                self.pos += 1;
            }
        }
        if self.is_kw(self.pos, "where") {
            while self.pos < end && !self.is_p(self.pos, '{') && !self.is_p(self.pos, ';') {
                self.pos += 1;
            }
        }
        let body = if self.is_p(self.pos, '{') {
            Some(self.parse_block(end))
        } else {
            if self.is_p(self.pos, ';') {
                self.pos += 1;
            }
            None
        };
        ItemKind::Fn(FnItem {
            name,
            name_tok,
            has_receiver,
            params,
            ret_ty,
            body,
        })
    }

    /// Parses the comma-separated parameter list in `[lo, hi)`.
    fn parse_params(&mut self, lo: usize, hi: usize) -> (bool, Vec<Param>) {
        let mut has_receiver = false;
        let mut params = Vec::new();
        for (seg_lo, seg_hi) in split_top_level(self.toks, lo, hi, ',') {
            let mut i = seg_lo;
            // Skip parameter attributes and reference/mut prefixes.
            while i < seg_hi && self.is_p(i, '#') {
                let b = if self.is_p(i + 1, '[') { i + 1 } else { break };
                i = self.after_matching(b, seg_hi);
            }
            let mut j = i;
            while j < seg_hi
                && (self.is_p(j, '&')
                    || self.at(j).is_some_and(|t| t.kind == TokKind::Lifetime)
                    || self.is_kw(j, "mut"))
            {
                j += 1;
            }
            if self.is_kw(j, "self") {
                has_receiver = true;
                continue;
            }
            // Pattern `name :` type — find the top-level `:` (not `::`).
            let mut colon = None;
            let mut depth = 0i32;
            let mut k = i;
            while k < seg_hi {
                match self.toks[k].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ":" if depth == 0 => {
                        if self.glued(k) && self.is_p(k + 1, ':') {
                            k += 2;
                            continue;
                        }
                        if k > i && self.is_p(k - 1, ':') {
                            k += 1;
                            continue;
                        }
                        colon = Some(k);
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            let Some(colon) = colon else {
                params.push(Param {
                    name: None,
                    ty: Vec::new(),
                });
                continue;
            };
            // Name: the last ident of a simple pattern (`x`, `mut x`).
            let pat: Vec<&Token> = self.toks[i..colon].iter().collect();
            let name = match pat.as_slice() {
                [t] if t.kind == TokKind::Ident && t.text != "_" => Some(t.text.clone()),
                [m, t] if m.is_ident("mut") && t.kind == TokKind::Ident => Some(t.text.clone()),
                _ => None,
            };
            let ty = self.toks[colon + 1..seg_hi]
                .iter()
                .map(|t| t.text.clone())
                .collect();
            params.push(Param { name, ty });
        }
        (has_receiver, params)
    }

    fn parse_struct(&mut self, _lo: usize, end: usize) -> ItemKind {
        self.pos += 1; // `struct`
        let Some(name_t) = self.at(self.pos).filter(|t| t.kind == TokKind::Ident) else {
            return self.verbatim_item(end);
        };
        let name = name_t.text.clone();
        let name_tok = self.pos;
        self.pos += 1;
        if self.is_p(self.pos, '<') {
            self.skip_generics(end);
        }
        if self.is_kw(self.pos, "where") {
            while self.pos < end && !self.is_p(self.pos, '{') && !self.is_p(self.pos, ';') {
                self.pos += 1;
            }
        }
        if self.is_p(self.pos, ';') {
            self.pos += 1;
            return ItemKind::Struct(StructItem {
                name,
                name_tok,
                fields: Vec::new(),
            });
        }
        if self.is_p(self.pos, '(') {
            // Tuple struct: skip the field list and the trailing `;`.
            self.pos = self.after_matching(self.pos, end);
            while self.pos < end && !self.is_p(self.pos, ';') {
                self.pos += 1;
            }
            if self.is_p(self.pos, ';') {
                self.pos += 1;
            }
            return ItemKind::Struct(StructItem {
                name,
                name_tok,
                fields: Vec::new(),
            });
        }
        if !self.is_p(self.pos, '{') {
            return self.verbatim_item(end);
        }
        let body_end = self.after_matching(self.pos, end); // one past `}`
        let mut fields = Vec::new();
        for (seg_lo, seg_hi) in split_top_level(self.toks, self.pos + 1, body_end - 1, ',') {
            let mut i = seg_lo;
            while i < seg_hi && self.is_p(i, '#') && self.is_p(i + 1, '[') {
                i = self.after_matching(i + 1, seg_hi);
            }
            let mut is_pub = false;
            if self.is_kw(i, "pub") {
                is_pub = true;
                i += 1;
                if self.is_p(i, '(') {
                    i = self.after_matching(i, seg_hi);
                }
            }
            let Some(name_t) = self.at(i).filter(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            if !self.is_p(i + 1, ':') {
                continue;
            }
            fields.push(FieldDef {
                name: name_t.text.clone(),
                name_tok: i,
                is_pub,
                ty: self.toks[i + 2..seg_hi]
                    .iter()
                    .map(|t| t.text.clone())
                    .collect(),
            });
        }
        self.pos = body_end;
        ItemKind::Struct(StructItem {
            name,
            name_tok,
            fields,
        })
    }

    fn parse_enum(&mut self, _lo: usize, end: usize) -> ItemKind {
        self.pos += 1; // `enum`
        let Some(name_t) = self.at(self.pos).filter(|t| t.kind == TokKind::Ident) else {
            return self.verbatim_item(end);
        };
        let name = name_t.text.clone();
        self.pos += 1;
        if self.is_p(self.pos, '<') {
            self.skip_generics(end);
        }
        if !self.is_p(self.pos, '{') {
            return self.verbatim_item(end);
        }
        let body_end = self.after_matching(self.pos, end);
        let mut variants = Vec::new();
        for (seg_lo, seg_hi) in split_top_level(self.toks, self.pos + 1, body_end - 1, ',') {
            let mut i = seg_lo;
            while i < seg_hi && self.is_p(i, '#') && self.is_p(i + 1, '[') {
                i = self.after_matching(i + 1, seg_hi);
            }
            if let Some(t) = self.at(i).filter(|t| t.kind == TokKind::Ident) {
                variants.push(t.text.clone());
            }
        }
        self.pos = body_end;
        ItemKind::Enum(EnumItem { name, variants })
    }

    fn parse_impl(&mut self, _lo: usize, end: usize) -> ItemKind {
        self.pos += 1; // `impl`
        if self.is_p(self.pos, '<') {
            self.skip_generics(end);
        }
        // Scan the header up to the body `{`, remembering the last path
        // ident after `for` (trait impls) or overall (inherent impls).
        let mut self_ty = String::new();
        let mut after_for = false;
        let mut self_ty_after_for = String::new();
        while self.pos < end && !self.is_p(self.pos, '{') {
            if self.is_kw(self.pos, "where") {
                while self.pos < end && !self.is_p(self.pos, '{') {
                    self.pos += 1;
                }
                break;
            }
            if self.is_kw(self.pos, "for") {
                after_for = true;
            } else if let Some(t) = self.at(self.pos).filter(|t| t.kind == TokKind::Ident) {
                if !matches!(t.text.as_str(), "dyn" | "mut" | "as" | "in") {
                    if after_for {
                        self_ty_after_for = t.text.clone();
                    } else {
                        self_ty = t.text.clone();
                    }
                }
            } else if self.is_p(self.pos, '<') {
                self.skip_generics(end);
                continue;
            }
            self.pos += 1;
        }
        if after_for && !self_ty_after_for.is_empty() {
            self_ty = self_ty_after_for;
        }
        if !self.is_p(self.pos, '{') {
            return ItemKind::Impl(ImplItem {
                self_ty,
                items: Vec::new(),
            });
        }
        let body_end = self.after_matching(self.pos, end);
        self.pos += 1; // `{`
        let items = self.parse_items(body_end - 1);
        self.pos = body_end;
        ItemKind::Impl(ImplItem { self_ty, items })
    }

    fn parse_mod(&mut self, _lo: usize, end: usize) -> ItemKind {
        self.pos += 1; // `mod`
        let Some(name_t) = self.at(self.pos).filter(|t| t.kind == TokKind::Ident) else {
            return self.verbatim_item(end);
        };
        let name = name_t.text.clone();
        self.pos += 1;
        if self.is_p(self.pos, ';') {
            self.pos += 1;
            return ItemKind::Verbatim;
        }
        if !self.is_p(self.pos, '{') {
            return self.verbatim_item(end);
        }
        let body_end = self.after_matching(self.pos, end);
        self.pos += 1;
        let items = self.parse_items(body_end - 1);
        self.pos = body_end;
        ItemKind::Mod(ModItem { name, items })
    }

    // ----------------------------------------------------------- statements

    fn parse_block(&mut self, end: usize) -> Block {
        debug_assert!(self.is_p(self.pos, '{'));
        let lo = self.pos;
        let body_end = self.after_matching(self.pos, end); // one past `}`
        self.pos += 1;
        let inner_end = body_end.saturating_sub(1);
        let mut stmts = Vec::new();
        while self.pos < inner_end {
            let before = self.pos;
            stmts.push(self.parse_stmt(inner_end));
            if self.pos <= before {
                self.pos = before + 1;
            }
        }
        self.pos = body_end;
        Block {
            span: Span { lo, hi: body_end },
            stmts,
        }
    }

    fn parse_stmt(&mut self, end: usize) -> Stmt {
        let lo = self.pos;
        self.skip_attrs(end);
        if self.is_p(self.pos, ';') {
            self.pos += 1;
            return Stmt {
                span: Span { lo, hi: self.pos },
                kind: StmtKind::Verbatim,
            };
        }
        if self.is_kw(self.pos, "let") {
            let kind = self.parse_let(end);
            return Stmt {
                span: Span { lo, hi: self.pos },
                kind,
            };
        }
        // Nested items inside blocks.
        let item_start = {
            let mut k = self.pos;
            if self.is_kw(k, "pub") {
                k += 1;
                if self.is_p(k, '(') {
                    k = self.after_matching(k, end);
                }
            }
            self.at(k).is_some_and(|t| {
                matches!(
                    t.text.as_str(),
                    "fn" | "struct"
                        | "enum"
                        | "impl"
                        | "mod"
                        | "use"
                        | "static"
                        | "trait"
                        | "type"
                        | "macro_rules"
                ) && t.kind == TokKind::Ident
            }) || (self.is_kw(k, "const")
                && self
                    .at(k + 1)
                    .is_some_and(|t| t.kind == TokKind::Ident && t.text != "fn")
                && self.is_p(k + 2, ':'))
                || (self.is_kw(k, "const") && self.is_kw(k + 1, "fn"))
        };
        if item_start {
            self.pos = lo;
            let item = self.parse_item(end);
            return Stmt {
                span: item.span,
                kind: StmtKind::Item(Box::new(item)),
            };
        }
        let expr = self.parse_expr(end, false);
        if self.is_p(self.pos, ';') {
            self.pos += 1;
        }
        Stmt {
            span: Span { lo, hi: self.pos },
            kind: StmtKind::Expr(expr),
        }
    }

    fn parse_let(&mut self, end: usize) -> StmtKind {
        self.pos += 1; // `let`
                       // Pattern: up to a top-level `:`, `=` or `;`.
        let pat_lo = self.pos;
        let mut depth = 0i32;
        while self.pos < end {
            match self.toks[self.pos].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ":" | "=" | ";" if depth == 0 => break,
                _ => {}
            }
            self.pos += 1;
        }
        let pat: Vec<&Token> = self.toks[pat_lo..self.pos].iter().collect();
        let (name, name_tok) = match pat.as_slice() {
            [t] if t.kind == TokKind::Ident && t.text != "_" => {
                (Some(t.text.clone()), Some(pat_lo))
            }
            [m, t] if m.is_ident("mut") && t.kind == TokKind::Ident => {
                (Some(t.text.clone()), Some(pat_lo + 1))
            }
            _ => (None, None),
        };
        // Optional type ascription.
        let mut ty = Vec::new();
        if self.is_p(self.pos, ':') {
            self.pos += 1;
            let mut depth = 0i32;
            while self.pos < end {
                match self.toks[self.pos].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=" | ";" if depth == 0 => break,
                    _ => {}
                }
                ty.push(self.toks[self.pos].text.clone());
                self.pos += 1;
            }
        }
        let mut init = None;
        if self.is_p(self.pos, '=') {
            self.pos += 1;
            init = Some(self.parse_expr(end, false));
            // let-else: the diverging block stays as gap tokens.
            if self.is_kw(self.pos, "else") {
                self.pos += 1;
                if self.is_p(self.pos, '{') {
                    self.pos = self.after_matching(self.pos, end);
                }
            }
        }
        if self.is_p(self.pos, ';') {
            self.pos += 1;
        }
        StmtKind::Let {
            name,
            name_tok,
            ty,
            init,
        }
    }

    // ---------------------------------------------------------- expressions

    fn parse_expr(&mut self, end: usize, no_struct: bool) -> Expr {
        self.expr_bp(end, 0, no_struct)
    }

    fn expr_bp(&mut self, end: usize, min_bp: u8, no_struct: bool) -> Expr {
        let lo = self.pos;
        let mut lhs = self.prefix(end, no_struct);
        loop {
            if self.pos >= end {
                break;
            }
            // Postfix operators bind tightest.
            if self.is_p(self.pos, '.') && !(self.glued(self.pos) && self.is_p(self.pos + 1, '.')) {
                lhs = self.postfix_dot(lo, lhs, end);
                continue;
            }
            if self.is_p(self.pos, '?') {
                self.pos += 1;
                lhs = Expr {
                    span: Span { lo, hi: self.pos },
                    kind: ExprKind::Try(Box::new(lhs)),
                };
                continue;
            }
            if self.is_p(self.pos, '(') {
                let close = self.after_matching(self.pos, end);
                let args = self.parse_expr_list(self.pos + 1, close - 1);
                self.pos = close;
                lhs = Expr {
                    span: Span { lo, hi: self.pos },
                    kind: ExprKind::Call {
                        callee: Box::new(lhs),
                        args,
                    },
                };
                continue;
            }
            if self.is_p(self.pos, '[') {
                let close = self.after_matching(self.pos, end);
                self.pos += 1;
                let index = self.parse_expr(close - 1, false);
                self.pos = close;
                lhs = Expr {
                    span: Span { lo, hi: self.pos },
                    kind: ExprKind::Index {
                        base: Box::new(lhs),
                        index: Box::new(index),
                    },
                };
                continue;
            }
            if self.is_kw(self.pos, "as") {
                self.pos += 1;
                self.skip_cast_type(end);
                lhs = Expr {
                    span: Span { lo, hi: self.pos },
                    kind: ExprKind::Cast(Box::new(lhs)),
                };
                continue;
            }
            let Some((op, width, lbp, rbp, assign, dimensional)) = self.peek_binop(end) else {
                break;
            };
            if lbp < min_bp {
                break;
            }
            let op_tok = self.pos;
            self.pos += width;
            // Open-ended ranges: `a..` with nothing range-worthy after.
            if op == BinOp::Range && !self.starts_expr(self.pos, end) {
                lhs = Expr {
                    span: Span { lo, hi: self.pos },
                    kind: ExprKind::Binary {
                        op,
                        op_tok,
                        lhs: Box::new(lhs),
                        rhs: Box::new(Expr {
                            span: Span::empty(self.pos),
                            kind: ExprKind::Verbatim,
                        }),
                    },
                };
                continue;
            }
            let rhs = self.expr_bp(end, rbp, no_struct);
            let kind = if assign {
                ExprKind::Assign {
                    op_tok,
                    dimensional,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                }
            } else {
                ExprKind::Binary {
                    op,
                    op_tok,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                }
            };
            lhs = Expr {
                span: Span { lo, hi: self.pos },
                kind,
            };
        }
        lhs
    }

    /// `(op, token width, left bp, right bp, is assignment, dimensional)`.
    #[allow(clippy::type_complexity)]
    fn peek_binop(&self, end: usize) -> Option<(BinOp, usize, u8, u8, bool, bool)> {
        let i = self.pos;
        if i >= end {
            return None;
        }
        let t = self.at(i)?;
        if t.kind != TokKind::Punct {
            return None;
        }
        let g1 = self.glued(i) && i + 1 < end;
        let c2 = if g1 {
            self.at(i + 1).map(|t| t.text.chars().next().unwrap_or(' '))
        } else {
            None
        };
        let g2 = g1 && self.glued(i + 1) && i + 2 < end;
        let c3 = if g2 {
            self.at(i + 2).map(|t| t.text.chars().next().unwrap_or(' '))
        } else {
            None
        };
        let c1 = t.text.chars().next().unwrap_or(' ');
        Some(match (c1, c2, c3) {
            // Compound assignments first (longest match wins).
            ('<', Some('<'), Some('=')) | ('>', Some('>'), Some('=')) => {
                (BinOp::MulDivBit, 3, 2, 1, true, false)
            }
            ('+', Some('='), _) | ('-', Some('='), _) => (BinOp::AddSub, 2, 2, 1, true, true),
            ('*', Some('='), _)
            | ('/', Some('='), _)
            | ('%', Some('='), _)
            | ('&', Some('='), _)
            | ('|', Some('='), _)
            | ('^', Some('='), _) => (BinOp::MulDivBit, 2, 2, 1, true, false),
            ('=', Some('='), _) => (BinOp::Cmp, 2, 10, 11, false, false),
            ('!', Some('='), _) => (BinOp::Cmp, 2, 10, 11, false, false),
            ('<', Some('='), _) => (BinOp::Cmp, 2, 10, 11, false, false),
            ('>', Some('='), _) => (BinOp::Cmp, 2, 10, 11, false, false),
            ('=', Some('>'), _) => return None, // match arm arrow
            ('=', _, _) => (BinOp::AddSub, 1, 2, 1, true, true), // plain assignment
            ('.', Some('.'), Some('=')) => (BinOp::Range, 3, 4, 5, false, false),
            ('.', Some('.'), _) => (BinOp::Range, 2, 4, 5, false, false),
            ('|', Some('|'), _) => (BinOp::Logic, 2, 6, 7, false, false),
            ('&', Some('&'), _) => (BinOp::Logic, 2, 8, 9, false, false),
            ('|', _, _) => (BinOp::MulDivBit, 1, 12, 13, false, false),
            ('^', _, _) => (BinOp::MulDivBit, 1, 14, 15, false, false),
            ('&', _, _) => (BinOp::MulDivBit, 1, 16, 17, false, false),
            ('<', Some('<'), _) | ('>', Some('>'), _) => {
                (BinOp::MulDivBit, 2, 18, 19, false, false)
            }
            ('<', _, _) | ('>', _, _) => (BinOp::Cmp, 1, 10, 11, false, false),
            ('+', _, _) | ('-', _, _) => (BinOp::AddSub, 1, 20, 21, false, false),
            ('*', _, _) | ('/', _, _) => (BinOp::MulDivBit, 1, 22, 23, false, false),
            ('%', _, _) => (BinOp::Rem, 1, 22, 23, false, false),
            _ => return None,
        })
    }

    /// Whether the token at `i` can start an expression (used for
    /// open-ended ranges).
    fn starts_expr(&self, i: usize, end: usize) -> bool {
        if i >= end {
            return false;
        }
        match self.at(i) {
            Some(t) if t.kind != TokKind::Punct => !t.is_ident("else"),
            Some(t) => matches!(
                t.text.as_str(),
                "(" | "[" | "{" | "-" | "!" | "*" | "&" | "|"
            ),
            None => false,
        }
    }

    fn postfix_dot(&mut self, lo: usize, base: Expr, end: usize) -> Expr {
        self.pos += 1; // `.`
        let Some(t) = self.at(self.pos) else {
            return Expr {
                span: Span { lo, hi: self.pos },
                kind: ExprKind::Verbatim,
            };
        };
        // Tuple index `t.0` or float-ish `t.0.1` (lexed as Num).
        if t.kind == TokKind::Num {
            let name = t.text.clone();
            let name_tok = self.pos;
            self.pos += 1;
            return Expr {
                span: Span { lo, hi: self.pos },
                kind: ExprKind::Field {
                    base: Box::new(base),
                    name,
                    name_tok,
                },
            };
        }
        if t.kind != TokKind::Ident {
            return Expr {
                span: Span { lo, hi: self.pos },
                kind: ExprKind::Verbatim,
            };
        }
        let name = t.text.clone();
        let name_tok = self.pos;
        self.pos += 1;
        // Optional turbofish before a call.
        if self.is_p(self.pos, ':')
            && self.glued(self.pos)
            && self.is_p(self.pos + 1, ':')
            && self.is_p(self.pos + 2, '<')
        {
            self.pos += 2;
            self.skip_generics(end);
        }
        if self.is_p(self.pos, '(') {
            let close = self.after_matching(self.pos, end);
            let args = self.parse_expr_list(self.pos + 1, close - 1);
            self.pos = close;
            return Expr {
                span: Span { lo, hi: self.pos },
                kind: ExprKind::MethodCall {
                    recv: Box::new(base),
                    name,
                    name_tok,
                    args,
                },
            };
        }
        Expr {
            span: Span { lo, hi: self.pos },
            kind: ExprKind::Field {
                base: Box::new(base),
                name,
                name_tok,
            },
        }
    }

    /// Parses comma-separated expressions in `[lo, hi)` (call arguments,
    /// array elements). `[x; n]` repeats split on `;` the same way.
    fn parse_expr_list(&mut self, lo: usize, hi: usize) -> Vec<Expr> {
        let saved = self.pos;
        let mut out = Vec::new();
        self.pos = lo;
        while self.pos < hi {
            let before = self.pos;
            out.push(self.parse_expr(hi, false));
            if self.is_p(self.pos, ',') || self.is_p(self.pos, ';') {
                self.pos += 1;
            }
            if self.pos <= before {
                self.pos = before + 1;
            }
        }
        self.pos = saved;
        out
    }

    fn skip_cast_type(&mut self, end: usize) {
        // `&`s and `mut`, then a path with optional generics, or a
        // parenthesised type. Deliberately does not consume `+`.
        while self.pos < end && (self.is_p(self.pos, '&') || self.is_kw(self.pos, "mut")) {
            self.pos += 1;
        }
        if self.is_p(self.pos, '(') {
            self.pos = self.after_matching(self.pos, end);
            return;
        }
        while self.pos < end {
            if self.at(self.pos).is_some_and(|t| t.kind == TokKind::Ident) {
                self.pos += 1;
                if self.is_p(self.pos, '<') {
                    self.skip_generics(end);
                }
                if self.is_p(self.pos, ':') && self.glued(self.pos) && self.is_p(self.pos + 1, ':')
                {
                    self.pos += 2;
                    continue;
                }
            }
            break;
        }
    }

    fn prefix(&mut self, end: usize, no_struct: bool) -> Expr {
        let lo = self.pos;
        let Some(t) = self.at(self.pos) else {
            return Expr {
                span: Span::empty(lo),
                kind: ExprKind::Verbatim,
            };
        };
        if self.pos >= end {
            return Expr {
                span: Span::empty(lo),
                kind: ExprKind::Verbatim,
            };
        }
        match t.kind {
            TokKind::Num | TokKind::Str | TokKind::Char => {
                self.pos += 1;
                Expr {
                    span: Span { lo, hi: self.pos },
                    kind: ExprKind::Lit,
                }
            }
            TokKind::Lifetime => {
                // Loop label: `'outer: loop { … }`.
                self.pos += 1;
                if self.is_p(self.pos, ':') {
                    self.pos += 1;
                }
                let inner = self.prefix(end, no_struct);
                Expr {
                    span: Span {
                        lo,
                        hi: self.pos.max(inner.span.hi),
                    },
                    kind: inner.kind,
                }
            }
            TokKind::Punct => self.prefix_punct(lo, end, no_struct),
            TokKind::Ident => self.prefix_ident(lo, end, no_struct),
        }
    }

    fn prefix_punct(&mut self, lo: usize, end: usize, no_struct: bool) -> Expr {
        let c = self.toks[lo].text.chars().next().unwrap_or(' ');
        match c {
            '-' | '!' | '*' => {
                self.pos += 1;
                let inner = self.expr_bp(end, 24, no_struct);
                Expr {
                    span: Span { lo, hi: self.pos },
                    kind: ExprKind::Unary(Some(Box::new(inner))),
                }
            }
            '&' => {
                self.pos += 1;
                while self.is_p(self.pos, '&') {
                    self.pos += 1;
                }
                if self.is_kw(self.pos, "mut") {
                    self.pos += 1;
                }
                let inner = self.expr_bp(end, 24, no_struct);
                Expr {
                    span: Span { lo, hi: self.pos },
                    kind: ExprKind::Unary(Some(Box::new(inner))),
                }
            }
            '|' => self.closure(lo, end),
            '{' => {
                let block = self.parse_block(end);
                Expr {
                    span: block.span,
                    kind: ExprKind::BlockExpr(block),
                }
            }
            '(' => {
                let close = self.after_matching(self.pos, end);
                let elems = self.parse_expr_list(self.pos + 1, close - 1);
                self.pos = close;
                let kind = if elems.len() == 1 && !self.contains_comma(lo + 1, close - 1) {
                    ExprKind::Paren(Box::new(elems.into_iter().next().expect("len checked")))
                } else {
                    ExprKind::Group(elems)
                };
                Expr {
                    span: Span { lo, hi: self.pos },
                    kind,
                }
            }
            '[' => {
                let close = self.after_matching(self.pos, end);
                let elems = self.parse_expr_list(self.pos + 1, close - 1);
                self.pos = close;
                Expr {
                    span: Span { lo, hi: self.pos },
                    kind: ExprKind::Group(elems),
                }
            }
            '.' if self.glued(self.pos) && self.is_p(self.pos + 1, '.') => {
                // Prefix range `..x` / `..=x` / bare `..`.
                self.pos += 2;
                if self.is_p(self.pos, '=') {
                    self.pos += 1;
                }
                if self.starts_expr(self.pos, end) {
                    let rhs = self.expr_bp(end, 5, no_struct);
                    Expr {
                        span: Span { lo, hi: self.pos },
                        kind: ExprKind::Unary(Some(Box::new(rhs))),
                    }
                } else {
                    Expr {
                        span: Span { lo, hi: self.pos },
                        kind: ExprKind::Verbatim,
                    }
                }
            }
            _ => {
                self.pos += 1;
                Expr {
                    span: Span { lo, hi: self.pos },
                    kind: ExprKind::Verbatim,
                }
            }
        }
    }

    fn contains_comma(&self, lo: usize, hi: usize) -> bool {
        let mut depth = 0i32;
        for i in lo..hi.min(self.toks.len()) {
            match self.toks[i].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 0 => return true,
                _ => {}
            }
        }
        false
    }

    fn closure(&mut self, lo: usize, end: usize) -> Expr {
        // `|params|` or `||`; `move` was consumed by the caller when present.
        self.pos += 1; // first `|`
        if !(self.glued(lo) && self.is_p(self.pos, '|') && self.toks[lo].is_punct('|')) {
            // Scan to the closing `|` of the parameter list.
            let mut depth = 0i32;
            while self.pos < end {
                match self.toks[self.pos].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "|" if depth == 0 => {
                        self.pos += 1;
                        break;
                    }
                    _ => {}
                }
                self.pos += 1;
            }
        } else {
            self.pos += 1; // the second `|` of `||`
        }
        // Optional `-> Ty` before a braced body.
        if self.is_p(self.pos, '-') && self.glued(self.pos) && self.is_p(self.pos + 1, '>') {
            self.pos += 2;
            while self.pos < end && !self.is_p(self.pos, '{') {
                self.pos += 1;
            }
        }
        let body = if self.is_p(self.pos, '{') {
            let block = self.parse_block(end);
            Expr {
                span: block.span,
                kind: ExprKind::BlockExpr(block),
            }
        } else {
            self.expr_bp(end, 2, false)
        };
        Expr {
            span: Span { lo, hi: self.pos },
            kind: ExprKind::Closure(Box::new(body)),
        }
    }

    fn prefix_ident(&mut self, lo: usize, end: usize, no_struct: bool) -> Expr {
        let word = self.toks[lo].text.as_str();
        match word {
            "if" => self.parse_if(lo, end),
            "match" => self.parse_match(lo, end),
            "while" => {
                self.pos += 1;
                let cond = self.parse_cond(end);
                let body = self.block_or_empty(end);
                Expr {
                    span: Span { lo, hi: self.pos },
                    kind: ExprKind::While {
                        cond: Box::new(cond),
                        body,
                    },
                }
            }
            "for" => {
                self.pos += 1;
                // Pattern up to the top-level `in`.
                let mut depth = 0i32;
                while self.pos < end {
                    match self.toks[self.pos].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "in" if depth == 0 && t_is_ident(self.at(self.pos)) => break,
                        _ => {}
                    }
                    self.pos += 1;
                }
                if self.is_kw(self.pos, "in") {
                    self.pos += 1;
                }
                let iter = self.expr_bp(end, 2, true);
                let body = self.block_or_empty(end);
                Expr {
                    span: Span { lo, hi: self.pos },
                    kind: ExprKind::For {
                        iter: Box::new(iter),
                        body,
                    },
                }
            }
            "loop" => {
                self.pos += 1;
                let body = self.block_or_empty(end);
                Expr {
                    span: Span { lo, hi: self.pos },
                    kind: ExprKind::Loop(body),
                }
            }
            "unsafe" | "async" if self.is_p(lo + 1, '{') => {
                self.pos += 1;
                let body = self.block_or_empty(end);
                Expr {
                    span: Span { lo, hi: self.pos },
                    kind: ExprKind::BlockExpr(body),
                }
            }
            "move" => {
                self.pos += 1;
                if self.is_p(self.pos, '|') {
                    let inner = self.closure(self.pos, end);
                    Expr {
                        span: Span { lo, hi: self.pos },
                        kind: inner.kind,
                    }
                } else {
                    // `move` block (async move { … }) or stray keyword.
                    let body = self.block_or_empty(end);
                    Expr {
                        span: Span { lo, hi: self.pos },
                        kind: ExprKind::BlockExpr(body),
                    }
                }
            }
            "return" | "break" | "continue" | "yield" => {
                self.pos += 1;
                if self
                    .at(self.pos)
                    .is_some_and(|t| t.kind == TokKind::Lifetime)
                {
                    self.pos += 1; // break 'label
                }
                let inner = if self.starts_expr(self.pos, end)
                    && !self.is_p(self.pos, '{')
                    && word != "continue"
                {
                    Some(Box::new(self.expr_bp(end, 2, no_struct)))
                } else {
                    None
                };
                Expr {
                    span: Span { lo, hi: self.pos },
                    kind: ExprKind::Unary(inner),
                }
            }
            _ => self.path_based(lo, end, no_struct),
        }
    }

    fn block_or_empty(&mut self, end: usize) -> Block {
        if self.is_p(self.pos, '{') {
            self.parse_block(end)
        } else {
            Block {
                span: Span::empty(self.pos),
                stmts: Vec::new(),
            }
        }
    }

    /// A condition expression: struct literals forbidden, `let` patterns
    /// skipped as gap tokens.
    fn parse_cond(&mut self, end: usize) -> Expr {
        if self.is_kw(self.pos, "let") {
            // `let PAT = expr` — skip the pattern to the top-level `=`.
            self.pos += 1;
            let mut depth = 0i32;
            while self.pos < end {
                match self.toks[self.pos].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=" if depth == 0
                        && !(self.glued(self.pos) && self.is_p(self.pos + 1, '=')) =>
                    {
                        break
                    }
                    _ => {}
                }
                self.pos += 1;
            }
            if self.is_p(self.pos, '=') {
                self.pos += 1;
            }
        }
        self.expr_bp(end, 2, true)
    }

    fn parse_if(&mut self, lo: usize, end: usize) -> Expr {
        self.pos += 1; // `if`
        let cond = self.parse_cond(end);
        let then = self.block_or_empty(end);
        let mut els = None;
        if self.is_kw(self.pos, "else") {
            self.pos += 1;
            if self.is_kw(self.pos, "if") {
                let chained = self.parse_if(self.pos, end);
                els = Some(Box::new(chained));
            } else if self.is_p(self.pos, '{') {
                let block = self.parse_block(end);
                els = Some(Box::new(Expr {
                    span: block.span,
                    kind: ExprKind::BlockExpr(block),
                }));
            }
        }
        Expr {
            span: Span { lo, hi: self.pos },
            kind: ExprKind::If {
                cond: Box::new(cond),
                then,
                els,
            },
        }
    }

    fn parse_match(&mut self, lo: usize, end: usize) -> Expr {
        self.pos += 1; // `match`
        let scrutinee = self.expr_bp(end, 2, true);
        if !self.is_p(self.pos, '{') {
            return Expr {
                span: Span { lo, hi: self.pos },
                kind: ExprKind::Match {
                    scrutinee: Box::new(scrutinee),
                    arms: Vec::new(),
                },
            };
        }
        let body_end = self.after_matching(self.pos, end); // one past `}`
        self.pos += 1;
        let inner_end = body_end - 1;
        let mut arms = Vec::new();
        while self.pos < inner_end {
            let arm_lo = self.pos;
            self.skip_attrs(inner_end);
            // Pattern: up to the top-level `=>` or guard `if`.
            let mut depth = 0i32;
            let mut guard = None;
            while self.pos < inner_end {
                match self.toks[self.pos].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=" if depth == 0 && self.glued(self.pos) && self.is_p(self.pos + 1, '>') => {
                        break
                    }
                    "if" if depth == 0 && t_is_ident(self.at(self.pos)) => break,
                    _ => {}
                }
                self.pos += 1;
            }
            if self.is_kw(self.pos, "if") {
                self.pos += 1;
                guard = Some(self.expr_bp(inner_end, 2, true));
            }
            if !(self.is_p(self.pos, '=') && self.is_p(self.pos + 1, '>')) {
                // Unparseable arm: bail out, leave the rest as gap tokens.
                self.pos = inner_end;
                break;
            }
            self.pos += 2; // `=>`
            let body = self.parse_expr(inner_end, false);
            if self.is_p(self.pos, ',') {
                self.pos += 1;
            }
            if self.pos <= arm_lo {
                self.pos = arm_lo + 1;
                continue;
            }
            arms.push(Arm {
                span: Span {
                    lo: arm_lo,
                    hi: self.pos,
                },
                guard,
                body,
            });
        }
        self.pos = body_end;
        Expr {
            span: Span { lo, hi: self.pos },
            kind: ExprKind::Match {
                scrutinee: Box::new(scrutinee),
                arms,
            },
        }
    }

    fn path_based(&mut self, lo: usize, end: usize, no_struct: bool) -> Expr {
        let mut segs = vec![self.toks[lo].text.clone()];
        self.pos += 1;
        loop {
            if self.is_p(self.pos, ':')
                && self.glued(self.pos)
                && self.is_p(self.pos + 1, ':')
                && self.pos + 1 < end
            {
                if self.is_p(self.pos + 2, '<') {
                    self.pos += 2;
                    self.skip_generics(end); // turbofish stays as gap tokens
                    continue;
                }
                if self
                    .at(self.pos + 2)
                    .is_some_and(|t| t.kind == TokKind::Ident)
                {
                    segs.push(self.toks[self.pos + 2].text.clone());
                    self.pos += 3;
                    continue;
                }
            }
            break;
        }
        // Macro invocation: `path!` + one delimited group, kept opaque.
        if self.is_p(self.pos, '!') && self.pos < end {
            if let Some(d) = self.at(self.pos + 1) {
                if matches!(d.text.as_str(), "(" | "[" | "{") {
                    self.pos = self.after_matching(self.pos + 1, end);
                    return Expr {
                        span: Span { lo, hi: self.pos },
                        kind: ExprKind::MacroCall,
                    };
                }
            }
        }
        // Struct literal: `Path { name: …, }` — shape-checked to avoid
        // eating the block of `if x { … }` lookalikes.
        if self.is_p(self.pos, '{') && !no_struct && self.looks_like_struct_lit(self.pos, end) {
            return self.struct_lit(lo, segs, end);
        }
        Expr {
            span: Span { lo, hi: self.pos },
            kind: ExprKind::Path(segs),
        }
    }

    fn looks_like_struct_lit(&self, open: usize, _end: usize) -> bool {
        // `{}` / `{ ident : ` / `{ ident , ` / `{ ident }` / `{ .. }`.
        if self.is_p(open + 1, '}') {
            return true;
        }
        if self.is_p(open + 1, '.') && self.is_p(open + 2, '.') {
            return true;
        }
        if self.at(open + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            return self.is_p(open + 2, ':')
                || self.is_p(open + 2, ',')
                || self.is_p(open + 2, '}');
        }
        false
    }

    fn struct_lit(&mut self, lo: usize, path: Vec<String>, end: usize) -> Expr {
        let body_end = self.after_matching(self.pos, end); // one past `}`
        self.pos += 1;
        let inner_end = body_end - 1;
        let mut fields = Vec::new();
        let mut rest = None;
        while self.pos < inner_end {
            let before = self.pos;
            if self.is_p(self.pos, '.') && self.is_p(self.pos + 1, '.') {
                self.pos += 2;
                rest = Some(Box::new(self.parse_expr(inner_end, false)));
                break;
            }
            if let Some(t) = self.at(self.pos).filter(|t| t.kind == TokKind::Ident) {
                let name = t.text.clone();
                let name_tok = self.pos;
                self.pos += 1;
                let value = if self.is_p(self.pos, ':') {
                    self.pos += 1;
                    Some(self.parse_expr(inner_end, false))
                } else {
                    None // shorthand `Foo { bar }`
                };
                fields.push((name, name_tok, value));
            }
            if self.is_p(self.pos, ',') {
                self.pos += 1;
            }
            if self.pos <= before {
                self.pos = before + 1;
            }
        }
        self.pos = body_end;
        Expr {
            span: Span { lo, hi: self.pos },
            kind: ExprKind::StructLit { path, fields, rest },
        }
    }
}

fn t_is_ident(t: Option<&Token>) -> bool {
    t.is_some_and(|t| t.kind == TokKind::Ident)
}

/// Splits `[lo, hi)` on top-level `sep` puncts, tracking `()`/`[]`/`{}`
/// *and* `<>` depth (the `>` of a glued `->` is exempt), so generic
/// arguments like `BTreeMap<u64, u64>` never split a field or parameter.
fn split_top_level(toks: &[Token], lo: usize, hi: usize, sep: char) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut start = lo;
    let mut i = lo;
    while i < hi.min(toks.len()) {
        let t = &toks[i];
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "<" if depth == 0 => angle += 1,
            "-" if i + 1 < hi
                && toks[i + 1].is_punct('>')
                && toks[i + 1].offset == t.offset + t.len =>
            {
                i += 2; // `->` — its `>` is not a closer
                continue;
            }
            ">" if depth == 0 => angle = (angle - 1).max(0),
            _ => {}
        }
        if depth == 0 && angle == 0 && t.is_punct(sep) {
            if i > start {
                out.push((start, i));
            }
            start = i + 1;
        }
        i += 1;
    }
    if start < hi {
        out.push((start, hi));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AnyNode, ItemKind};
    use crate::lexer::lex;

    fn parse(src: &str) -> (File, Vec<Token>) {
        let lexed = lex(src);
        let file = parse_file(&lexed.tokens);
        (file, lexed.tokens)
    }

    fn roundtrip(src: &str) {
        let (file, tokens) = parse(src);
        let printed = crate::ast::print_file(&file, &tokens);
        let relexed = lex(&printed).tokens;
        assert_eq!(
            relexed.len(),
            tokens.len(),
            "token count drifted for:\n{src}\nprinted:\n{printed}"
        );
        for (a, b) in tokens.iter().zip(relexed.iter()) {
            assert_eq!((a.kind, &a.text), (b.kind, &b.text), "in:\n{src}");
        }
    }

    #[test]
    fn items_are_recognised() {
        let (file, _) = parse(
            "#![forbid(unsafe_code)]\nuse std::fmt;\npub struct S { pub a_ns: u64 }\n\
             enum E { A, B(u32) }\nimpl fmt::Display for S { fn fmt(&self) -> u64 { self.a_ns } }\n\
             mod inner { pub fn f(x_us: u64) -> u64 { x_us } }\nconst N: usize = 3;",
        );
        let kinds: Vec<&str> = file
            .items
            .iter()
            .map(|i| match &i.kind {
                ItemKind::Fn(_) => "fn",
                ItemKind::Struct(_) => "struct",
                ItemKind::Enum(_) => "enum",
                ItemKind::Impl(_) => "impl",
                ItemKind::Mod(_) => "mod",
                ItemKind::Verbatim => "verbatim",
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["verbatim", "struct", "enum", "impl", "mod", "verbatim"],
            "{kinds:?}"
        );
        let ItemKind::Impl(imp) = &file.items[3].kind else {
            panic!("impl expected");
        };
        assert_eq!(imp.self_ty, "S");
        assert_eq!(imp.items.len(), 1);
    }

    #[test]
    fn fn_signatures_capture_params_and_ret() {
        let (file, _) = parse("fn f(a_ns: u64, mut b: Dur, _: u32) -> u64 { a_ns }");
        let ItemKind::Fn(f) = &file.items[0].kind else {
            panic!("fn expected");
        };
        assert_eq!(f.name, "f");
        assert!(!f.has_receiver);
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.params[0].name.as_deref(), Some("a_ns"));
        assert_eq!(f.params[1].name.as_deref(), Some("b"));
        assert_eq!(f.params[1].ty, vec!["Dur"]);
        assert_eq!(f.params[2].name, None);
        assert_eq!(f.ret_ty, vec!["u64"]);
    }

    #[test]
    fn receivers_and_generic_params_are_handled() {
        let (file, _) =
            parse("impl S { fn m(&mut self, map: BTreeMap<u64, u64>, f: impl Fn(u64) -> u64) {} }");
        let ItemKind::Impl(imp) = &file.items[0].kind else {
            panic!()
        };
        let ItemKind::Fn(m) = &imp.items[0].kind else {
            panic!()
        };
        assert!(m.has_receiver);
        assert_eq!(m.params.len(), 2, "{:?}", m.params);
        assert_eq!(m.params[0].name.as_deref(), Some("map"));
        assert_eq!(m.params[1].name.as_deref(), Some("f"));
    }

    #[test]
    fn struct_fields_record_visibility_and_types() {
        let (file, _) = parse(
            "pub struct C { pub seed: u64, pub(crate) lat: Dur, inner: Vec<u8>, pub m: BTreeMap<u64, u64> }",
        );
        let ItemKind::Struct(s) = &file.items[0].kind else {
            panic!()
        };
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["seed", "lat", "inner", "m"]);
        assert!(s.fields[0].is_pub && s.fields[1].is_pub && s.fields[3].is_pub);
        assert!(!s.fields[2].is_pub);
        assert_eq!(s.fields[1].ty, vec!["Dur"]);
    }

    #[test]
    fn enum_variants_are_listed() {
        let (file, _) = parse(
            "pub enum TraceEvent { Hit { page: u64 }, Miss(u32), #[doc(hidden)] Weird = 3, Plain }",
        );
        let ItemKind::Enum(e) = &file.items[0].kind else {
            panic!()
        };
        assert_eq!(e.variants, vec!["Hit", "Miss", "Weird", "Plain"]);
    }

    #[test]
    fn expressions_nest() {
        let (file, _) = parse("fn f() { let x_ns = (a_us + b.c_ns) * k; g(x_ns, h.i(j)); }");
        let ItemKind::Fn(f) = &file.items[0].kind else {
            panic!()
        };
        let body = f.body.as_ref().expect("body");
        assert_eq!(body.stmts.len(), 2);
        let StmtKind::Let { name, init, .. } = &body.stmts[0].kind else {
            panic!("let expected");
        };
        assert_eq!(name.as_deref(), Some("x_ns"));
        let ExprKind::Binary { op, .. } = &init.as_ref().unwrap().kind else {
            panic!("binary expected: {:?}", init);
        };
        assert_eq!(*op, BinOp::MulDivBit);
    }

    #[test]
    fn round_trips_cover_tricky_syntax() {
        for src in [
            "fn f() { let r = 0..10; let e = 1.5e-3; }",
            "fn f<'a>(x: &'a str) -> char { 'x' }",
            "fn f() { if let Some(v) = o { v } else { 0 }; }",
            "fn f() { match e { A { x, .. } | B(x) if x > 0 => x, 1..=9 => 0, _ => 1 } }",
            "fn f() { v.iter().map(|&p| p * 2).collect::<Vec<_>>() }",
            "fn f() { s! { a: 1 }; w.x[i] += y ** 2; }",
            "fn f() { 'outer: loop { break 'outer; } }",
            "fn f() { let t = (a, b.0, c?); let arr = [0u8; 16]; }",
            "fn f() { S { a: 1, ..S::default() } }",
            "fn f() { move || x + 1; let c = |a: u64, b| -> u64 { a + b }; }",
            "fn f() -> impl Iterator<Item = u64> { (0..3).map(|k| k << 1) }",
            "impl<T: Fn(u64) -> u64> S<T> where T: Clone { fn g(&self) {} }",
            "fn f() { let x = if c { S { f: 1 } } else { S { f: 2 } }; }",
            "macro_rules! m { ($x:expr) => { $x + 1 }; }",
            "fn f() { r#match.r#type = b\"bytes\"; }",
            "fn f() { a = b; a += 1; a <<= 2; x %= m; t &= u; }",
            "trait T { fn sig(&self) -> u64; }\nstatic X: u64 = 1;\ntype A = u64;",
            "fn f() { for (k, v) in m.iter().rev() { g(k, v); } }",
            "fn f() { while let Some(x) = it.next() { acc += x; } }",
            "fn f() { let s = &mut v[..n]; let t = &v[1..]; }",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn garbage_never_panics_and_still_round_trips() {
        for src in [
            "fn",
            "fn f(",
            "struct {",
            "impl ) weird [ tokens }",
            "fn f() { let = ; } }",
            "enum E { A",
            "# ! [ zzz",
            "fn f() { a .. }",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn every_token_is_owned_exactly_once() {
        let src = "fn f(a_ns: u64) -> u64 { match a_ns { 0 => 1, n => n * 2 } }";
        let (file, tokens) = parse(src);
        let mut indices = Vec::new();
        let mut cursor = 0;
        for item in &file.items {
            indices.extend(cursor..item.span.lo);
            crate::ast::emit_token_indices(AnyNode::Item(item), &mut indices);
            cursor = item.span.hi;
        }
        indices.extend(cursor..tokens.len());
        let expect: Vec<usize> = (0..tokens.len()).collect();
        assert_eq!(indices, expect, "gaps or overlaps in span ownership");
    }
}
