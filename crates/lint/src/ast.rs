//! A lightweight, lossless AST over the token stream from [`crate::lexer`].
//!
//! Every node carries a half-open token-index [`Span`]. Children always
//! lie inside their parent's span and never overlap, so the whole tree
//! can be printed back out by walking child spans and emitting the gap
//! tokens between them verbatim ([`emit_token_indices`]). The round-trip
//! property test re-lexes that printout and asserts token-stream
//! equality with the original file, which proves the parser attributes
//! every token somewhere — nothing the token-level rules relied on can
//! fall through the semantic layer.
//!
//! The tree is deliberately *shallow* about everything the rules do not
//! need: types, patterns, generics and attributes stay as unparsed gap
//! tokens inside their owning node's span, and anything the parser does
//! not recognise becomes a `Verbatim` node instead of an error.

/// A half-open range of token indices, `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Index of the first token of the node.
    pub lo: usize,
    /// One past the index of the last token of the node.
    pub hi: usize,
}

impl Span {
    /// An empty span at `at`.
    pub fn empty(at: usize) -> Span {
        Span { lo: at, hi: at }
    }
}

/// One parsed source file.
#[derive(Debug)]
pub struct File {
    /// Top-level items, in source order.
    pub items: Vec<Item>,
    /// The whole token stream (`0..tokens.len()`).
    pub span: Span,
}

/// A top-level or nested item.
#[derive(Debug)]
pub struct Item {
    /// All tokens of the item, attributes and visibility included.
    pub span: Span,
    /// What the item is.
    pub kind: ItemKind,
}

/// The kinds of item the analyses care about; everything else is
/// `Verbatim`.
#[derive(Debug)]
pub enum ItemKind {
    /// `fn name(params) -> ret { body }`.
    Fn(FnItem),
    /// `struct Name { fields }` (unit and tuple structs keep no fields).
    Struct(StructItem),
    /// `enum Name { variants }`.
    Enum(EnumItem),
    /// `impl [Trait for] Type { items }`.
    Impl(ImplItem),
    /// An inline `mod name { items }` (out-of-line `mod name;` is Verbatim).
    Mod(ModItem),
    /// `use`/`const`/`static`/`trait`/`type`/`macro_rules!`/unparsed.
    Verbatim,
}

/// A function item.
#[derive(Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Token index of the name.
    pub name_tok: usize,
    /// Whether the first parameter is a `self` receiver.
    pub has_receiver: bool,
    /// Non-receiver parameters, in order.
    pub params: Vec<Param>,
    /// Token texts of the return type (empty when `()`-returning).
    pub ret_ty: Vec<String>,
    /// The body, absent for trait-method signatures (`fn f();`).
    pub body: Option<Block>,
}

/// One function parameter.
#[derive(Debug)]
pub struct Param {
    /// The binding name, when the pattern is a simple identifier
    /// (possibly `mut`/`ref`-prefixed); `None` for `_` and tuple patterns.
    pub name: Option<String>,
    /// Token texts of the parameter's type.
    pub ty: Vec<String>,
}

/// A struct item with its named fields.
#[derive(Debug)]
pub struct StructItem {
    /// The struct's name.
    pub name: String,
    /// Token index of the name.
    pub name_tok: usize,
    /// Named fields (empty for unit and tuple structs).
    pub fields: Vec<FieldDef>,
}

/// One named struct field.
#[derive(Debug)]
pub struct FieldDef {
    /// The field's name.
    pub name: String,
    /// Token index of the name (for finding spans).
    pub name_tok: usize,
    /// Whether the field is `pub` (any visibility restriction counts).
    pub is_pub: bool,
    /// Token texts of the field's type.
    pub ty: Vec<String>,
}

/// An enum item with its variant names.
#[derive(Debug)]
pub struct EnumItem {
    /// The enum's name.
    pub name: String,
    /// Variant names, in declaration order.
    pub variants: Vec<String>,
}

/// An `impl` block.
#[derive(Debug)]
pub struct ImplItem {
    /// The last path segment of the implemented-for type (`Dur` for
    /// `impl fmt::Display for Dur`), empty when unrecognisable.
    pub self_ty: String,
    /// Items inside the impl body.
    pub items: Vec<Item>,
}

/// An inline module.
#[derive(Debug)]
pub struct ModItem {
    /// The module's name.
    pub name: String,
    /// Items inside the module body.
    pub items: Vec<Item>,
}

/// A `{ ... }` block of statements.
#[derive(Debug)]
pub struct Block {
    /// From the opening `{` to just past the closing `}`.
    pub span: Span,
    /// The statements inside.
    pub stmts: Vec<Stmt>,
}

/// One statement.
#[derive(Debug)]
pub struct Stmt {
    /// All tokens of the statement, trailing `;` included.
    pub span: Span,
    /// What the statement is.
    pub kind: StmtKind,
}

/// The statement kinds.
#[derive(Debug)]
pub enum StmtKind {
    /// `let pat[: ty] = init;`.
    Let {
        /// The bound name when the pattern is a simple identifier.
        name: Option<String>,
        /// Token index of that name.
        name_tok: Option<usize>,
        /// Token texts of the ascribed type, if any.
        ty: Vec<String>,
        /// The initializer expression, if any.
        init: Option<Expr>,
    },
    /// An expression statement (with or without `;`).
    Expr(Expr),
    /// A nested item.
    Item(Box<Item>),
    /// A bare `;` or anything unrecognised.
    Verbatim,
}

/// An expression.
#[derive(Debug)]
pub struct Expr {
    /// All tokens of the expression.
    pub span: Span,
    /// What the expression is.
    pub kind: ExprKind,
}

/// A binary operator, as its source text (`+`, `<=`, `&&`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` or `-`.
    AddSub,
    /// `%`.
    Rem,
    /// `*`, `/`, `<<`, `>>`, `&`, `|`, `^`.
    MulDivBit,
    /// `==`, `!=`, `<`, `>`, `<=`, `>=`.
    Cmp,
    /// `&&`, `||`.
    Logic,
    /// `..`, `..=`.
    Range,
}

/// The expression kinds.
#[derive(Debug)]
pub enum ExprKind {
    /// `a`, `a::b::c` (turbofish generics stay as gap tokens).
    Path(Vec<String>),
    /// A numeric/string/char literal.
    Lit,
    /// Prefix `-`/`!`/`*`/`&`/`&mut`/`return`/`break`/`continue`.
    Unary(Option<Box<Expr>>),
    /// `lhs OP rhs`.
    Binary {
        /// Operator class (drives the unit algebra).
        op: BinOp,
        /// Token index of the operator's first token.
        op_tok: usize,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `lhs = rhs` or `lhs OP= rhs`.
    Assign {
        /// Token index of the operator's first token.
        op_tok: usize,
        /// `true` for arithmetic compound assignments (`+=`, `-=`).
        dimensional: bool,
        /// Assignment target.
        lhs: Box<Expr>,
        /// Assigned value.
        rhs: Box<Expr>,
    },
    /// `base.name` (also tuple indices `t.0` and `.await`).
    Field {
        /// The accessed value.
        base: Box<Expr>,
        /// The field's name.
        name: String,
        /// Token index of the name.
        name_tok: usize,
    },
    /// `recv.name(args)`.
    MethodCall {
        /// The receiver.
        recv: Box<Expr>,
        /// The method's name.
        name: String,
        /// Token index of the name.
        name_tok: usize,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// `callee(args)`.
    Call {
        /// The called expression (usually a `Path`).
        callee: Box<Expr>,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// `base[index]`.
    Index {
        /// The indexed value.
        base: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
    },
    /// `inner as Ty` (the type stays as gap tokens).
    Cast(Box<Expr>),
    /// `(inner)` — exactly one parenthesised expression.
    Paren(Box<Expr>),
    /// `(a, b, …)`, `[a, b, …]`, `[x; n]` — any bracketed element list.
    Group(Vec<Expr>),
    /// `Path { field: value, …, ..rest }`.
    StructLit {
        /// The struct path.
        path: Vec<String>,
        /// `(name, name token, value)`; shorthand fields carry `None`.
        fields: Vec<(String, usize, Option<Expr>)>,
        /// The `..rest` expression, if present.
        rest: Option<Box<Expr>>,
    },
    /// `if cond { then } [else …]` (and `if let`).
    If {
        /// The condition (the `let` pattern, if any, stays as gap tokens).
        cond: Box<Expr>,
        /// The then-block.
        then: Block,
        /// `else` block or chained `if`.
        els: Option<Box<Expr>>,
    },
    /// `while cond { body }` (and `while let`).
    While {
        /// The loop condition.
        cond: Box<Expr>,
        /// The loop body.
        body: Block,
    },
    /// `for pat in iter { body }` (the pattern stays as gap tokens).
    For {
        /// The iterated expression.
        iter: Box<Expr>,
        /// The loop body.
        body: Block,
    },
    /// `loop { body }`.
    Loop(Block),
    /// `match scrutinee { arms }`.
    Match {
        /// The matched expression.
        scrutinee: Box<Expr>,
        /// The arms.
        arms: Vec<Arm>,
    },
    /// A `{ … }` block in expression position (incl. `unsafe`/`async`).
    BlockExpr(Block),
    /// `|params| body` / `move |params| body`.
    Closure(Box<Expr>),
    /// `name!(…)` / `name![…]` / `name!{…}` — an opaque atom.
    MacroCall,
    /// `inner?`.
    Try(Box<Expr>),
    /// Anything the parser could not shape; its tokens are all gap.
    Verbatim,
}

/// A `match` arm; the pattern stays as gap tokens inside the arm span.
#[derive(Debug)]
pub struct Arm {
    /// From the first pattern token past the body (and `,` if present).
    pub span: Span,
    /// The `if` guard, when present.
    pub guard: Option<Expr>,
    /// The arm's body expression.
    pub body: Expr,
}

/// A borrowed reference to any node, for uniform tree walks.
#[derive(Clone, Copy)]
pub enum AnyNode<'a> {
    /// An item node.
    Item(&'a Item),
    /// A block node.
    Block(&'a Block),
    /// A statement node.
    Stmt(&'a Stmt),
    /// An expression node.
    Expr(&'a Expr),
    /// A match-arm node.
    Arm(&'a Arm),
}

impl<'a> AnyNode<'a> {
    /// The node's token span.
    pub fn span(&self) -> Span {
        match self {
            AnyNode::Item(n) => n.span,
            AnyNode::Block(n) => n.span,
            AnyNode::Stmt(n) => n.span,
            AnyNode::Expr(n) => n.span,
            AnyNode::Arm(n) => n.span,
        }
    }

    /// Pushes the node's direct children, in source order.
    pub fn children(&self, out: &mut Vec<AnyNode<'a>>) {
        match self {
            AnyNode::Item(item) => match &item.kind {
                ItemKind::Fn(f) => {
                    if let Some(b) = &f.body {
                        out.push(AnyNode::Block(b));
                    }
                }
                ItemKind::Impl(i) => out.extend(i.items.iter().map(AnyNode::Item)),
                ItemKind::Mod(m) => out.extend(m.items.iter().map(AnyNode::Item)),
                ItemKind::Struct(_) | ItemKind::Enum(_) | ItemKind::Verbatim => {}
            },
            AnyNode::Block(b) => out.extend(b.stmts.iter().map(AnyNode::Stmt)),
            AnyNode::Stmt(s) => match &s.kind {
                StmtKind::Let { init, .. } => {
                    if let Some(e) = init {
                        out.push(AnyNode::Expr(e));
                    }
                }
                StmtKind::Expr(e) => out.push(AnyNode::Expr(e)),
                StmtKind::Item(i) => out.push(AnyNode::Item(i)),
                StmtKind::Verbatim => {}
            },
            AnyNode::Expr(e) => expr_children(e, out),
            AnyNode::Arm(a) => {
                if let Some(g) = &a.guard {
                    out.push(AnyNode::Expr(g));
                }
                out.push(AnyNode::Expr(&a.body));
            }
        }
    }
}

fn expr_children<'a>(e: &'a Expr, out: &mut Vec<AnyNode<'a>>) {
    match &e.kind {
        ExprKind::Path(_) | ExprKind::Lit | ExprKind::MacroCall | ExprKind::Verbatim => {}
        ExprKind::Unary(inner) => {
            if let Some(i) = inner {
                out.push(AnyNode::Expr(i));
            }
        }
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            out.push(AnyNode::Expr(lhs));
            out.push(AnyNode::Expr(rhs));
        }
        ExprKind::Field { base, .. } => out.push(AnyNode::Expr(base)),
        ExprKind::MethodCall { recv, args, .. } => {
            out.push(AnyNode::Expr(recv));
            out.extend(args.iter().map(AnyNode::Expr));
        }
        ExprKind::Call { callee, args } => {
            out.push(AnyNode::Expr(callee));
            out.extend(args.iter().map(AnyNode::Expr));
        }
        ExprKind::Index { base, index } => {
            out.push(AnyNode::Expr(base));
            out.push(AnyNode::Expr(index));
        }
        ExprKind::Cast(i) | ExprKind::Paren(i) | ExprKind::Try(i) | ExprKind::Closure(i) => {
            out.push(AnyNode::Expr(i));
        }
        ExprKind::Group(elems) => out.extend(elems.iter().map(AnyNode::Expr)),
        ExprKind::StructLit { fields, rest, .. } => {
            for (_, _, value) in fields {
                if let Some(v) = value {
                    out.push(AnyNode::Expr(v));
                }
            }
            if let Some(r) = rest {
                out.push(AnyNode::Expr(r));
            }
        }
        ExprKind::If { cond, then, els } => {
            out.push(AnyNode::Expr(cond));
            out.push(AnyNode::Block(then));
            if let Some(e) = els {
                out.push(AnyNode::Expr(e));
            }
        }
        ExprKind::While { cond, body } => {
            out.push(AnyNode::Expr(cond));
            out.push(AnyNode::Block(body));
        }
        ExprKind::For { iter, body } => {
            out.push(AnyNode::Expr(iter));
            out.push(AnyNode::Block(body));
        }
        ExprKind::Loop(b) | ExprKind::BlockExpr(b) => out.push(AnyNode::Block(b)),
        ExprKind::Match { scrutinee, arms } => {
            out.push(AnyNode::Expr(scrutinee));
            out.extend(arms.iter().map(AnyNode::Arm));
        }
    }
}

/// Emits the token indices covered by `node`: child spans recursively,
/// gap tokens verbatim. Malformed child spans (outside the parent or
/// overlapping a sibling) are skipped defensively — the round-trip test
/// then fails loudly on the missing tokens instead of panicking here.
pub fn emit_token_indices(node: AnyNode<'_>, out: &mut Vec<usize>) {
    let Span { lo, hi } = node.span();
    let mut kids: Vec<AnyNode<'_>> = Vec::new();
    node.children(&mut kids);
    let mut cursor = lo;
    for kid in kids {
        let ks = kid.span();
        if ks.lo < cursor || ks.hi > hi || ks.lo > ks.hi {
            continue;
        }
        out.extend(cursor..ks.lo);
        emit_token_indices(kid, out);
        cursor = ks.hi;
    }
    out.extend(cursor..hi);
}

/// Pretty-prints a parsed file by re-emitting every token the tree
/// covers, space-separated. The output is ugly but *token-faithful*:
/// re-lexing it yields the original stream, which is what the round-trip
/// property test asserts.
pub fn print_file(file: &File, tokens: &[crate::lexer::Token]) -> String {
    let mut indices = Vec::with_capacity(tokens.len());
    let mut cursor = file.span.lo;
    for item in &file.items {
        if item.span.lo >= cursor && item.span.hi <= file.span.hi {
            indices.extend(cursor..item.span.lo);
            emit_token_indices(AnyNode::Item(item), &mut indices);
            cursor = item.span.hi;
        }
    }
    indices.extend(cursor..file.span.hi);
    let mut out = String::new();
    for (n, i) in indices.iter().enumerate() {
        if n > 0 {
            out.push(' ');
        }
        out.push_str(&tokens[*i].text);
    }
    out
}
