//! The rule set: each rule encodes one invariant the reproduction's test
//! suites already rely on, turning tribal knowledge into a CI gate.
//!
//! | id | invariant |
//! |----|-----------|
//! | D1 | simulation crates use virtual time only — no `Instant`/`SystemTime` |
//! | D2 | every RNG is seeded via `gmt_sim::rng` — no `thread_rng`/`from_entropy`/`OsRng` |
//! | D3 | export paths iterate `BTreeMap`/`BTreeSet`, never `HashMap`/`HashSet` |
//! | S1 | every crate root carries `#![forbid(unsafe_code)]` |
//! | P1 | library code in `core`/`sim`/`serve` returns typed errors, not panics |
//! | M1 | every `TieringMetrics` field is summed in `merge()` |
//!
//! Rules operate on the token stream from [`crate::lexer`], so comments,
//! strings and doc examples can never produce false positives. Test code
//! (`#[cfg(test)]` modules, `#[test]` fns, `tests/` targets) is exempt
//! from D1/D3/P1 but *not* from D2: an unseeded RNG in a test makes the
//! committed fixtures unreproducible, which is exactly the failure mode
//! the lint exists to prevent.

use std::collections::BTreeMap;
use std::path::Path;

use crate::diag::{Finding, Level};
use crate::lexer::{LexOutput, TokKind, Token};

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Short stable id used in CLI flags and suppression comments.
    pub id: &'static str,
    /// Kebab-case human name.
    pub name: &'static str,
    /// Level the rule runs at unless overridden.
    pub default_level: Level,
    /// One-line statement of the invariant.
    pub summary: &'static str,
}

/// Every rule the linter knows, in report order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "D1",
        name: "no-wall-clock",
        default_level: Level::Deny,
        summary: "sim/gpu/ssd/pcie/core/serve run on virtual time; \
                  std::time::{Instant, SystemTime} would leak host timing into results",
    },
    Rule {
        id: "D2",
        name: "no-unseeded-rng",
        default_level: Level::Deny,
        summary: "all randomness must be threaded from a seed via gmt_sim::rng; \
                  thread_rng/from_entropy/OsRng break bit-reproducibility",
    },
    Rule {
        id: "D3",
        name: "no-hashmap-in-export",
        default_level: Level::Deny,
        summary: "export/serialization modules must use BTreeMap/BTreeSet so \
                  emitted key order is stable across runs and platforms",
    },
    Rule {
        id: "S1",
        name: "forbid-unsafe",
        default_level: Level::Deny,
        summary: "every crate root must carry #![forbid(unsafe_code)]",
    },
    Rule {
        id: "P1",
        name: "no-panic-in-lib",
        default_level: Level::Deny,
        summary: "library code in core/sim/serve must surface typed errors \
                  (like ConfigError) instead of unwrap/expect/panic!",
    },
    Rule {
        id: "M1",
        name: "metrics-conservation",
        default_level: Level::Deny,
        summary: "every TieringMetrics field must be summed in merge(), or \
                  per-tenant accounting silently loses counters",
    },
    Rule {
        id: "U1",
        name: "unit-dimension",
        default_level: Level::Deny,
        summary: "values with suffix-inferred units (_ns/_us/_ms/_bytes/_pages/_gbps) \
                  must not mix dimensions in arithmetic, comparisons, assignments or \
                  calls without an explicit conversion",
    },
    Rule {
        id: "C1",
        name: "config-coverage",
        default_level: Level::Deny,
        summary: "every pub config field must be read outside its definition (no dead \
                  knobs) and numeric fields must be range-checked in validate()",
    },
    Rule {
        id: "T1",
        name: "trace-schema",
        default_level: Level::Deny,
        summary: "every TraceEvent variant emitted by the model crates must be \
                  explicitly handled by crates/analysis, not wildcard-swallowed",
    },
    Rule {
        id: "N1",
        name: "nondeterminism-taint",
        default_level: Level::Deny,
        summary: "values derived from HashMap/HashSet iteration order, wall clocks, \
                  thread identity or unseeded RNG must not flow (through assignments, \
                  calls and returns) into export/trace sinks",
    },
    Rule {
        id: "A1",
        name: "alloc-in-hot-loop",
        default_level: Level::Deny,
        summary: "no Vec::new/Box::new/clone()/format!/collect() inside loops of \
                  functions call-graph-reachable from the DES access, warp-replay \
                  and ring-poll roots; hot-path churn is what the arena refactor removes",
    },
    Rule {
        id: "G1",
        name: "shard-safety",
        default_level: Level::Deny,
        summary: "state reachable from the event-loop path must be shardable: no \
                  static mut/thread_local, no Rc/RefCell/Cell fields on hot types \
                  (catalogued in the sharding-readiness report)",
    },
];

/// Looks a rule up by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// Effective per-run rule configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Level overrides by rule id (`--allow`/`--warn`/`--deny`).
    pub overrides: BTreeMap<String, Level>,
}

impl Config {
    /// The level `rule_id` runs at under this configuration.
    pub fn level(&self, rule_id: &str) -> Level {
        self.overrides
            .get(rule_id)
            .copied()
            .unwrap_or_else(|| rule(rule_id).map_or(Level::Allow, |r| r.default_level))
    }
}

/// Which compilation target a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// `src/**` of a library crate (minus `src/bin/`).
    Lib,
    /// `src/bin/**` or a binary-only crate.
    Bin,
    /// `tests/**` integration tests.
    Tests,
    /// `examples/**`.
    Example,
    /// `benches/**`.
    Bench,
}

/// Where a file sits in the workspace, for rule scoping.
#[derive(Debug, Clone, Copy)]
pub struct FileContext<'a> {
    /// Path relative to the workspace root (used in findings).
    pub rel_path: &'a Path,
    /// The member's short name: the directory under `crates/`
    /// (`sim`, `core`, …) or `gmt` for the root facade package.
    pub crate_name: &'a str,
    /// The target the file compiles into.
    pub target: TargetKind,
}

/// Crates whose runtime must never read the host clock (D1).
const D1_CRATES: &[&str] = &["sim", "gpu", "ssd", "pcie", "core", "serve"];
/// Crates whose library code must not panic (P1).
const P1_CRATES: &[&str] = &["core", "sim", "serve"];
/// File basenames that are export paths regardless of content (D3).
const D3_EXPORT_FILES: &[&str] = &["trace.rs", "tracesum.rs", "report.rs"];

/// Marks every token inside `#[cfg(test)] mod … { }` or `#[test] fn … { }`
/// regions, so runtime rules can skip test-only code.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && matches!(tokens.get(i + 1), Some(t) if t.is_punct('['))) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let mut is_test = false;
        // One or more stacked attributes; any test-ish one marks the item.
        while tokens.get(i).is_some_and(|t| t.is_punct('#'))
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
        {
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut content: Vec<&Token> = Vec::new();
            while let Some(t) = tokens.get(j) {
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if depth >= 1 {
                    content.push(t);
                }
                j += 1;
            }
            let first = content.first().map(|t| t.text.as_str());
            is_test |= first == Some("test")
                || (first == Some("cfg") && content.iter().any(|t| t.is_ident("test")));
            i = j + 1;
        }
        if !is_test {
            continue;
        }
        // Find the item's body: the first `{` before any top-level `;`
        // (attributed `use` items and the like have no body to mask).
        let mut j = i;
        let body_open = loop {
            match tokens.get(j) {
                Some(t) if t.is_punct('{') => break Some(j),
                Some(t) if t.is_punct(';') => break None,
                Some(_) => j += 1,
                None => break None,
            }
        };
        let Some(open) = body_open else {
            continue;
        };
        let mut depth = 0usize;
        let mut end = open;
        for (k, t) in tokens.iter().enumerate().skip(open) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    end = k;
                    break;
                }
            }
        }
        for m in mask.iter_mut().take(end + 1).skip(attr_start) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Whether a token stream belongs to a serde-deriving module (D3 scope):
/// anything that imports serde or derives `Serialize`/`Deserialize`.
pub fn is_serde_module(tokens: &[Token]) -> bool {
    tokens
        .iter()
        .any(|t| t.is_ident("serde") || t.is_ident("Serialize") || t.is_ident("Deserialize"))
}

/// Whether a crate-root token stream carries `#![forbid(unsafe_code)]` (S1).
pub fn has_forbid_unsafe(tokens: &[Token]) -> bool {
    tokens.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    })
}

/// Runs every token-level rule over one file, appending findings.
///
/// Kept as a thin wrapper over the per-rule functions below so callers
/// that do not care about `--timings` attribution keep a one-call API,
/// while the engine can time each rule family separately.
///
/// S1 is workspace-shaped (it fires on a *missing* attribute in a crate
/// root) and therefore lives in [`crate::engine`], not here.
pub fn check_tokens(ctx: FileContext<'_>, lexed: &LexOutput, config: &Config, out: &mut Findings) {
    let mask = test_mask(&lexed.tokens);
    check_d1(ctx, lexed, &mask, config, out);
    check_d2(ctx, lexed, config, out);
    check_d3(ctx, lexed, &mask, config, out);
    check_p1(ctx, lexed, &mask, config, out);
    check_m1(ctx, lexed, config, out);
}

/// D1 — no wall clock in simulation crates' runtime code.
pub fn check_d1(
    ctx: FileContext<'_>,
    lexed: &LexOutput,
    mask: &[bool],
    config: &Config,
    out: &mut Findings,
) {
    let tokens = &lexed.tokens;
    if !D1_CRATES.contains(&ctx.crate_name)
        || !matches!(ctx.target, TargetKind::Lib | TargetKind::Bin)
    {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "Instant" || t.text == "SystemTime" {
            out.push(ctx, config, "D1", t, format!(
                "wall-clock `{}` in virtual-time crate `{}`; simulation code must derive all timing from `gmt_sim::Time`",
                t.text, ctx.crate_name
            ));
        }
    }
}

/// D2 — no unseeded randomness anywhere, test code included.
pub fn check_d2(ctx: FileContext<'_>, lexed: &LexOutput, config: &Config, out: &mut Findings) {
    for t in lexed.tokens.iter() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "thread_rng" || t.text == "from_entropy" || t.text == "OsRng" {
            out.push(ctx, config, "D2", t, format!(
                "unseeded RNG source `{}`; route randomness through `gmt_sim::rng::seeded`/`derive` so runs are bit-reproducible",
                t.text
            ));
        }
    }
}

/// D3 — hash collections are banned in export paths.
pub fn check_d3(
    ctx: FileContext<'_>,
    lexed: &LexOutput,
    mask: &[bool],
    config: &Config,
    out: &mut Findings,
) {
    let tokens = &lexed.tokens;
    let in_tests_target = matches!(ctx.target, TargetKind::Tests | TargetKind::Bench);
    let basename = ctx
        .rel_path
        .file_name()
        .map(|n| n.to_string_lossy().to_string())
        .unwrap_or_default();
    let named_export = D3_EXPORT_FILES.contains(&basename.as_str());
    if !named_export && !is_serde_module(tokens) {
        return;
    }
    let scope = if named_export {
        format!("export path `{basename}`")
    } else {
        "serde-deriving module".to_string()
    };
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] || in_tests_target || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "HashMap" || t.text == "HashSet" {
            let ordered = if t.text == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            out.push(ctx, config, "D3", t, format!(
                "`{}` in {scope}; iteration order is nondeterministic — use `{}` so serialized key order is stable",
                t.text, ordered
            ));
        }
    }
}

/// P1 — library code in core/sim/serve must not panic.
pub fn check_p1(
    ctx: FileContext<'_>,
    lexed: &LexOutput,
    mask: &[bool],
    config: &Config,
    out: &mut Findings,
) {
    let tokens = &lexed.tokens;
    if !P1_CRATES.contains(&ctx.crate_name) || ctx.target != TargetKind::Lib {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let method_call = i > 0 && tokens[i - 1].is_punct('.');
        let bang = tokens.get(i + 1).is_some_and(|n| n.is_punct('!'));
        let hit = match t.text.as_str() {
            "unwrap" | "expect" => method_call,
            "panic" | "todo" | "unimplemented" => bang,
            _ => false,
        };
        if hit {
            out.push(ctx, config, "P1", t, format!(
                "`{}` in `{}` library code; prefer a typed error (see `ConfigError`) or justify with a suppression",
                t.text, ctx.crate_name
            ));
        }
    }
}

/// M1 — TieringMetrics fields must be conserved by merge().
pub fn check_m1(ctx: FileContext<'_>, lexed: &LexOutput, config: &Config, out: &mut Findings) {
    check_metrics_conservation(ctx, &lexed.tokens, config, out);
}

/// The M1 cross-check: in any file defining `struct TieringMetrics`,
/// every named field must appear inside the body of `fn merge` in the
/// same file (the merge destructures-and-sums, so a field that never
/// shows up there is silently dropped from per-tenant aggregation).
fn check_metrics_conservation(
    ctx: FileContext<'_>,
    tokens: &[Token],
    config: &Config,
    out: &mut Findings,
) {
    let Some(struct_at) = tokens
        .windows(2)
        .position(|w| w[0].is_ident("struct") && w[1].is_ident("TieringMetrics"))
    else {
        return;
    };
    // Collect field names: idents directly followed by `:` at depth 1 of
    // the struct body (`pub` and types never precede a `:` at depth 1).
    let Some(open) = tokens[struct_at..].iter().position(|t| t.is_punct('{')) else {
        return;
    };
    let mut fields: Vec<&Token> = Vec::new();
    let mut depth = 0usize;
    let mut struct_end = tokens.len();
    for (k, t) in tokens.iter().enumerate().skip(struct_at + open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                struct_end = k;
                break;
            }
        } else if depth == 1
            && t.kind == TokKind::Ident
            && tokens.get(k + 1).is_some_and(|n| n.is_punct(':'))
        {
            fields.push(t);
        }
    }
    // Find `fn merge` and gather every ident inside its body.
    let merge_at = tokens[struct_end..]
        .windows(2)
        .position(|w| w[0].is_ident("fn") && w[1].is_ident("merge"))
        .map(|p| struct_end + p);
    let Some(merge_at) = merge_at else {
        out.push(ctx, config, "M1", &tokens[struct_at], format!(
            "`TieringMetrics` has no `fn merge` in this file; {} field(s) are not aggregated anywhere",
            fields.len()
        ));
        return;
    };
    let Some(body_open) = tokens[merge_at..].iter().position(|t| t.is_punct('{')) else {
        return;
    };
    let mut body_idents: Vec<&str> = Vec::new();
    let mut depth = 0usize;
    for t in tokens.iter().skip(merge_at + body_open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokKind::Ident {
            body_idents.push(&t.text);
        }
    }
    for f in fields {
        if !body_idents.iter().any(|id| *id == f.text) {
            out.push(ctx, config, "M1", f, format!(
                "`TieringMetrics::{}` is never mentioned in `merge()`; merging per-tenant metrics would silently drop it",
                f.text
            ));
        }
    }
}

// --------------------------------------------------------------------------
// Semantic rules (U1/C1/T1), built on the AST + symbol table.
// --------------------------------------------------------------------------

use crate::ast::{BinOp, Block, Expr, ExprKind, FnItem, Item, ItemKind, Stmt, StmtKind};
use crate::symbols::{dim_of_ty, impl_context_map, unit_of_name, AnalyzedFile, Dim, Symbols, Unit};

/// Config structs C1 audits for dead knobs and validate() coverage.
pub const C1_STRUCTS: &[&str] = &["GmtConfig", "ReuseConfig", "SsdConfig", "HostLinkConfig"];

/// Crates whose unmasked code counts as *emitting* trace events (T1).
/// `sim` is excluded on purpose: it defines `TraceEvent` and its helper
/// methods legitimately name every variant.
pub const T1_EMITTER_CRATES: &[&str] = &["core", "serve", "baselines", "gpu", "ssd", "pcie"];

/// The crate whose exporters must handle every emitted variant (T1).
pub const T1_ANALYSIS_CRATE: &str = "analysis";

/// An auto-applicable unit conversion discovered by the U1 walker.
#[derive(Debug, Clone, Copy)]
pub struct U1Fix {
    /// First token of the expression to rewrite.
    pub lo_tok: usize,
    /// One past the last token of the expression.
    pub hi_tok: usize,
    /// The rewrite to apply.
    pub kind: U1FixKind,
}

/// The two safe U1 rewrites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum U1FixKind {
    /// Append `* <multiplier>` (coarse unit flowing into a finer slot).
    Mul(&'static str),
    /// Wrap the expression in `Dur::<ctor>(...)`.
    WrapDur(&'static str),
}

/// The multiplier converting a `from` value into `to`, when lossless.
fn finer_multiplier(to: Unit, from: Unit) -> Option<&'static str> {
    match (to, from) {
        (Unit::Ns, Unit::Us) => Some("1_000"),
        (Unit::Ns, Unit::Ms) => Some("1_000_000"),
        (Unit::Us, Unit::Ms) => Some("1_000"),
        _ => None,
    }
}

/// The `Dur` constructor accepting a raw value of `unit`.
fn dur_ctor(unit: Unit) -> Option<&'static str> {
    match unit {
        Unit::Ns => Some("from_nanos"),
        Unit::Us => Some("from_micros"),
        Unit::Ms => Some("from_millis"),
        _ => None,
    }
}

/// Runs the U1 unit-dimension analysis over one file's AST.
///
/// When `fixes` is provided, every finding whose rewrite is mechanically
/// safe (the source dimension is unambiguous and the expression is a
/// tighter-binding atom) also records a [`U1Fix`].
pub fn check_unit_dimensions(
    ctx: FileContext<'_>,
    file: &AnalyzedFile,
    syms: &Symbols,
    config: &Config,
    out: &mut Findings<'_>,
    fixes: Option<&mut Vec<U1Fix>>,
) {
    if config.level("U1") == Level::Allow && fixes.is_none() {
        return;
    }
    let mut w = UnitWalker {
        ctx,
        toks: &file.lexed.tokens,
        syms,
        config,
        out,
        locals: Vec::new(),
        fixes,
    };
    for item in &file.ast.items {
        w.item(item);
    }
}

struct UnitWalker<'a, 'b, 'c> {
    ctx: FileContext<'a>,
    toks: &'a [Token],
    syms: &'a Symbols,
    config: &'a Config,
    out: &'c mut Findings<'b>,
    /// Scope stack of local-binding dimensions; lookups scan outward.
    locals: Vec<BTreeMap<String, Dim>>,
    fixes: Option<&'c mut Vec<U1Fix>>,
}

/// Method names whose receiver and argument must share a dimension.
const U1_COMBINATORS: &[&str] = &[
    "min",
    "max",
    "clamp",
    "abs_diff",
    "saturating_add",
    "saturating_sub",
    "checked_add",
    "checked_sub",
    "wrapping_add",
    "wrapping_sub",
];

impl UnitWalker<'_, '_, '_> {
    fn lookup(&self, name: &str) -> Option<Dim> {
        self.locals.iter().rev().find_map(|s| s.get(name)).copied()
    }

    fn bind(&mut self, name: &str, dim: Dim) {
        if let Some(scope) = self.locals.last_mut() {
            scope.insert(name.to_string(), dim);
        }
    }

    fn report(&mut self, at_tok: usize, message: String) -> bool {
        let Some(at) = self.toks.get(at_tok) else {
            return false;
        };
        self.out.push(self.ctx, self.config, "U1", at, message)
    }

    /// Records a fix for `expr` when it binds tighter than `*` (so an
    /// appended multiplier or a wrapping call cannot change parse).
    fn record_fix(&mut self, expr: &Expr, kind: U1FixKind) {
        let atom = matches!(
            expr.kind,
            ExprKind::Path(_)
                | ExprKind::Field { .. }
                | ExprKind::MethodCall { .. }
                | ExprKind::Call { .. }
                | ExprKind::Index { .. }
                | ExprKind::Paren(_)
                | ExprKind::Lit
        );
        if !atom {
            return;
        }
        if let Some(fixes) = self.fixes.as_deref_mut() {
            fixes.push(U1Fix {
                lo_tok: expr.span.lo,
                hi_tok: expr.span.hi,
                kind,
            });
        }
    }

    fn item(&mut self, item: &Item) {
        match &item.kind {
            ItemKind::Fn(f) => self.fn_item(f),
            ItemKind::Impl(imp) => {
                for inner in &imp.items {
                    self.item(inner);
                }
            }
            ItemKind::Mod(m) => {
                for inner in &m.items {
                    self.item(inner);
                }
            }
            _ => {}
        }
    }

    fn fn_item(&mut self, f: &FnItem) {
        let Some(body) = &f.body else { return };
        let mut scope = BTreeMap::new();
        for p in &f.params {
            if let Some(name) = &p.name {
                let dim = match dim_of_ty(&p.ty) {
                    Dim::Unknown => unit_of_name(name).map_or(Dim::Unknown, Dim::Known),
                    d => d,
                };
                scope.insert(name.clone(), dim);
            }
        }
        self.locals.push(scope);
        self.block(body);
        self.locals.pop();
    }

    fn block(&mut self, b: &Block) {
        self.locals.push(BTreeMap::new());
        for stmt in &b.stmts {
            self.stmt(stmt);
        }
        self.locals.pop();
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Let {
                name,
                name_tok,
                ty,
                init,
            } => {
                let declared = match dim_of_ty(ty) {
                    Dim::Unknown => name
                        .as_deref()
                        .and_then(unit_of_name)
                        .map_or(Dim::Unknown, Dim::Known),
                    d => d,
                };
                let init_dim = init.as_ref().map(|e| self.expr(e));
                if let (Dim::Known(want), Some(Dim::Known(got))) = (declared, init_dim) {
                    if want != got {
                        let reported = self.report(
                            name_tok.unwrap_or(s.span.lo),
                            format!(
                                "`{}` carries unit `{}` but is initialized with a `{}` value; \
                                 convert explicitly",
                                name.as_deref().unwrap_or("binding"),
                                want.label(),
                                got.label()
                            ),
                        );
                        if reported {
                            if let (Some(mult), Some(e)) = (finer_multiplier(want, got), init) {
                                self.record_fix(e, U1FixKind::Mul(mult));
                            }
                        }
                    }
                }
                if let Some(name) = name {
                    let dim = if declared != Dim::Unknown {
                        declared
                    } else {
                        init_dim.unwrap_or(Dim::Unknown)
                    };
                    self.bind(name, dim);
                }
            }
            StmtKind::Expr(e) => {
                self.expr(e);
            }
            StmtKind::Item(item) => self.item(item),
            StmtKind::Verbatim => {}
        }
    }

    fn expr(&mut self, e: &Expr) -> Dim {
        match &e.kind {
            ExprKind::Lit | ExprKind::MacroCall | ExprKind::Verbatim => Dim::Unknown,
            ExprKind::Path(segs) => self.path_dim(segs),
            ExprKind::Unary(inner) => inner.as_ref().map_or(Dim::Unknown, |i| self.expr(i)),
            ExprKind::Try(inner) | ExprKind::Paren(inner) | ExprKind::Cast(inner) => {
                self.expr(inner)
            }
            ExprKind::Group(elems) => {
                for el in elems {
                    self.expr(el);
                }
                Dim::Unknown
            }
            ExprKind::Field { base, name, .. } => {
                self.expr(base);
                unit_of_name(name).map_or(Dim::Unknown, Dim::Known)
            }
            ExprKind::Index { base, index } => {
                let d = self.expr(base);
                self.expr(index);
                d
            }
            ExprKind::Binary {
                op,
                op_tok,
                lhs,
                rhs,
            } => self.binary(*op, *op_tok, lhs, rhs),
            ExprKind::Assign {
                op_tok,
                dimensional,
                lhs,
                rhs,
            } => {
                let ld = self.expr(lhs);
                let rd = self.expr(rhs);
                if *dimensional {
                    if let (Dim::Known(a), Dim::Known(b)) = (ld, rd) {
                        if a != b {
                            let reported = self.report(
                                *op_tok,
                                format!(
                                    "assignment mixes units: destination is `{}` but the value \
                                     is `{}`; convert explicitly",
                                    a.label(),
                                    b.label()
                                ),
                            );
                            if reported {
                                if let Some(mult) = finer_multiplier(a, b) {
                                    self.record_fix(rhs, U1FixKind::Mul(mult));
                                }
                            }
                        }
                    }
                }
                Dim::Unknown
            }
            ExprKind::MethodCall {
                recv,
                name,
                name_tok,
                args,
            } => self.method_call(recv, name, *name_tok, args),
            ExprKind::Call { callee, args } => self.call(callee, args),
            ExprKind::StructLit { path, fields, rest } => {
                self.struct_lit(path, fields, rest.as_deref());
                Dim::Unknown
            }
            ExprKind::If { cond, then, els } => {
                self.expr(cond);
                self.block(then);
                if let Some(els) = els {
                    self.expr(els);
                }
                Dim::Unknown
            }
            ExprKind::While { cond, body } => {
                self.expr(cond);
                self.block(body);
                Dim::Unknown
            }
            ExprKind::For { iter, body } => {
                self.expr(iter);
                self.block(body);
                Dim::Unknown
            }
            ExprKind::Loop(body) | ExprKind::BlockExpr(body) => {
                self.block(body);
                Dim::Unknown
            }
            ExprKind::Match { scrutinee, arms } => {
                self.expr(scrutinee);
                for arm in arms {
                    if let Some(g) = &arm.guard {
                        self.expr(g);
                    }
                    self.expr(&arm.body);
                }
                Dim::Unknown
            }
            ExprKind::Closure(body) => {
                self.locals.push(BTreeMap::new());
                self.expr(body);
                self.locals.pop();
                Dim::Unknown
            }
        }
    }

    fn path_dim(&self, segs: &[String]) -> Dim {
        if let [single] = segs {
            if let Some(d) = self.lookup(single) {
                return d;
            }
        }
        let last = match segs.last() {
            Some(l) => l.as_str(),
            None => return Dim::Unknown,
        };
        if matches!(last, "ZERO" | "MAX") {
            if segs.iter().any(|s| s == "Dur") {
                return Dim::Dur;
            }
            if segs.iter().any(|s| s == "Time") {
                return Dim::Time;
            }
        }
        unit_of_name(last).map_or(Dim::Unknown, Dim::Known)
    }

    fn binary(&mut self, op: BinOp, op_tok: usize, lhs: &Expr, rhs: &Expr) -> Dim {
        let ld = self.expr(lhs);
        let rd = self.expr(rhs);
        let checked = matches!(op, BinOp::AddSub | BinOp::Rem | BinOp::Cmp | BinOp::Range);
        if checked {
            if let (Dim::Known(a), Dim::Known(b)) = (ld, rd) {
                if a != b {
                    self.report(
                        op_tok,
                        format!(
                            "`{}` mixes unit `{}` with unit `{}`; convert one side explicitly \
                             (e.g. `* 1_000` or via `Dur`)",
                            self.toks.get(op_tok).map_or("?", |t| t.text.as_str()),
                            a.label(),
                            b.label()
                        ),
                    );
                }
            }
        }
        match op {
            BinOp::AddSub | BinOp::Rem => match (ld, rd) {
                (Dim::Time, _) | (_, Dim::Time) => Dim::Time,
                (Dim::Dur, _) | (_, Dim::Dur) => Dim::Dur,
                (Dim::Known(a), _) => Dim::Known(a),
                (_, Dim::Known(b)) => Dim::Known(b),
                _ => Dim::Unknown,
            },
            // `Dur * n` / `Dur / n` stay durations; raw products change
            // dimension and are deliberately untracked.
            BinOp::MulDivBit if ld == Dim::Dur => Dim::Dur,
            _ => Dim::Unknown,
        }
    }

    fn method_call(&mut self, recv: &Expr, name: &str, name_tok: usize, args: &[Expr]) -> Dim {
        let rd = self.expr(recv);
        let arg_dims: Vec<Dim> = args.iter().map(|a| self.expr(a)).collect();
        if U1_COMBINATORS.contains(&name) {
            if let Dim::Known(a) = rd {
                for (i, ad) in arg_dims.iter().enumerate() {
                    if let Dim::Known(b) = ad {
                        if a != *b {
                            self.report(
                                name_tok,
                                format!(
                                    "`.{name}()` combines unit `{}` with unit `{}` \
                                     (argument {}); convert explicitly",
                                    a.label(),
                                    b.label(),
                                    i + 1
                                ),
                            );
                        }
                    }
                }
            }
            return rd;
        }
        match name {
            "as_nanos" => Dim::Known(Unit::Ns),
            "clone" | "to_owned" => rd,
            // `Time::since` and friends return durations.
            "since" if rd == Dim::Time => Dim::Dur,
            _ => Dim::Unknown,
        }
    }

    fn call(&mut self, callee: &Expr, args: &[Expr]) -> Dim {
        let ExprKind::Path(segs) = &callee.kind else {
            self.expr(callee);
            for a in args {
                self.expr(a);
            }
            return Dim::Unknown;
        };
        let arg_dims: Vec<Dim> = args.iter().map(|a| self.expr(a)).collect();
        let fname = segs.last().map(String::as_str).unwrap_or("");
        // Argument checks apply only when every same-name signature in
        // the workspace agrees on arity and parameter units.
        if let Some(sigs) = self.syms.fns.get(fname) {
            let agree = !sigs.is_empty()
                && sigs
                    .iter()
                    .all(|s| s.arity == args.len() && s.param_units == sigs[0].param_units);
            if agree {
                for (i, (want, got)) in sigs[0].param_units.iter().zip(&arg_dims).enumerate() {
                    if let (Some(a), Dim::Known(b)) = (want, got) {
                        if a != b {
                            let at = args[i].span.lo;
                            self.report(
                                at,
                                format!(
                                    "argument {} of `{fname}` expects a `{}` value but gets \
                                     `{}`; convert explicitly",
                                    i + 1,
                                    a.label(),
                                    b.label()
                                ),
                            );
                        }
                    }
                }
            }
        }
        // Return dimension: explicit Dur/Time constructors first, then
        // the workspace signature (if unambiguous), then a name suffix.
        let penult = segs.len().checked_sub(2).map(|i| segs[i].as_str());
        if penult == Some("Dur") {
            return Dim::Dur;
        }
        if penult == Some("Time") {
            return Dim::Time;
        }
        if let Some(sigs) = self.syms.fns.get(fname) {
            if !sigs.is_empty() && sigs.iter().all(|s| s.ret_dim == sigs[0].ret_dim) {
                return sigs[0].ret_dim;
            }
        }
        unit_of_name(fname).map_or(Dim::Unknown, Dim::Known)
    }

    fn struct_lit(
        &mut self,
        path: &[String],
        fields: &[(String, usize, Option<Expr>)],
        rest: Option<&Expr>,
    ) {
        let sname = path.last().map(String::as_str).unwrap_or("");
        let sinfo = self.syms.structs.get(sname);
        for (fname, name_tok, value) in fields {
            let Some(value) = value else { continue };
            let vd = self.expr(value);
            if let (Some(want), Dim::Known(got)) = (unit_of_name(fname), vd) {
                if want != got {
                    let reported = self.report(
                        *name_tok,
                        format!(
                            "field `{fname}` carries unit `{}` but is initialized with a \
                             `{}` value; convert explicitly",
                            want.label(),
                            got.label()
                        ),
                    );
                    if reported {
                        if let Some(mult) = finer_multiplier(want, got) {
                            self.record_fix(value, U1FixKind::Mul(mult));
                        }
                    }
                }
                continue;
            }
            // Raw suffixed value flowing into a `Dur`-typed field: the
            // mechanically safe wrap is `Dur::from_<unit>(value)`.
            if let (Some(info), Dim::Known(got)) = (sinfo, vd) {
                let fdef = info.fields.iter().find(|f| &f.name == fname);
                if fdef.is_some_and(|f| f.ty_dim == Dim::Dur) {
                    let reported = self.report(
                        *name_tok,
                        format!(
                            "`Dur`-typed field `{fname}` is initialized with a raw `{}` \
                             value; wrap it in `Dur::from_…`",
                            got.label()
                        ),
                    );
                    if reported {
                        if let Some(ctor) = dur_ctor(got) {
                            self.record_fix(value, U1FixKind::WrapDur(ctor));
                        }
                    }
                }
            }
        }
        if let Some(rest) = rest {
            self.expr(rest);
        }
    }
}

/// Whether tokens `a` and `b` are byte-adjacent (multi-char operator).
fn adj(a: &Token, b: &Token) -> bool {
    b.offset == a.offset + a.len
}

/// Collects `<EnumName>::Variant` mentions in a file's unmasked code.
fn variant_mentions(
    file: &AnalyzedFile,
    enum_name: &str,
    variants: &[String],
) -> Vec<(String, usize)> {
    let toks = &file.lexed.tokens;
    let mask = test_mask(toks);
    let mut out = Vec::new();
    for i in 0..toks.len().saturating_sub(3) {
        if !toks[i].is_ident(enum_name) || mask[i] {
            continue;
        }
        if !(toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && adj(&toks[i + 1], &toks[i + 2]))
        {
            continue;
        }
        let v = &toks[i + 3];
        if v.kind == TokKind::Ident && variants.iter().any(|name| name == &v.text) {
            out.push((v.text.clone(), i + 3));
        }
    }
    out
}

/// C1: every pub field of the config structs must be read outside its
/// own definition, and numeric fields must be range-checked.
pub fn check_config_coverage(
    files: &[AnalyzedFile],
    syms: &Symbols,
    config: &Config,
) -> (Vec<Finding>, usize) {
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    if config.level("C1") == Level::Allow {
        return (findings, suppressed);
    }
    for sname in C1_STRUCTS {
        let Some(info) = syms.structs.get(*sname) else {
            continue;
        };
        let def_file = &files[info.file];
        let impl_map = impl_context_map(def_file);
        for field in info.fields.iter().filter(|f| f.is_pub) {
            let mut read = false;
            'files: for (fi, f) in files.iter().enumerate() {
                if !matches!(f.target, TargetKind::Lib | TargetKind::Bin) {
                    continue;
                }
                let toks = &f.lexed.tokens;
                let mask = test_mask(toks);
                for i in 0..toks.len().saturating_sub(1) {
                    if !toks[i].is_punct('.') || mask[i] {
                        continue;
                    }
                    // `..field` is range/struct-update syntax, not a read,
                    // and `.field(` is a method call.
                    if i > 0 && toks[i - 1].is_punct('.') {
                        continue;
                    }
                    if toks[i + 1].kind != TokKind::Ident || toks[i + 1].text != field.name {
                        continue;
                    }
                    if toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
                        continue;
                    }
                    // Inside the struct's own impl blocks (validate,
                    // accessors) does not count as wiring the knob up.
                    if fi == info.file
                        && impl_map.get(i + 1).and_then(Option::as_deref) == Some(sname)
                    {
                        continue;
                    }
                    read = true;
                    break 'files;
                }
            }
            let at = &def_file.lexed.tokens[field.name_tok];
            let ctx = FileContext {
                rel_path: &def_file.rel,
                crate_name: &def_file.crate_name,
                target: def_file.target,
            };
            let mut out = Findings::new(&def_file.lexed.suppressions);
            if !read {
                out.push(
                    ctx,
                    config,
                    "C1",
                    at,
                    format!(
                        "config field `{sname}.{}` is never read outside its own definition — \
                         a dead knob silently diverges the model from its configuration",
                        field.name
                    ),
                );
            }
            if field.numeric && !syms.validate_idents.contains(&field.name) {
                out.push(
                    ctx,
                    config,
                    "C1",
                    at,
                    format!(
                        "numeric config field `{sname}.{}` is not range-checked by any \
                         `validate()`; a nonsensical value would corrupt results silently",
                        field.name
                    ),
                );
            }
            findings.extend(out.findings);
            suppressed += out.suppressed;
        }
    }
    (findings, suppressed)
}

/// T1: every `TraceEvent` variant emitted by the model crates must be
/// explicitly named by the exporters in `crates/analysis`.
pub fn check_trace_schema(
    files: &[AnalyzedFile],
    syms: &Symbols,
    config: &Config,
) -> (Vec<Finding>, usize) {
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    if config.level("T1") == Level::Allow {
        return (findings, suppressed);
    }
    let Some(variants) = syms.enums.get("TraceEvent") else {
        return (findings, suppressed);
    };
    let mut handled: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for f in files {
        if f.crate_name == T1_ANALYSIS_CRATE
            && matches!(f.target, TargetKind::Lib | TargetKind::Bin)
        {
            for (v, _) in variant_mentions(f, "TraceEvent", variants) {
                handled.insert(v);
            }
        }
    }
    // First unmasked emission site per variant, in file order.
    let mut emitted: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        if !T1_EMITTER_CRATES.contains(&f.crate_name.as_str())
            || !matches!(f.target, TargetKind::Lib | TargetKind::Bin)
        {
            continue;
        }
        for (v, tok) in variant_mentions(f, "TraceEvent", variants) {
            emitted.entry(v).or_insert((fi, tok));
        }
    }
    for (v, (fi, tok)) in &emitted {
        if handled.contains(v) {
            continue;
        }
        let f = &files[*fi];
        let ctx = FileContext {
            rel_path: &f.rel,
            crate_name: &f.crate_name,
            target: f.target,
        };
        let mut out = Findings::new(&f.lexed.suppressions);
        out.push(
            ctx,
            config,
            "T1",
            &f.lexed.tokens[*tok],
            format!(
                "`TraceEvent::{v}` is emitted here but never explicitly handled in \
                 crates/{T1_ANALYSIS_CRATE} — a wildcard arm is silently dropping it \
                 from the exported summaries"
            ),
        );
        findings.extend(out.findings);
        suppressed += out.suppressed;
    }
    (findings, suppressed)
}

/// Accumulates findings for one file, applying level overrides and
/// `// gmt-lint: allow(...)` suppressions as they are pushed.
pub struct Findings<'a> {
    suppressions: &'a [crate::lexer::Suppression],
    /// Findings that survived, appended in token order.
    pub findings: Vec<Finding>,
    /// How many findings a suppression silenced.
    pub suppressed: usize,
}

impl<'a> Findings<'a> {
    /// Creates an accumulator using the file's suppression comments.
    pub fn new(suppressions: &'a [crate::lexer::Suppression]) -> Findings<'a> {
        Findings {
            suppressions,
            findings: Vec::new(),
            suppressed: 0,
        }
    }

    /// Returns whether the finding survived (not allowed, not suppressed).
    pub(crate) fn push(
        &mut self,
        ctx: FileContext<'_>,
        config: &Config,
        rule_id: &'static str,
        at: &Token,
        message: String,
    ) -> bool {
        let level = config.level(rule_id);
        if level == Level::Allow {
            return false;
        }
        // A suppression covers its own line (trailing comment) and the
        // line below it (standalone comment above the violation).
        let silenced = self.suppressions.iter().any(|s| {
            (s.line == at.line || s.line + 1 == at.line) && s.rules.iter().any(|r| r == rule_id)
        });
        if silenced {
            self.suppressed += 1;
            return false;
        }
        let (end_line, end_col) = at.end_pos();
        self.findings.push(Finding {
            rule: rule_id,
            level,
            file: ctx.rel_path.to_path_buf(),
            line: at.line,
            col: at.col,
            end_line,
            end_col,
            message,
        });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use std::path::PathBuf;

    fn run(path: &str, crate_name: &str, target: TargetKind, src: &str) -> (Vec<Finding>, usize) {
        let rel = PathBuf::from(path);
        let lexed = lex(src);
        let ctx = FileContext {
            rel_path: &rel,
            crate_name,
            target,
        };
        let mut out = Findings::new(&lexed.suppressions);
        check_tokens(ctx, &lexed, &Config::default(), &mut out);
        (out.findings, out.suppressed)
    }

    #[test]
    fn d1_fires_only_in_scoped_crates_runtime_code() {
        let src = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }";
        let (in_sim, _) = run("crates/sim/src/server.rs", "sim", TargetKind::Lib, src);
        assert_eq!(in_sim.len(), 2);
        assert!(in_sim.iter().all(|f| f.rule == "D1"));
        let (in_reuse, _) = run("crates/reuse/src/sampler.rs", "reuse", TargetKind::Lib, src);
        assert!(in_reuse.is_empty(), "reuse is outside D1's scope");
        let in_test = format!("#[cfg(test)]\nmod tests {{ {src} }}");
        let (masked, _) = run("crates/sim/src/server.rs", "sim", TargetKind::Lib, &in_test);
        assert!(
            masked.is_empty(),
            "test modules may use wall-clock deadlines"
        );
    }

    #[test]
    fn d2_fires_everywhere_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { let mut r = rand::thread_rng(); }\n}";
        let (findings, _) = run("crates/reuse/src/mrc.rs", "reuse", TargetKind::Lib, src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "D2");
    }

    #[test]
    fn d3_scopes_to_export_files_and_serde_modules() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }";
        let (by_name, _) = run("crates/sim/src/trace.rs", "sim", TargetKind::Lib, src);
        assert_eq!(by_name.len(), 2, "export file flagged by basename");
        let (plain, _) = run("crates/sim/src/events.rs", "sim", TargetKind::Lib, src);
        assert!(plain.is_empty(), "internal module may hash");
        let serde_src = format!("use serde::Serialize;\n{src}");
        let (by_serde, _) = run(
            "crates/sim/src/events.rs",
            "sim",
            TargetKind::Lib,
            &serde_src,
        );
        assert_eq!(by_serde.len(), 2, "serde-deriving module flagged");
    }

    #[test]
    fn p1_distinguishes_methods_macros_and_lookalikes() {
        let src = "fn f(x: Option<u32>) -> u32 {\n  let _ = x.unwrap_or(1);\n  if x.is_none() { panic!(\"boom\"); }\n  x.unwrap()\n}";
        let (findings, _) = run("crates/core/src/manager.rs", "core", TargetKind::Lib, src);
        let rules: Vec<_> = findings.iter().map(|f| (f.rule, f.line)).collect();
        assert_eq!(
            rules,
            vec![("P1", 3), ("P1", 4)],
            "unwrap_or is fine; panic! and .unwrap() are not"
        );
        let (bin, _) = run(
            "crates/serve/src/bin/serve_bench.rs",
            "serve",
            TargetKind::Bin,
            src,
        );
        assert!(bin.is_empty(), "binaries may panic");
    }

    #[test]
    fn m1_catches_a_dropped_field() {
        let src = "pub struct TieringMetrics { pub a: u64, pub b: u64 }\nimpl TieringMetrics { pub fn merge(&mut self, o: &Self) { self.a += o.a; } }";
        let (findings, _) = run("crates/core/src/metrics.rs", "core", TargetKind::Lib, src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "M1");
        assert!(findings[0].message.contains("`TieringMetrics::b`"));
        let ok = "pub struct TieringMetrics { pub a: u64 }\nimpl TieringMetrics { pub fn merge(&mut self, o: &Self) { self.a += o.a; } }";
        let (none, _) = run("crates/core/src/metrics.rs", "core", TargetKind::Lib, ok);
        assert!(none.is_empty());
    }

    #[test]
    fn m1_requires_a_merge_fn() {
        let src = "pub struct TieringMetrics { pub a: u64 }";
        let (findings, _) = run("crates/core/src/metrics.rs", "core", TargetKind::Lib, src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("no `fn merge`"));
    }

    #[test]
    fn suppressions_cover_their_line_and_the_next() {
        let trailing = "fn f() { let r = rand::thread_rng(); } // gmt-lint: allow(D2): demo";
        let (f, s) = run("crates/sim/src/rng.rs", "sim", TargetKind::Lib, trailing);
        assert!(f.is_empty());
        assert_eq!(s, 1);
        let above = "// gmt-lint: allow(D2): demo\nfn f() { let r = rand::thread_rng(); }";
        let (f, s) = run("crates/sim/src/rng.rs", "sim", TargetKind::Lib, above);
        assert!(f.is_empty());
        assert_eq!(s, 1);
        let wrong_rule = "// gmt-lint: allow(D1)\nfn f() { let r = rand::thread_rng(); }";
        let (f, _) = run("crates/sim/src/rng.rs", "sim", TargetKind::Lib, wrong_rule);
        assert_eq!(f.len(), 1, "allow(D1) must not silence D2");
    }

    #[test]
    fn forbid_unsafe_detection() {
        assert!(has_forbid_unsafe(
            &lex("#![forbid(unsafe_code)]\nfn f() {}").tokens
        ));
        assert!(has_forbid_unsafe(
            &lex("//! docs\n#![warn(missing_docs)]\n#![forbid(unsafe_code)]").tokens
        ));
        assert!(!has_forbid_unsafe(&lex("#![deny(unsafe_code)]").tokens));
        assert!(!has_forbid_unsafe(
            &lex("// #![forbid(unsafe_code)]").tokens
        ));
    }

    #[test]
    fn config_overrides_change_levels() {
        let mut config = Config::default();
        config.overrides.insert("P1".to_string(), Level::Allow);
        let rel = PathBuf::from("crates/core/src/x.rs");
        let lexed = lex("fn f(x: Option<u32>) { x.unwrap(); }");
        let ctx = FileContext {
            rel_path: &rel,
            crate_name: "core",
            target: TargetKind::Lib,
        };
        let mut out = Findings::new(&lexed.suppressions);
        check_tokens(ctx, &lexed, &config, &mut out);
        assert!(out.findings.is_empty(), "allow override drops findings");
    }
}
