//! The rule set: each rule encodes one invariant the reproduction's test
//! suites already rely on, turning tribal knowledge into a CI gate.
//!
//! | id | invariant |
//! |----|-----------|
//! | D1 | simulation crates use virtual time only — no `Instant`/`SystemTime` |
//! | D2 | every RNG is seeded via `gmt_sim::rng` — no `thread_rng`/`from_entropy`/`OsRng` |
//! | D3 | export paths iterate `BTreeMap`/`BTreeSet`, never `HashMap`/`HashSet` |
//! | S1 | every crate root carries `#![forbid(unsafe_code)]` |
//! | P1 | library code in `core`/`sim`/`serve` returns typed errors, not panics |
//! | M1 | every `TieringMetrics` field is summed in `merge()` |
//!
//! Rules operate on the token stream from [`crate::lexer`], so comments,
//! strings and doc examples can never produce false positives. Test code
//! (`#[cfg(test)]` modules, `#[test]` fns, `tests/` targets) is exempt
//! from D1/D3/P1 but *not* from D2: an unseeded RNG in a test makes the
//! committed fixtures unreproducible, which is exactly the failure mode
//! the lint exists to prevent.

use std::collections::BTreeMap;
use std::path::Path;

use crate::diag::{Finding, Level};
use crate::lexer::{LexOutput, TokKind, Token};

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Short stable id used in CLI flags and suppression comments.
    pub id: &'static str,
    /// Kebab-case human name.
    pub name: &'static str,
    /// Level the rule runs at unless overridden.
    pub default_level: Level,
    /// One-line statement of the invariant.
    pub summary: &'static str,
}

/// Every rule the linter knows, in report order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "D1",
        name: "no-wall-clock",
        default_level: Level::Deny,
        summary: "sim/gpu/ssd/pcie/core/serve run on virtual time; \
                  std::time::{Instant, SystemTime} would leak host timing into results",
    },
    Rule {
        id: "D2",
        name: "no-unseeded-rng",
        default_level: Level::Deny,
        summary: "all randomness must be threaded from a seed via gmt_sim::rng; \
                  thread_rng/from_entropy/OsRng break bit-reproducibility",
    },
    Rule {
        id: "D3",
        name: "no-hashmap-in-export",
        default_level: Level::Deny,
        summary: "export/serialization modules must use BTreeMap/BTreeSet so \
                  emitted key order is stable across runs and platforms",
    },
    Rule {
        id: "S1",
        name: "forbid-unsafe",
        default_level: Level::Deny,
        summary: "every crate root must carry #![forbid(unsafe_code)]",
    },
    Rule {
        id: "P1",
        name: "no-panic-in-lib",
        default_level: Level::Deny,
        summary: "library code in core/sim/serve must surface typed errors \
                  (like ConfigError) instead of unwrap/expect/panic!",
    },
    Rule {
        id: "M1",
        name: "metrics-conservation",
        default_level: Level::Deny,
        summary: "every TieringMetrics field must be summed in merge(), or \
                  per-tenant accounting silently loses counters",
    },
];

/// Looks a rule up by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// Effective per-run rule configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Level overrides by rule id (`--allow`/`--warn`/`--deny`).
    pub overrides: BTreeMap<String, Level>,
}

impl Config {
    /// The level `rule_id` runs at under this configuration.
    pub fn level(&self, rule_id: &str) -> Level {
        self.overrides
            .get(rule_id)
            .copied()
            .unwrap_or_else(|| rule(rule_id).map_or(Level::Allow, |r| r.default_level))
    }
}

/// Which compilation target a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// `src/**` of a library crate (minus `src/bin/`).
    Lib,
    /// `src/bin/**` or a binary-only crate.
    Bin,
    /// `tests/**` integration tests.
    Tests,
    /// `examples/**`.
    Example,
    /// `benches/**`.
    Bench,
}

/// Where a file sits in the workspace, for rule scoping.
#[derive(Debug, Clone, Copy)]
pub struct FileContext<'a> {
    /// Path relative to the workspace root (used in findings).
    pub rel_path: &'a Path,
    /// The member's short name: the directory under `crates/`
    /// (`sim`, `core`, …) or `gmt` for the root facade package.
    pub crate_name: &'a str,
    /// The target the file compiles into.
    pub target: TargetKind,
}

/// Crates whose runtime must never read the host clock (D1).
const D1_CRATES: &[&str] = &["sim", "gpu", "ssd", "pcie", "core", "serve"];
/// Crates whose library code must not panic (P1).
const P1_CRATES: &[&str] = &["core", "sim", "serve"];
/// File basenames that are export paths regardless of content (D3).
const D3_EXPORT_FILES: &[&str] = &["trace.rs", "tracesum.rs", "report.rs"];

/// Marks every token inside `#[cfg(test)] mod … { }` or `#[test] fn … { }`
/// regions, so runtime rules can skip test-only code.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && matches!(tokens.get(i + 1), Some(t) if t.is_punct('['))) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let mut is_test = false;
        // One or more stacked attributes; any test-ish one marks the item.
        while tokens.get(i).is_some_and(|t| t.is_punct('#'))
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
        {
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut content: Vec<&Token> = Vec::new();
            while let Some(t) = tokens.get(j) {
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if depth >= 1 {
                    content.push(t);
                }
                j += 1;
            }
            let first = content.first().map(|t| t.text.as_str());
            is_test |= first == Some("test")
                || (first == Some("cfg") && content.iter().any(|t| t.is_ident("test")));
            i = j + 1;
        }
        if !is_test {
            continue;
        }
        // Find the item's body: the first `{` before any top-level `;`
        // (attributed `use` items and the like have no body to mask).
        let mut j = i;
        let body_open = loop {
            match tokens.get(j) {
                Some(t) if t.is_punct('{') => break Some(j),
                Some(t) if t.is_punct(';') => break None,
                Some(_) => j += 1,
                None => break None,
            }
        };
        let Some(open) = body_open else {
            continue;
        };
        let mut depth = 0usize;
        let mut end = open;
        for (k, t) in tokens.iter().enumerate().skip(open) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    end = k;
                    break;
                }
            }
        }
        for m in mask.iter_mut().take(end + 1).skip(attr_start) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Whether a token stream belongs to a serde-deriving module (D3 scope):
/// anything that imports serde or derives `Serialize`/`Deserialize`.
pub fn is_serde_module(tokens: &[Token]) -> bool {
    tokens
        .iter()
        .any(|t| t.is_ident("serde") || t.is_ident("Serialize") || t.is_ident("Deserialize"))
}

/// Whether a crate-root token stream carries `#![forbid(unsafe_code)]` (S1).
pub fn has_forbid_unsafe(tokens: &[Token]) -> bool {
    tokens.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    })
}

/// Runs every token-level rule over one file, appending findings.
///
/// S1 is workspace-shaped (it fires on a *missing* attribute in a crate
/// root) and therefore lives in [`crate::engine`], not here.
pub fn check_tokens(ctx: FileContext<'_>, lexed: &LexOutput, config: &Config, out: &mut Findings) {
    let tokens = &lexed.tokens;
    let mask = test_mask(tokens);
    let in_tests_target = matches!(ctx.target, TargetKind::Tests | TargetKind::Bench);

    // D1 — no wall clock in simulation crates' runtime code.
    if D1_CRATES.contains(&ctx.crate_name)
        && matches!(ctx.target, TargetKind::Lib | TargetKind::Bin)
    {
        for (i, t) in tokens.iter().enumerate() {
            if mask[i] || t.kind != TokKind::Ident {
                continue;
            }
            if t.text == "Instant" || t.text == "SystemTime" {
                out.push(ctx, config, "D1", t, format!(
                    "wall-clock `{}` in virtual-time crate `{}`; simulation code must derive all timing from `gmt_sim::Time`",
                    t.text, ctx.crate_name
                ));
            }
        }
    }

    // D2 — no unseeded randomness anywhere, test code included.
    for t in tokens.iter() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "thread_rng" || t.text == "from_entropy" || t.text == "OsRng" {
            out.push(ctx, config, "D2", t, format!(
                "unseeded RNG source `{}`; route randomness through `gmt_sim::rng::seeded`/`derive` so runs are bit-reproducible",
                t.text
            ));
        }
    }

    // D3 — hash collections are banned in export paths.
    let basename = ctx
        .rel_path
        .file_name()
        .map(|n| n.to_string_lossy().to_string())
        .unwrap_or_default();
    let named_export = D3_EXPORT_FILES.contains(&basename.as_str());
    if named_export || is_serde_module(tokens) {
        let scope = if named_export {
            format!("export path `{basename}`")
        } else {
            "serde-deriving module".to_string()
        };
        for (i, t) in tokens.iter().enumerate() {
            if mask[i] || in_tests_target || t.kind != TokKind::Ident {
                continue;
            }
            if t.text == "HashMap" || t.text == "HashSet" {
                let ordered = if t.text == "HashMap" {
                    "BTreeMap"
                } else {
                    "BTreeSet"
                };
                out.push(ctx, config, "D3", t, format!(
                    "`{}` in {scope}; iteration order is nondeterministic — use `{}` so serialized key order is stable",
                    t.text, ordered
                ));
            }
        }
    }

    // P1 — library code in core/sim/serve must not panic.
    if P1_CRATES.contains(&ctx.crate_name) && ctx.target == TargetKind::Lib {
        for (i, t) in tokens.iter().enumerate() {
            if mask[i] || t.kind != TokKind::Ident {
                continue;
            }
            let method_call = i > 0 && tokens[i - 1].is_punct('.');
            let bang = tokens.get(i + 1).is_some_and(|n| n.is_punct('!'));
            let hit = match t.text.as_str() {
                "unwrap" | "expect" => method_call,
                "panic" | "todo" | "unimplemented" => bang,
                _ => false,
            };
            if hit {
                out.push(ctx, config, "P1", t, format!(
                    "`{}` in `{}` library code; prefer a typed error (see `ConfigError`) or justify with a suppression",
                    t.text, ctx.crate_name
                ));
            }
        }
    }

    // M1 — TieringMetrics fields must be conserved by merge().
    check_metrics_conservation(ctx, tokens, config, out);
}

/// The M1 cross-check: in any file defining `struct TieringMetrics`,
/// every named field must appear inside the body of `fn merge` in the
/// same file (the merge destructures-and-sums, so a field that never
/// shows up there is silently dropped from per-tenant aggregation).
fn check_metrics_conservation(
    ctx: FileContext<'_>,
    tokens: &[Token],
    config: &Config,
    out: &mut Findings,
) {
    let Some(struct_at) = tokens
        .windows(2)
        .position(|w| w[0].is_ident("struct") && w[1].is_ident("TieringMetrics"))
    else {
        return;
    };
    // Collect field names: idents directly followed by `:` at depth 1 of
    // the struct body (`pub` and types never precede a `:` at depth 1).
    let Some(open) = tokens[struct_at..].iter().position(|t| t.is_punct('{')) else {
        return;
    };
    let mut fields: Vec<&Token> = Vec::new();
    let mut depth = 0usize;
    let mut struct_end = tokens.len();
    for (k, t) in tokens.iter().enumerate().skip(struct_at + open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                struct_end = k;
                break;
            }
        } else if depth == 1
            && t.kind == TokKind::Ident
            && tokens.get(k + 1).is_some_and(|n| n.is_punct(':'))
        {
            fields.push(t);
        }
    }
    // Find `fn merge` and gather every ident inside its body.
    let merge_at = tokens[struct_end..]
        .windows(2)
        .position(|w| w[0].is_ident("fn") && w[1].is_ident("merge"))
        .map(|p| struct_end + p);
    let Some(merge_at) = merge_at else {
        out.push(ctx, config, "M1", &tokens[struct_at], format!(
            "`TieringMetrics` has no `fn merge` in this file; {} field(s) are not aggregated anywhere",
            fields.len()
        ));
        return;
    };
    let Some(body_open) = tokens[merge_at..].iter().position(|t| t.is_punct('{')) else {
        return;
    };
    let mut body_idents: Vec<&str> = Vec::new();
    let mut depth = 0usize;
    for t in tokens.iter().skip(merge_at + body_open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokKind::Ident {
            body_idents.push(&t.text);
        }
    }
    for f in fields {
        if !body_idents.iter().any(|id| *id == f.text) {
            out.push(ctx, config, "M1", f, format!(
                "`TieringMetrics::{}` is never mentioned in `merge()`; merging per-tenant metrics would silently drop it",
                f.text
            ));
        }
    }
}

/// Accumulates findings for one file, applying level overrides and
/// `// gmt-lint: allow(...)` suppressions as they are pushed.
pub struct Findings<'a> {
    suppressions: &'a [crate::lexer::Suppression],
    /// Findings that survived, appended in token order.
    pub findings: Vec<Finding>,
    /// How many findings a suppression silenced.
    pub suppressed: usize,
}

impl<'a> Findings<'a> {
    /// Creates an accumulator using the file's suppression comments.
    pub fn new(suppressions: &'a [crate::lexer::Suppression]) -> Findings<'a> {
        Findings {
            suppressions,
            findings: Vec::new(),
            suppressed: 0,
        }
    }

    fn push(
        &mut self,
        ctx: FileContext<'_>,
        config: &Config,
        rule_id: &'static str,
        at: &Token,
        message: String,
    ) {
        let level = config.level(rule_id);
        if level == Level::Allow {
            return;
        }
        // A suppression covers its own line (trailing comment) and the
        // line below it (standalone comment above the violation).
        let silenced = self.suppressions.iter().any(|s| {
            (s.line == at.line || s.line + 1 == at.line) && s.rules.iter().any(|r| r == rule_id)
        });
        if silenced {
            self.suppressed += 1;
            return;
        }
        self.findings.push(Finding {
            rule: rule_id,
            level,
            file: ctx.rel_path.to_path_buf(),
            line: at.line,
            col: at.col,
            message,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use std::path::PathBuf;

    fn run(path: &str, crate_name: &str, target: TargetKind, src: &str) -> (Vec<Finding>, usize) {
        let rel = PathBuf::from(path);
        let lexed = lex(src);
        let ctx = FileContext {
            rel_path: &rel,
            crate_name,
            target,
        };
        let mut out = Findings::new(&lexed.suppressions);
        check_tokens(ctx, &lexed, &Config::default(), &mut out);
        (out.findings, out.suppressed)
    }

    #[test]
    fn d1_fires_only_in_scoped_crates_runtime_code() {
        let src = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }";
        let (in_sim, _) = run("crates/sim/src/server.rs", "sim", TargetKind::Lib, src);
        assert_eq!(in_sim.len(), 2);
        assert!(in_sim.iter().all(|f| f.rule == "D1"));
        let (in_reuse, _) = run("crates/reuse/src/sampler.rs", "reuse", TargetKind::Lib, src);
        assert!(in_reuse.is_empty(), "reuse is outside D1's scope");
        let in_test = format!("#[cfg(test)]\nmod tests {{ {src} }}");
        let (masked, _) = run("crates/sim/src/server.rs", "sim", TargetKind::Lib, &in_test);
        assert!(
            masked.is_empty(),
            "test modules may use wall-clock deadlines"
        );
    }

    #[test]
    fn d2_fires_everywhere_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { let mut r = rand::thread_rng(); }\n}";
        let (findings, _) = run("crates/reuse/src/mrc.rs", "reuse", TargetKind::Lib, src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "D2");
    }

    #[test]
    fn d3_scopes_to_export_files_and_serde_modules() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }";
        let (by_name, _) = run("crates/sim/src/trace.rs", "sim", TargetKind::Lib, src);
        assert_eq!(by_name.len(), 2, "export file flagged by basename");
        let (plain, _) = run("crates/sim/src/events.rs", "sim", TargetKind::Lib, src);
        assert!(plain.is_empty(), "internal module may hash");
        let serde_src = format!("use serde::Serialize;\n{src}");
        let (by_serde, _) = run(
            "crates/sim/src/events.rs",
            "sim",
            TargetKind::Lib,
            &serde_src,
        );
        assert_eq!(by_serde.len(), 2, "serde-deriving module flagged");
    }

    #[test]
    fn p1_distinguishes_methods_macros_and_lookalikes() {
        let src = "fn f(x: Option<u32>) -> u32 {\n  let _ = x.unwrap_or(1);\n  if x.is_none() { panic!(\"boom\"); }\n  x.unwrap()\n}";
        let (findings, _) = run("crates/core/src/manager.rs", "core", TargetKind::Lib, src);
        let rules: Vec<_> = findings.iter().map(|f| (f.rule, f.line)).collect();
        assert_eq!(
            rules,
            vec![("P1", 3), ("P1", 4)],
            "unwrap_or is fine; panic! and .unwrap() are not"
        );
        let (bin, _) = run(
            "crates/serve/src/bin/serve_bench.rs",
            "serve",
            TargetKind::Bin,
            src,
        );
        assert!(bin.is_empty(), "binaries may panic");
    }

    #[test]
    fn m1_catches_a_dropped_field() {
        let src = "pub struct TieringMetrics { pub a: u64, pub b: u64 }\nimpl TieringMetrics { pub fn merge(&mut self, o: &Self) { self.a += o.a; } }";
        let (findings, _) = run("crates/core/src/metrics.rs", "core", TargetKind::Lib, src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "M1");
        assert!(findings[0].message.contains("`TieringMetrics::b`"));
        let ok = "pub struct TieringMetrics { pub a: u64 }\nimpl TieringMetrics { pub fn merge(&mut self, o: &Self) { self.a += o.a; } }";
        let (none, _) = run("crates/core/src/metrics.rs", "core", TargetKind::Lib, ok);
        assert!(none.is_empty());
    }

    #[test]
    fn m1_requires_a_merge_fn() {
        let src = "pub struct TieringMetrics { pub a: u64 }";
        let (findings, _) = run("crates/core/src/metrics.rs", "core", TargetKind::Lib, src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("no `fn merge`"));
    }

    #[test]
    fn suppressions_cover_their_line_and_the_next() {
        let trailing = "fn f() { let r = rand::thread_rng(); } // gmt-lint: allow(D2): demo";
        let (f, s) = run("crates/sim/src/rng.rs", "sim", TargetKind::Lib, trailing);
        assert!(f.is_empty());
        assert_eq!(s, 1);
        let above = "// gmt-lint: allow(D2): demo\nfn f() { let r = rand::thread_rng(); }";
        let (f, s) = run("crates/sim/src/rng.rs", "sim", TargetKind::Lib, above);
        assert!(f.is_empty());
        assert_eq!(s, 1);
        let wrong_rule = "// gmt-lint: allow(D1)\nfn f() { let r = rand::thread_rng(); }";
        let (f, _) = run("crates/sim/src/rng.rs", "sim", TargetKind::Lib, wrong_rule);
        assert_eq!(f.len(), 1, "allow(D1) must not silence D2");
    }

    #[test]
    fn forbid_unsafe_detection() {
        assert!(has_forbid_unsafe(
            &lex("#![forbid(unsafe_code)]\nfn f() {}").tokens
        ));
        assert!(has_forbid_unsafe(
            &lex("//! docs\n#![warn(missing_docs)]\n#![forbid(unsafe_code)]").tokens
        ));
        assert!(!has_forbid_unsafe(&lex("#![deny(unsafe_code)]").tokens));
        assert!(!has_forbid_unsafe(
            &lex("// #![forbid(unsafe_code)]").tokens
        ));
    }

    #[test]
    fn config_overrides_change_levels() {
        let mut config = Config::default();
        config.overrides.insert("P1".to_string(), Level::Allow);
        let rel = PathBuf::from("crates/core/src/x.rs");
        let lexed = lex("fn f(x: Option<u32>) { x.unwrap(); }");
        let ctx = FileContext {
            rel_path: &rel,
            crate_name: "core",
            target: TargetKind::Lib,
        };
        let mut out = Findings::new(&lexed.suppressions);
        check_tokens(ctx, &lexed, &config, &mut out);
        assert!(out.findings.is_empty(), "allow override drops findings");
    }
}
