//! A worklist-based forward dataflow solver over [`crate::cfg`] graphs.
//!
//! The solver is generic over an [`Analysis`]: a fact lattice (with a
//! bottom element and a join that reports change) plus a transfer
//! function over CFG [`Node`]s. It iterates blocks to a fixpoint —
//! back edges from loops re-queue their header until facts stabilize —
//! and returns the fact *entering* every block. Rule passes then make a
//! final deterministic sweep over the blocks with the solved entry facts
//! to emit diagnostics; keeping the reporting pass separate from the
//! fixpoint means a finding can never depend on visit order.
//!
//! Two instances live in this crate:
//!
//! * [`ReachingDefs`] — the textbook gen/kill bitvector analysis, kept
//!   small and exhaustively tested; it is the reference semantics for
//!   how facts must move through the graph.
//! * the N1 taint lattice in [`crate::flow`] — a per-variable taint map
//!   whose join is bitwise union.

use crate::cfg::{BlockId, Cfg, Node};

/// One forward dataflow problem.
pub trait Analysis<'a> {
    /// The per-program-point fact.
    type Fact: Clone;

    /// The fact entering the function (parameter bindings etc.).
    fn entry_fact(&self) -> Self::Fact;

    /// The bottom element every other block starts from.
    fn bottom(&self) -> Self::Fact;

    /// Joins `from` into `into`; returns whether `into` changed.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;

    /// Applies one node's effect to `fact`, in place. `at` is the node's
    /// stable `(block, index-in-block)` position — the worklist revisits
    /// blocks, so any per-site state must key on position, not on visit
    /// order.
    fn transfer(&mut self, at: (BlockId, usize), node: &Node<'a>, fact: &mut Self::Fact);
}

/// Runs `analysis` over `cfg` to a fixpoint.
///
/// Returns the fact at the *entry* of every block. Termination follows
/// from the usual argument: joins only grow facts, and every lattice
/// used here has finite height (bitsets over a fixed definition universe
/// for [`ReachingDefs`], bitmasks over finitely many variables for the
/// taint map).
pub fn solve<'a, A: Analysis<'a>>(cfg: &Cfg<'a>, analysis: &mut A) -> Vec<A::Fact> {
    let n = cfg.blocks.len();
    let mut entry_facts: Vec<A::Fact> = (0..n).map(|_| analysis.bottom()).collect();
    if n == 0 {
        return entry_facts;
    }
    entry_facts[Cfg::ENTRY] = analysis.entry_fact();
    let mut queued = vec![false; n];
    let mut worklist: Vec<BlockId> = vec![Cfg::ENTRY];
    queued[Cfg::ENTRY] = true;
    // Defensive ceiling: `n²·height` rounds is far beyond what any real
    // fixpoint needs; a logic bug degenerates to a partial (sound for
    // reporting: facts only under-approximate growth) result, not a hang.
    let mut fuel = 64 * n * n + 4096;
    while let Some(block) = worklist.pop() {
        queued[block] = false;
        if fuel == 0 {
            break;
        }
        fuel -= 1;
        let mut fact = entry_facts[block].clone();
        for (i, node) in cfg.blocks[block].nodes.iter().enumerate() {
            analysis.transfer((block, i), node, &mut fact);
        }
        for &succ in &cfg.blocks[block].succs {
            if analysis.join(&mut entry_facts[succ], &fact) && !queued[succ] {
                queued[succ] = true;
                worklist.push(succ);
            }
        }
    }
    entry_facts
}

/// Replays the solved facts over every block, calling `visit` for each
/// node with the fact *before* that node. This is the deterministic
/// reporting sweep: blocks in id order, nodes in source order.
pub fn replay<'a, A, F>(cfg: &Cfg<'a>, analysis: &mut A, entry_facts: &[A::Fact], visit: &mut F)
where
    A: Analysis<'a>,
    F: FnMut(&mut A, BlockId, &Node<'a>, &A::Fact),
{
    for block in cfg.ids() {
        let mut fact = entry_facts[block].clone();
        for (i, node) in cfg.blocks[block].nodes.iter().enumerate() {
            visit(analysis, block, node, &fact);
            analysis.transfer((block, i), node, &mut fact);
        }
    }
}

// --------------------------------------------------------------------------
// Reaching definitions: the canonical gen/kill instance.
// --------------------------------------------------------------------------

use crate::ast::ExprKind;
use std::collections::BTreeMap;

/// One definition site: `(variable name, (block, node index))`.
pub type DefSite = (String, (BlockId, usize));

/// Classic reaching-definitions over simple (identifier-bound) locals.
///
/// Definitions are `let` bindings, `for` bindings and assignments whose
/// left-hand side is a bare path. Each definition *kills* every other
/// definition of the same name and *gens* itself; the solved fact at a
/// use site is the set of definitions that may reach it.
pub struct ReachingDefs {
    /// All definition sites, indexed by the bit they own.
    pub defs: Vec<DefSite>,
    /// Bit index lookup by node position.
    index: BTreeMap<(BlockId, usize), usize>,
    /// Kill mask per variable name: all bits defining that name.
    kills: BTreeMap<String, Vec<usize>>,
}

/// A set of definition bits (one `u64` word per 64 definitions).
pub type DefSet = Vec<u64>;

impl ReachingDefs {
    /// Numbers every definition in `cfg` so the bitvectors have a fixed
    /// universe before solving starts.
    pub fn new(cfg: &Cfg<'_>) -> ReachingDefs {
        let mut rd = ReachingDefs {
            defs: Vec::new(),
            index: BTreeMap::new(),
            kills: BTreeMap::new(),
        };
        for block in cfg.ids() {
            for (i, node) in cfg.blocks[block].nodes.iter().enumerate() {
                if let Some(name) = def_name(node) {
                    let bit = rd.defs.len();
                    rd.index.insert((block, i), bit);
                    rd.kills.entry(name.to_string()).or_default().push(bit);
                    rd.defs.push((name.to_string(), (block, i)));
                }
            }
        }
        rd
    }

    fn words(&self) -> usize {
        self.defs.len().div_ceil(64)
    }

    /// The names whose definitions are set in `fact`, deduplicated.
    pub fn names_in(&self, fact: &DefSet) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .defs
            .iter()
            .enumerate()
            .filter(|(bit, _)| fact[bit / 64] & (1u64 << (bit % 64)) != 0)
            .map(|(_, (name, _))| name.as_str())
            .collect();
        out.dedup();
        out
    }
}

/// The variable a node defines, when its target is a simple identifier.
fn def_name<'a>(node: &Node<'a>) -> Option<&'a str> {
    match node {
        Node::Let { name, .. } | Node::ForBind { name, .. } => *name,
        Node::Eval(e) => {
            if let ExprKind::Assign { lhs, .. } = &e.kind {
                if let ExprKind::Path(segs) = &lhs.kind {
                    if let [single] = segs.as_slice() {
                        return Some(single);
                    }
                }
            }
            None
        }
        Node::Ret(_) => None,
    }
}

impl<'a> Analysis<'a> for ReachingDefs {
    type Fact = DefSet;

    fn entry_fact(&self) -> DefSet {
        vec![0; self.words()]
    }

    fn bottom(&self) -> DefSet {
        vec![0; self.words()]
    }

    fn join(&self, into: &mut DefSet, from: &DefSet) -> bool {
        let mut changed = false;
        for (a, b) in into.iter_mut().zip(from) {
            let merged = *a | *b;
            changed |= merged != *a;
            *a = merged;
        }
        changed
    }

    fn transfer(&mut self, at: (BlockId, usize), node: &Node<'a>, fact: &mut DefSet) {
        let Some(name) = def_name(node) else { return };
        // Kill every definition of this name…
        if let Some(bits) = self.kills.get(name) {
            for &bit in bits {
                fact[bit / 64] &= !(1u64 << (bit % 64));
            }
        }
        // …then gen this site's own bit.
        if let Some(&bit) = self.index.get(&at) {
            fact[bit / 64] |= 1u64 << (bit % 64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ItemKind;
    use crate::cfg::build_cfg;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    /// Solves reaching defs for the first fn in `src` and returns the
    /// definition names reaching each block's entry.
    fn reach(src: &str) -> Vec<Vec<String>> {
        let toks = lex(src).tokens;
        let file = parse_file(&toks);
        for item in &file.items {
            if let ItemKind::Fn(f) = &item.kind {
                let cfg = build_cfg(f.body.as_ref().expect("body"), &toks);
                let mut rd = ReachingDefs::new(&cfg);
                let facts = solve(&cfg, &mut rd);
                return facts
                    .iter()
                    .map(|f| rd.names_in(f).iter().map(|s| s.to_string()).collect())
                    .collect();
            }
        }
        panic!("no fn");
    }

    #[test]
    fn straight_line_defs_do_not_reach_entry() {
        let per_block = reach("fn f() { let a = 1; let b = 2; }");
        assert_eq!(per_block.len(), 1);
        assert!(per_block[0].is_empty(), "nothing reaches the entry");
    }

    #[test]
    fn branch_defs_merge_at_the_join() {
        let per_block =
            reach("fn f(c: bool) { let mut a = 0; if c { a = 1; } else { a = 2; } use_it(a); }");
        // Some block (the join) must see `a` reaching it.
        assert!(
            per_block
                .iter()
                .any(|names| names.contains(&"a".to_string())),
            "the join sees a reaching definition of `a`: {per_block:?}"
        );
    }

    #[test]
    fn loop_body_defs_reach_the_header_via_the_back_edge() {
        let per_block = reach("fn f() { let mut n = 0; while go() { n = step(n); } done(n); }");
        let blocks_seeing_n = per_block
            .iter()
            .filter(|names| names.contains(&"n".to_string()))
            .count();
        // Header, body, and exit all see `n` (initial and/or looped def).
        assert!(blocks_seeing_n >= 3, "{per_block:?}");
    }

    #[test]
    fn redefinition_kills_the_earlier_def() {
        let toks = lex("fn f() { let a = 1; let a = 2; use_it(a); }").tokens;
        let file = parse_file(&toks);
        let ItemKind::Fn(f) = &file.items[0].kind else {
            panic!()
        };
        let cfg = build_cfg(f.body.as_ref().unwrap(), &toks);
        let mut rd = ReachingDefs::new(&cfg);
        let facts = solve(&cfg, &mut rd);
        // Straight-line: single block, so replay the transfers to the end.
        let mut fact = facts[0].clone();
        for (i, node) in cfg.blocks[0].nodes.iter().enumerate() {
            rd.transfer((0, i), node, &mut fact);
        }
        let set_bits: Vec<&DefSite> = rd
            .defs
            .iter()
            .enumerate()
            .filter(|(bit, _)| fact[bit / 64] & (1 << (bit % 64)) != 0)
            .map(|(_, d)| d)
            .collect();
        assert_eq!(set_bits.len(), 1, "only the second `let a` survives");
        assert_eq!(set_bits[0].1, (0, 1), "and it is the later site");
    }
}
