//! A hand-rolled Rust lexer producing identifier/punctuation tokens with
//! `line:col` spans.
//!
//! The linter's rules only ever ask "does identifier X appear outside
//! comments, strings and test code?", so the lexer does not need to be a
//! full Rust grammar — it needs to be *exactly right* about what is and
//! is not source text. It therefore handles every trivia form that could
//! hide a false positive: line and doc comments, nested block comments,
//! string/char/byte literals, raw strings with arbitrary `#` fences, raw
//! identifiers, and the lifetime-vs-char-literal ambiguity after `'`.
//!
//! Suppression comments (`// gmt-lint: allow(<rule>, ...)`) are collected
//! during the same pass; see [`Suppression`].

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `fn`, `r#type`).
    Ident,
    /// A lifetime (`'a`) — distinct from [`TokKind::Char`].
    Lifetime,
    /// A string literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A numeric literal (`42`, `0xFF`, `1.5e-3`).
    Num,
    /// A single punctuation character (`.`, `:`, `{`, …).
    Punct,
}

/// One lexed token with its source span.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification of the token text.
    pub kind: TokKind,
    /// The token's text, verbatim (string literals keep their quotes).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
    /// Byte offset of the token's first character in the source.
    pub offset: usize,
    /// Byte length of the token text.
    pub len: usize,
}

impl Token {
    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// The 1-based `(line, column)` of the character just past this
    /// token. Multi-line tokens (raw strings) advance the line count.
    pub fn end_pos(&self) -> (u32, u32) {
        let newlines = self.text.matches('\n').count() as u32;
        if newlines == 0 {
            (self.line, self.col + self.text.chars().count() as u32)
        } else {
            let tail = self.text.rsplit('\n').next().unwrap_or("");
            (self.line + newlines, tail.chars().count() as u32 + 1)
        }
    }
}

/// A `// gmt-lint: allow(<rules>)` comment found while lexing.
///
/// A suppression silences matching findings on its own line (trailing
/// form) and on the following line (standalone-comment-above form).
#[derive(Debug, Clone)]
pub struct Suppression {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// The rule ids listed inside `allow(...)`.
    pub rules: Vec<String>,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// All non-trivia tokens, in source order.
    pub tokens: Vec<Token>,
    /// Every suppression comment, in source order.
    pub suppressions: Vec<Suppression>,
}

/// Lexes `source`, returning tokens plus suppression comments.
///
/// The lexer never fails: unterminated literals or comments simply run to
/// end of file, which is the forgiving behaviour a linter wants (rustc
/// will reject the file anyway; the lint should not crash first).
pub fn lex(source: &str) -> LexOutput {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a str,
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    offset: usize,
    out: LexOutput,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src,
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            offset: 0,
            out: LexOutput::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        self.offset += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> LexOutput {
        while let Some(c) = self.peek(0) {
            let (line, col, offset) = (self.line, self.col, self.offset);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                'r' | 'b' if self.starts_raw_or_byte_literal() => {
                    self.prefixed_literal(line, col, offset);
                }
                '"' => self.string_literal(line, col, offset, 0),
                '\'' => self.quote(line, col, offset),
                c if c.is_ascii_digit() => self.number(line, col, offset),
                c if c == '_' || c.is_alphabetic() => self.ident(line, col, offset),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, line, col, offset);
                }
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokKind, line: u32, col: u32, offset: usize) {
        let text = self.src[offset..self.offset].to_string();
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            col,
            offset,
            len: self.offset - offset,
        });
    }

    /// `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'` — but *not* plain
    /// identifiers like `result` or raw identifiers like `r#type`.
    fn starts_raw_or_byte_literal(&self) -> bool {
        match (self.peek(0), self.peek(1)) {
            (Some('r'), Some('"')) | (Some('b'), Some('"')) | (Some('b'), Some('\'')) => true,
            (Some('r'), Some('#')) => {
                // Distinguish r#"raw string"# from the raw identifier r#ident.
                let mut i = 1;
                while self.peek(i) == Some('#') {
                    i += 1;
                }
                self.peek(i) == Some('"')
            }
            (Some('b'), Some('r')) => matches!(self.peek(2), Some('"') | Some('#')),
            _ => false,
        }
    }

    fn prefixed_literal(&mut self, line: u32, col: u32, offset: usize) {
        // Consume the r/b/br prefix.
        let mut raw = false;
        while let Some(c) = self.peek(0) {
            match c {
                'r' => {
                    raw = true;
                    self.bump();
                }
                'b' => {
                    self.bump();
                }
                _ => break,
            }
        }
        if self.peek(0) == Some('\'') {
            // b'…' byte literal.
            self.bump();
            self.char_body();
            self.push(TokKind::Char, line, col, offset);
            return;
        }
        let mut fences = 0;
        if raw {
            while self.peek(0) == Some('#') {
                fences += 1;
                self.bump();
            }
        }
        if self.peek(0) == Some('"') {
            if raw {
                self.raw_string_body(fences, line, col, offset);
            } else {
                self.string_literal(line, col, offset, 0);
            }
        }
    }

    fn string_literal(&mut self, line: u32, col: u32, offset: usize, _fences: usize) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Str, line, col, offset);
    }

    fn raw_string_body(&mut self, fences: usize, line: u32, col: u32, offset: usize) {
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..fences {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..fences {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokKind::Str, line, col, offset);
    }

    /// After `'`: a lifetime (`'a`, `'static`) or a char literal (`'x'`,
    /// `'\n'`). A lifetime is `'` + ident-start not followed by a closing
    /// quote; everything else is a char literal.
    fn quote(&mut self, line: u32, col: u32, offset: usize) {
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime =
            matches!(next, Some(c) if c == '_' || c.is_alphabetic()) && after != Some('\'');
        self.bump(); // the quote
        if is_lifetime {
            while matches!(self.peek(0), Some(c) if c == '_' || c.is_alphanumeric()) {
                self.bump();
            }
            self.push(TokKind::Lifetime, line, col, offset);
        } else {
            self.char_body();
            self.push(TokKind::Char, line, col, offset);
        }
    }

    fn char_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
    }

    fn number(&mut self, line: u32, col: u32, offset: usize) {
        while matches!(self.peek(0), Some(c) if c.is_ascii_alphanumeric() || c == '_') {
            self.bump();
        }
        // A fractional part — but `0..10` must leave the range dots alone.
        if self.peek(0) == Some('.') && matches!(self.peek(1), Some(c) if c.is_ascii_digit()) {
            self.bump();
            while matches!(self.peek(0), Some(c) if c.is_ascii_alphanumeric() || c == '_') {
                self.bump();
            }
        }
        // An exponent sign (`1e-3`): the e/E was consumed above, the sign
        // and magnitude were not.
        if matches!(self.peek(0), Some('+') | Some('-'))
            && self.src[offset..self.offset].ends_with(['e', 'E'])
        {
            self.bump();
            while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
                self.bump();
            }
        }
        self.push(TokKind::Num, line, col, offset);
    }

    fn ident(&mut self, line: u32, col: u32, offset: usize) {
        // Raw identifier prefix r# (r#"…" was already routed to literals).
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            self.bump();
            self.bump();
        }
        while matches!(self.peek(0), Some(c) if c == '_' || c.is_alphanumeric()) {
            self.bump();
        }
        self.push(TokKind::Ident, line, col, offset);
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.offset;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        if let Some(rules) = parse_suppression(&self.src[start..self.offset]) {
            self.out.suppressions.push(Suppression { line, rules });
        }
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }
}

/// Parses `gmt-lint: allow(R1, R2): optional reason` out of a line
/// comment, returning the listed rule ids.
fn parse_suppression(comment: &str) -> Option<Vec<String>> {
    let rest = comment.split_once("gmt-lint:")?.1;
    let rest = rest.trim_start();
    let args = rest.strip_prefix("allow")?.trim_start().strip_prefix('(')?;
    let list = args.split_once(')')?.0;
    let rules: Vec<String> = list
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    (!rules.is_empty()).then_some(rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r##"
            // HashMap in a line comment
            /// HashMap in a doc comment
            /* HashMap /* nested */ still a comment */
            let a = "HashMap in a string";
            let b = r#"HashMap in a raw string"#;
            let c = 'H';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Char).count(),
            1,
            "'x' is a char literal"
        );
    }

    #[test]
    fn spans_are_one_based_lines_and_cols() {
        let toks = lex("a\n  bc").tokens;
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!(
            &"a\n  bc"[toks[1].offset..toks[1].offset + toks[1].len],
            "bc"
        );
    }

    #[test]
    fn range_dots_survive_number_lexing() {
        let toks = lex("0..10 1.5e-3 0xFF").tokens;
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["0", ".", ".", "10", "1.5e-3", "0xFF"]);
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = lex("let r#type = 1;").tokens;
        assert!(toks.iter().any(|t| t.is_ident("r#type")));
    }

    #[test]
    fn suppressions_are_collected_with_lines() {
        let src =
            "let a = 1; // gmt-lint: allow(D2, P1): reason\nlet b = 2;\n// gmt-lint: allow(D3)\n";
        let out = lex(src);
        assert_eq!(out.suppressions.len(), 2);
        assert_eq!(out.suppressions[0].line, 1);
        assert_eq!(out.suppressions[0].rules, vec!["D2", "P1"]);
        assert_eq!(out.suppressions[1].line, 3);
        assert_eq!(out.suppressions[1].rules, vec!["D3"]);
    }

    #[test]
    fn byte_and_raw_strings_are_single_tokens() {
        let toks = lex(r###"let x = (b"bytes", br#"raw bytes"#, b'\n');"###).tokens;
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }
}
