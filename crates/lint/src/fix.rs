//! `--fix` rewrites for the mechanically safe subset of the rules.
//!
//! Today that is exactly D3: renaming `HashMap`→`BTreeMap` and
//! `HashSet`→`BTreeSet` (types, imports and paths all being the same
//! identifier token) plus rewriting `with_capacity(n)` constructor calls
//! to `new()`, which the B-tree types do not offer. D2 is deliberately
//! excluded — inventing a seed for an unseeded RNG changes behaviour and
//! needs a human to thread the root seed through.
//!
//! The rewrite is token-based: occurrences inside comments, strings and
//! `#[cfg(test)]` regions are left untouched, as are lines carrying a
//! `// gmt-lint: allow(D3)` suppression.

use crate::lexer::{lex, TokKind};
use crate::rules::test_mask;

/// Applies the D3 rewrite to `source`, returning the new text, or `None`
/// if nothing needed changing.
pub fn fix_d3(source: &str) -> Option<String> {
    let lexed = lex(source);
    let tokens = &lexed.tokens;
    let mask = test_mask(tokens);
    // (byte range, replacement) edits, collected in source order.
    let mut edits: Vec<(usize, usize, &str)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let replacement = match t.text.as_str() {
            "HashMap" => "BTreeMap",
            "HashSet" => "BTreeSet",
            _ => continue,
        };
        let suppressed = lexed.suppressions.iter().any(|s| {
            (s.line == t.line || s.line + 1 == t.line) && s.rules.iter().any(|r| r == "D3")
        });
        if suppressed {
            continue;
        }
        edits.push((t.offset, t.len, replacement));
        // `HashMap::with_capacity(args)` has no B-tree equivalent; the
        // whole call collapses to `new()`.
        if tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens
                .get(i + 3)
                .is_some_and(|t| t.is_ident("with_capacity"))
            && tokens.get(i + 4).is_some_and(|t| t.is_punct('('))
        {
            let mut depth = 0usize;
            for call in tokens.iter().skip(i + 4) {
                if call.is_punct('(') {
                    depth += 1;
                } else if call.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        let start = tokens[i + 3].offset;
                        edits.push((start, call.offset + call.len - start, "new()"));
                        break;
                    }
                }
            }
        }
    }
    if edits.is_empty() {
        return None;
    }
    let mut out = String::with_capacity(source.len());
    let mut cursor = 0usize;
    for (offset, len, replacement) in edits {
        out.push_str(&source[cursor..offset]);
        out.push_str(replacement);
        cursor = offset + len;
    }
    out.push_str(&source[cursor..]);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renames_types_imports_and_constructors() {
        let src = "use std::collections::{HashMap, HashSet};\n\
                   struct S { m: HashMap<u64, u32>, s: HashSet<u64> }\n\
                   fn f() -> HashMap<u64, u32> { HashMap::with_capacity(10) }\n";
        let fixed = fix_d3(src).expect("changes");
        assert!(fixed.contains("use std::collections::{BTreeMap, BTreeSet};"));
        assert!(fixed.contains("m: BTreeMap<u64, u32>, s: BTreeSet<u64>"));
        assert!(fixed.contains("BTreeMap::new()"), "{fixed}");
        assert!(!fixed.contains("with_capacity"));
    }

    #[test]
    fn leaves_tests_comments_strings_and_suppressions_alone() {
        let src = "// HashMap stays in comments\n\
                   const DOC: &str = \"HashMap\";\n\
                   // gmt-lint: allow(D3): intentionally hashed scratch space\n\
                   fn scratch() { let _ = std::collections::HashMap::<u8, u8>::new(); }\n\
                   #[cfg(test)]\nmod tests { use std::collections::HashMap; }\n";
        assert_eq!(fix_d3(src), None, "nothing eligible to rewrite");
    }

    #[test]
    fn nested_capacity_arguments_are_consumed_whole() {
        let src = "fn f(n: usize) { let _ = HashSet::<u8>::new(); let _m: HashMap<u8, u8> = HashMap::with_capacity(n.max(cap(3))); }";
        let fixed = fix_d3(src).expect("changes");
        assert!(fixed.contains("BTreeMap::new()"), "{fixed}");
        assert!(!fixed.contains("n.max"), "capacity expression is gone");
        assert!(fixed.contains("BTreeSet::<u8>::new()"));
    }
}
