//! `--fix` rewrites for the mechanically safe subset of the rules.
//!
//! Two rules rewrite today. D3 renames `HashMap`→`BTreeMap` and
//! `HashSet`→`BTreeSet` (types, imports and paths all being the same
//! identifier token) plus rewriting `with_capacity(n)` constructor calls
//! to `new()`, which the B-tree types do not offer. U1 applies the two
//! conversions the walker proves safe: appending `* 1_000`-style
//! multipliers where a coarse unit flows into a finer slot, and wrapping
//! raw suffixed values in `Dur::from_…` where they initialize a
//! `Dur`-typed field. D2 is deliberately excluded — inventing a seed for
//! an unseeded RNG changes behaviour and needs a human to thread the
//! root seed through.
//!
//! The rewrites are token-based: occurrences inside comments, strings and
//! `#[cfg(test)]` regions are left untouched, as are lines carrying a
//! `// gmt-lint: allow(...)` suppression.

use crate::lexer::{lex, TokKind};
use crate::rules::{check_unit_dimensions, test_mask, Config, FileContext, Findings, U1FixKind};
use crate::symbols::{AnalyzedFile, Symbols};

/// Applies the D3 rewrite to `source`, returning the new text, or `None`
/// if nothing needed changing.
pub fn fix_d3(source: &str) -> Option<String> {
    let lexed = lex(source);
    let tokens = &lexed.tokens;
    let mask = test_mask(tokens);
    // (byte range, replacement) edits, collected in source order.
    let mut edits: Vec<(usize, usize, &str)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let replacement = match t.text.as_str() {
            "HashMap" => "BTreeMap",
            "HashSet" => "BTreeSet",
            _ => continue,
        };
        let suppressed = lexed.suppressions.iter().any(|s| {
            (s.line == t.line || s.line + 1 == t.line) && s.rules.iter().any(|r| r == "D3")
        });
        if suppressed {
            continue;
        }
        edits.push((t.offset, t.len, replacement));
        // `HashMap::with_capacity(args)` has no B-tree equivalent; the
        // whole call collapses to `new()`.
        if tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens
                .get(i + 3)
                .is_some_and(|t| t.is_ident("with_capacity"))
            && tokens.get(i + 4).is_some_and(|t| t.is_punct('('))
        {
            let mut depth = 0usize;
            for call in tokens.iter().skip(i + 4) {
                if call.is_punct('(') {
                    depth += 1;
                } else if call.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        let start = tokens[i + 3].offset;
                        edits.push((start, call.offset + call.len - start, "new()"));
                        break;
                    }
                }
            }
        }
    }
    if edits.is_empty() {
        return None;
    }
    let mut out = String::with_capacity(source.len());
    let mut cursor = 0usize;
    for (offset, len, replacement) in edits {
        out.push_str(&source[cursor..offset]);
        out.push_str(replacement);
        cursor = offset + len;
    }
    out.push_str(&source[cursor..]);
    Some(out)
}

/// Applies the safe U1 conversions to `source`, which must be the exact
/// text `file` was analyzed from. `syms` supplies the workspace-wide
/// function and struct tables the walker consults, so `Dur`-typed fields
/// defined in other files still get their wrap.
///
/// Returns the rewritten text, or `None` if no fix applied. Suppressed
/// findings never produce a fix, and neither do expressions that bind
/// looser than `*` (where an appended multiplier would change parse).
pub fn fix_u1(
    source: &str,
    file: &AnalyzedFile,
    syms: &Symbols,
    config: &Config,
) -> Option<String> {
    let ctx = FileContext {
        rel_path: &file.rel,
        crate_name: &file.crate_name,
        target: file.target,
    };
    let mut out = Findings::new(&file.lexed.suppressions);
    let mut fixes = Vec::new();
    check_unit_dimensions(ctx, file, syms, config, &mut out, Some(&mut fixes));
    if fixes.is_empty() {
        return None;
    }
    let toks = &file.lexed.tokens;
    // (byte offset, inserted text) — pure insertions, applied in order.
    let mut edits: Vec<(usize, String)> = Vec::new();
    for fix in &fixes {
        let (Some(first), Some(last)) = (toks.get(fix.lo_tok), toks.get(fix.hi_tok - 1)) else {
            continue;
        };
        let end = last.offset + last.len;
        match fix.kind {
            U1FixKind::Mul(mult) => edits.push((end, format!(" * {mult}"))),
            U1FixKind::WrapDur(ctor) => {
                edits.push((first.offset, format!("Dur::{ctor}(")));
                edits.push((end, ")".to_string()));
            }
        }
    }
    edits.sort_by_key(|(offset, _)| *offset);
    let mut rewritten = String::with_capacity(source.len() + 16 * edits.len());
    let mut cursor = 0usize;
    for (offset, text) in edits {
        rewritten.push_str(&source[cursor..offset]);
        rewritten.push_str(&text);
        cursor = offset;
    }
    rewritten.push_str(&source[cursor..]);
    Some(rewritten)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::TargetKind;
    use crate::symbols::build_symbols;
    use std::path::PathBuf;

    fn fixed_u1(source: &str) -> Option<String> {
        let files = [AnalyzedFile::analyze(
            PathBuf::from("crates/x/src/lib.rs"),
            "x".to_string(),
            TargetKind::Lib,
            false,
            source,
        )];
        let syms = build_symbols(&files);
        fix_u1(source, &files[0], &syms, &Config::default())
    }

    #[test]
    fn multiplies_coarse_units_into_finer_slots() {
        let src = "fn f(delay_us: u64) { let mut total_ns: u64 = 0; total_ns = delay_us; }";
        let fixed = fixed_u1(src).expect("changes");
        assert!(fixed.contains("total_ns = delay_us * 1_000;"), "{fixed}");
    }

    #[test]
    fn wraps_raw_values_flowing_into_dur_fields() {
        let src = "struct Knobs { timeout: Dur }\n\
                   fn f(budget_ms: u64) -> Knobs { Knobs { timeout: budget_ms } }";
        let fixed = fixed_u1(src).expect("changes");
        assert!(
            fixed.contains("timeout: Dur::from_millis(budget_ms)"),
            "{fixed}"
        );
    }

    #[test]
    fn suppressed_findings_are_not_rewritten() {
        let src = "fn f(delay_us: u64) {\n    let mut total_ns: u64 = 0;\n    \
                   // gmt-lint: allow(U1): interpreting microseconds as a raw count\n    \
                   total_ns = delay_us;\n}";
        assert_eq!(fixed_u1(src), None);
    }

    #[test]
    fn renames_types_imports_and_constructors() {
        let src = "use std::collections::{HashMap, HashSet};\n\
                   struct S { m: HashMap<u64, u32>, s: HashSet<u64> }\n\
                   fn f() -> HashMap<u64, u32> { HashMap::with_capacity(10) }\n";
        let fixed = fix_d3(src).expect("changes");
        assert!(fixed.contains("use std::collections::{BTreeMap, BTreeSet};"));
        assert!(fixed.contains("m: BTreeMap<u64, u32>, s: BTreeSet<u64>"));
        assert!(fixed.contains("BTreeMap::new()"), "{fixed}");
        assert!(!fixed.contains("with_capacity"));
    }

    #[test]
    fn leaves_tests_comments_strings_and_suppressions_alone() {
        let src = "// HashMap stays in comments\n\
                   const DOC: &str = \"HashMap\";\n\
                   // gmt-lint: allow(D3): intentionally hashed scratch space\n\
                   fn scratch() { let _ = std::collections::HashMap::<u8, u8>::new(); }\n\
                   #[cfg(test)]\nmod tests { use std::collections::HashMap; }\n";
        assert_eq!(fix_d3(src), None, "nothing eligible to rewrite");
    }

    #[test]
    fn nested_capacity_arguments_are_consumed_whole() {
        let src = "fn f(n: usize) { let _ = HashSet::<u8>::new(); let _m: HashMap<u8, u8> = HashMap::with_capacity(n.max(cap(3))); }";
        let fixed = fix_d3(src).expect("changes");
        assert!(fixed.contains("BTreeMap::new()"), "{fixed}");
        assert!(!fixed.contains("n.max"), "capacity expression is gone");
        assert!(fixed.contains("BTreeSet::<u8>::new()"));
    }
}
