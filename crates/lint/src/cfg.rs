//! Intraprocedural control-flow graphs over the span AST.
//!
//! [`build_cfg`] lowers one function body into basic blocks connected by
//! statement-level control flow: `if`/`else` and `match` fork and join,
//! `while`/`for`/`loop` get a header block with a back edge (so the
//! worklist solver in [`crate::dataflow`] iterates them to a fixpoint),
//! and `return`/`break`/`continue` terminate or redirect their block.
//! Control flow *nested inside expressions* (`let x = if c { a } else
//! { b }`, closures, block expressions) is deliberately left to the
//! transfer functions, which evaluate sub-expressions recursively and
//! join branch results — the graph only needs to be precise where facts
//! must converge around loops and merge at joins.
//!
//! Blocks carry their lexical loop depth so consumers like the A1
//! hot-loop rule can ask "does this node execute once per iteration?"
//! without re-walking the AST.

use crate::ast::{Block, Expr, ExprKind, Stmt, StmtKind};
use crate::lexer::Token;

/// Index of a [`BasicBlock`] in its [`Cfg`].
pub type BlockId = usize;

/// One dataflow-relevant operation inside a basic block.
#[derive(Debug, Clone, Copy)]
pub enum Node<'a> {
    /// `let name[: ty] = init;` — binds (or rebinds) a local.
    Let {
        /// The bound name when the pattern is a simple identifier.
        name: Option<&'a str>,
        /// Token index of that name, for diagnostics.
        name_tok: Option<usize>,
        /// Token texts of the ascribed type, if any.
        ty: &'a [String],
        /// The initializer, if any.
        init: Option<&'a Expr>,
    },
    /// `for name in iter { … }` — the loop binding, evaluated once per
    /// iteration at the head of the loop body.
    ForBind {
        /// The bound name when the pattern is a simple identifier.
        name: Option<&'a str>,
        /// The iterated expression.
        iter: &'a Expr,
    },
    /// An expression evaluated for effect (statement, condition, guard).
    Eval(&'a Expr),
    /// A value leaving the function: `return e`, or the body's tail
    /// expression.
    Ret(Option<&'a Expr>),
}

/// One straight-line run of [`Node`]s.
#[derive(Debug, Default)]
pub struct BasicBlock<'a> {
    /// Operations in execution order.
    pub nodes: Vec<Node<'a>>,
    /// Successor blocks (empty for the function's exits).
    pub succs: Vec<BlockId>,
    /// Lexical loop depth (0 = not inside any loop).
    pub loop_depth: u32,
}

/// A function body lowered to basic blocks. Block 0 is the entry.
#[derive(Debug, Default)]
pub struct Cfg<'a> {
    /// The blocks; edges are stored on each block's `succs`.
    pub blocks: Vec<BasicBlock<'a>>,
}

impl<'a> Cfg<'a> {
    /// The entry block's id.
    pub const ENTRY: BlockId = 0;

    /// Blocks in reverse post-order-ish (construction) order. Good
    /// enough for a worklist that re-queues on change.
    pub fn ids(&self) -> impl Iterator<Item = BlockId> {
        0..self.blocks.len()
    }
}

/// Lowers `body` (a function body) into a [`Cfg`]. `toks` is the file's
/// token stream, used to distinguish `return`/`break`/`continue` (all
/// parsed as [`ExprKind::Unary`]) by their leading keyword.
pub fn build_cfg<'a>(body: &'a Block, toks: &'a [Token]) -> Cfg<'a> {
    let mut b = Builder {
        cfg: Cfg::default(),
        toks,
        loops: Vec::new(),
    };
    let entry = b.new_block(0);
    debug_assert_eq!(entry, Cfg::ENTRY);
    let exit = b.lower_block(body, entry, true);
    // The tail block falls off the end of the function; if the body's
    // last statement was not an explicit Ret, the implicit `()` return
    // needs no node. Leaving `exit` successor-less marks it terminal.
    let _ = exit;
    b.cfg
}

struct Builder<'a> {
    cfg: Cfg<'a>,
    toks: &'a [Token],
    /// Stack of `(header, exit)` for enclosing loops.
    loops: Vec<(BlockId, BlockId)>,
}

impl<'a> Builder<'a> {
    fn new_block(&mut self, depth: u32) -> BlockId {
        self.cfg.blocks.push(BasicBlock {
            loop_depth: depth,
            ..BasicBlock::default()
        });
        self.cfg.blocks.len() - 1
    }

    fn edge(&mut self, from: BlockId, to: BlockId) {
        if !self.cfg.blocks[from].succs.contains(&to) {
            self.cfg.blocks[from].succs.push(to);
        }
    }

    fn depth(&self, at: BlockId) -> u32 {
        self.cfg.blocks[at].loop_depth
    }

    /// The keyword starting `e`, when it is one of the control words the
    /// parser folds into `Unary`.
    fn control_kw(&self, e: &Expr) -> Option<&'a str> {
        let t = self.toks.get(e.span.lo)?;
        match t.text.as_str() {
            "return" | "break" | "continue" => Some(self.toks[e.span.lo].text.as_str()),
            _ => None,
        }
    }

    /// Lowers `block` starting in `cur`; returns the block control falls
    /// out of. `is_fn_body` promotes a trailing expression statement to
    /// a [`Node::Ret`].
    fn lower_block(&mut self, block: &'a Block, mut cur: BlockId, is_fn_body: bool) -> BlockId {
        let last = block.stmts.len().wrapping_sub(1);
        for (i, stmt) in block.stmts.iter().enumerate() {
            cur = self.lower_stmt(stmt, cur, is_fn_body && i == last);
        }
        cur
    }

    fn lower_stmt(&mut self, stmt: &'a Stmt, cur: BlockId, is_tail: bool) -> BlockId {
        match &stmt.kind {
            StmtKind::Let {
                name,
                name_tok,
                ty,
                init,
            } => {
                self.cfg.blocks[cur].nodes.push(Node::Let {
                    name: name.as_deref(),
                    name_tok: *name_tok,
                    ty,
                    init: init.as_ref(),
                });
                cur
            }
            StmtKind::Expr(e) => self.lower_expr_stmt(e, cur, is_tail),
            StmtKind::Item(_) | StmtKind::Verbatim => cur,
        }
    }

    /// Lowers a statement-position expression, splitting blocks for
    /// statement-level control flow.
    fn lower_expr_stmt(&mut self, e: &'a Expr, cur: BlockId, is_tail: bool) -> BlockId {
        let depth = self.depth(cur);
        match &e.kind {
            ExprKind::If { cond, then, els } => {
                self.cfg.blocks[cur].nodes.push(Node::Eval(cond));
                let join = self.new_block(depth);
                let then_entry = self.new_block(depth);
                self.edge(cur, then_entry);
                let then_exit = self.lower_block(then, then_entry, false);
                self.edge(then_exit, join);
                match els {
                    Some(els) => {
                        let else_entry = self.new_block(depth);
                        self.edge(cur, else_entry);
                        let else_exit = self.lower_expr_stmt(els, else_entry, false);
                        self.edge(else_exit, join);
                    }
                    None => self.edge(cur, join),
                }
                join
            }
            ExprKind::While { cond, body } => {
                let header = self.new_block(depth);
                self.edge(cur, header);
                self.cfg.blocks[header].nodes.push(Node::Eval(cond));
                let exit = self.new_block(depth);
                let body_entry = self.new_block(depth + 1);
                self.edge(header, body_entry);
                self.edge(header, exit);
                self.loops.push((header, exit));
                let body_exit = self.lower_block(body, body_entry, false);
                self.loops.pop();
                self.edge(body_exit, header);
                exit
            }
            ExprKind::For { iter, body } => {
                let header = self.new_block(depth);
                self.edge(cur, header);
                let exit = self.new_block(depth);
                let body_entry = self.new_block(depth + 1);
                self.edge(header, body_entry);
                self.edge(header, exit);
                let bind_name = self.for_pattern_name(e, iter);
                self.cfg.blocks[body_entry].nodes.push(Node::ForBind {
                    name: bind_name,
                    iter,
                });
                self.loops.push((header, exit));
                let body_exit = self.lower_block(body, body_entry, false);
                self.loops.pop();
                self.edge(body_exit, header);
                exit
            }
            ExprKind::Loop(body) => {
                let header = self.new_block(depth);
                self.edge(cur, header);
                let exit = self.new_block(depth);
                let body_entry = self.new_block(depth + 1);
                self.edge(header, body_entry);
                self.loops.push((header, exit));
                let body_exit = self.lower_block(body, body_entry, false);
                self.loops.pop();
                self.edge(body_exit, header);
                // `loop` exits only through `break` edges added above.
                exit
            }
            ExprKind::Match { scrutinee, arms } => {
                self.cfg.blocks[cur].nodes.push(Node::Eval(scrutinee));
                let join = self.new_block(depth);
                if arms.is_empty() {
                    self.edge(cur, join);
                }
                for arm in arms {
                    let arm_entry = self.new_block(depth);
                    self.edge(cur, arm_entry);
                    if let Some(g) = &arm.guard {
                        self.cfg.blocks[arm_entry].nodes.push(Node::Eval(g));
                    }
                    let arm_exit = self.lower_expr_stmt(&arm.body, arm_entry, false);
                    self.edge(arm_exit, join);
                }
                join
            }
            ExprKind::BlockExpr(b) => self.lower_block(b, cur, false),
            ExprKind::Unary(inner) => match self.control_kw(e) {
                Some("return") => {
                    self.cfg.blocks[cur].nodes.push(Node::Ret(inner.as_deref()));
                    // Anything after a return is dead: fresh, unreachable
                    // block keeps construction simple.
                    self.new_block(depth)
                }
                Some("break") => {
                    if let Some(inner) = inner {
                        self.cfg.blocks[cur].nodes.push(Node::Eval(inner));
                    }
                    if let Some(&(_, exit)) = self.loops.last() {
                        self.edge(cur, exit);
                    }
                    self.new_block(depth)
                }
                Some("continue") => {
                    if let Some(&(header, _)) = self.loops.last() {
                        self.edge(cur, header);
                    }
                    self.new_block(depth)
                }
                _ => {
                    self.push_value(e, cur, is_tail);
                    cur
                }
            },
            _ => {
                self.push_value(e, cur, is_tail);
                cur
            }
        }
    }

    fn push_value(&mut self, e: &'a Expr, cur: BlockId, is_tail: bool) {
        if is_tail {
            self.cfg.blocks[cur].nodes.push(Node::Ret(Some(e)));
        } else {
            self.cfg.blocks[cur].nodes.push(Node::Eval(e));
        }
    }

    /// Extracts the binding name of `for <pat> in iter` when the pattern
    /// is a single identifier (possibly `mut`-prefixed). The pattern
    /// lives in the gap tokens between the `for` keyword and the
    /// iterated expression.
    fn for_pattern_name(&self, for_expr: &Expr, iter: &Expr) -> Option<&'a str> {
        let lo = for_expr.span.lo + 1; // past `for`
        let hi = iter.span.lo.saturating_sub(1); // before `in`
        let mut names = (lo..hi)
            .map(|i| &self.toks[i])
            .filter(|t| t.kind == crate::lexer::TokKind::Ident && t.text != "mut");
        let first = names.next()?;
        names.next().is_none().then_some(first.text.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ItemKind;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn cfg_of(src: &str) -> (Vec<crate::lexer::Token>, crate::ast::File) {
        let toks = lex(src).tokens;
        let file = parse_file(&toks);
        (toks, file)
    }

    fn first_fn_cfg<'a>(file: &'a crate::ast::File, toks: &'a [crate::lexer::Token]) -> Cfg<'a> {
        for item in &file.items {
            if let ItemKind::Fn(f) = &item.kind {
                return build_cfg(f.body.as_ref().expect("body"), toks);
            }
        }
        panic!("no fn in source");
    }

    #[test]
    fn straight_line_code_is_one_block() {
        let (toks, file) = cfg_of("fn f() { let a = 1; let b = a; b }");
        let cfg = first_fn_cfg(&file, &toks);
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].nodes.len(), 3);
        assert!(matches!(cfg.blocks[0].nodes[2], Node::Ret(Some(_))));
        assert!(cfg.blocks[0].succs.is_empty());
    }

    #[test]
    fn if_else_forks_and_joins() {
        let (toks, file) = cfg_of("fn f(c: bool) { if c { a(); } else { b(); } d(); }");
        let cfg = first_fn_cfg(&file, &toks);
        // entry -> then, entry -> else, both -> join.
        assert_eq!(cfg.blocks[Cfg::ENTRY].succs.len(), 2);
        let join = cfg.blocks[Cfg::ENTRY]
            .succs
            .iter()
            .map(|&s| &cfg.blocks[s])
            .find_map(|b| b.succs.first())
            .copied()
            .expect("branches rejoin");
        assert_eq!(cfg.blocks[join].nodes.len(), 1, "d() lands in the join");
    }

    #[test]
    fn while_loop_has_a_back_edge_and_depth() {
        let (toks, file) = cfg_of("fn f() { while c() { body(); } after(); }");
        let cfg = first_fn_cfg(&file, &toks);
        let header = cfg.blocks[Cfg::ENTRY].succs[0];
        assert_eq!(cfg.blocks[header].succs.len(), 2, "body + exit");
        let body = *cfg.blocks[header]
            .succs
            .iter()
            .find(|&&s| cfg.blocks[s].loop_depth == 1)
            .expect("body is inside the loop");
        assert!(
            cfg.blocks[body].succs.contains(&header),
            "body loops back to the header"
        );
    }

    #[test]
    fn for_loop_binds_its_pattern_in_the_body() {
        let (toks, file) = cfg_of("fn f(xs: Vec<u32>) { for x in xs.iter() { use_it(x); } }");
        let cfg = first_fn_cfg(&file, &toks);
        let bound = cfg.blocks.iter().any(|b| {
            b.nodes.iter().any(|n| {
                matches!(
                    n,
                    Node::ForBind {
                        name: Some("x"),
                        ..
                    }
                )
            })
        });
        assert!(bound, "for-binding surfaces as a ForBind node");
    }

    #[test]
    fn return_terminates_its_block() {
        let (toks, file) = cfg_of("fn f(c: bool) -> u32 { if c { return 1; } 2 }");
        let cfg = first_fn_cfg(&file, &toks);
        let rets = cfg
            .blocks
            .iter()
            .flat_map(|b| &b.nodes)
            .filter(|n| matches!(n, Node::Ret(_)))
            .count();
        assert_eq!(rets, 2, "explicit return + tail expression");
    }

    #[test]
    fn break_exits_the_innermost_loop() {
        let (toks, file) = cfg_of("fn f() { loop { if done() { break; } step(); } after(); }");
        let cfg = first_fn_cfg(&file, &toks);
        // The loop exit must be reachable from inside the loop body.
        let exit_depths: Vec<u32> = cfg
            .blocks
            .iter()
            .filter(|b| b.loop_depth > 0)
            .flat_map(|b| b.succs.iter().map(|&s| cfg.blocks[s].loop_depth))
            .collect();
        assert!(
            exit_depths.contains(&0),
            "a break edge leaves the loop: {exit_depths:?}"
        );
    }

    #[test]
    fn match_arms_fork_and_rejoin() {
        let (toks, file) =
            cfg_of("fn f(x: u32) { match x { 0 => zero(), _ => other(), } done(); }");
        let cfg = first_fn_cfg(&file, &toks);
        assert!(
            cfg.blocks[Cfg::ENTRY].succs.len() >= 2,
            "one successor per arm"
        );
    }
}
