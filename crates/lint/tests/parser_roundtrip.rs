//! Parser round-trip property test over the real workspace.
//!
//! For every `.rs` file gmt-lint analyzes, parse the token stream into
//! the AST, pretty-print it back out, re-lex the printed source, and
//! assert token-stream equality with the original. Because the printer
//! only emits tokens the AST's spans own (plus parent gap tokens), the
//! round trip proves the AST loses nothing the token-level rules relied
//! on — a span bug would drop or duplicate tokens and fail here.

use gmt_lint::ast::print_file;
use gmt_lint::lexer::lex;
use gmt_lint::parser::parse_file;
use gmt_lint::workspace::{find_root, workspace_files};

#[test]
fn every_workspace_file_round_trips_token_for_token() {
    let root = find_root(&std::env::current_dir().expect("cwd")).expect("workspace root");
    let files = workspace_files(&root, false).expect("workspace walk");
    assert!(
        files.len() >= 140,
        "suspiciously few files: {}",
        files.len()
    );

    let mut checked = 0usize;
    for sf in &files {
        let source = std::fs::read_to_string(&sf.abs).expect("read source");
        let tokens = lex(&source).tokens;
        let file = parse_file(&tokens);
        let printed = print_file(&file, &tokens);
        let relexed = lex(&printed).tokens;

        assert_eq!(
            tokens.len(),
            relexed.len(),
            "{}: token count drifted {} -> {}",
            sf.rel.display(),
            tokens.len(),
            relexed.len()
        );
        for (i, (a, b)) in tokens.iter().zip(relexed.iter()).enumerate() {
            assert_eq!(
                (a.kind, &a.text),
                (b.kind, &b.text),
                "{}: token {} diverged near line {}",
                sf.rel.display(),
                i,
                a.line
            );
        }
        checked += 1;
    }
    assert!(checked >= 140, "round-tripped only {checked} files");
}
