//! Planted N1 violation, interprocedural: hash-iteration taint passes
//! through TWO ordinary function calls (`relay` → `forward`) before it
//! reaches the sink. The bottom-up summaries must carry `forward`'s
//! sink-parameter bit into `relay`'s summary for the call site in
//! `export_counts` to be flagged.

use std::collections::HashMap;

pub struct Sink;

impl Sink {
    pub fn to_jsonl(&self, row: u64) {
        let _ = row;
    }
}

fn relay(sink: &Sink, row: u64) {
    forward(sink, row);
}

fn forward(sink: &Sink, row: u64) {
    sink.to_jsonl(row);
}

pub fn export_counts(sink: &Sink, m: HashMap<u64, u64>) {
    for key in m.keys() {
        relay(sink, key);
    }
}
