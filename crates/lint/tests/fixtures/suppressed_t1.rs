// Fixture: the same unhandled emission silenced by the suppression
// comment — must produce zero findings and exactly one suppression.

pub enum TraceEvent {
    HostPin { page: u64 },
}

pub fn note_pin(page: u64) -> TraceEvent {
    // gmt-lint: allow(T1): fixture — the exporter lands next PR.
    TraceEvent::HostPin { page }
}
