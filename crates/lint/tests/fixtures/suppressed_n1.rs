//! The suppression twin of `n1_taint_export.rs`: the same hash-order
//! leak, silenced with an allow comment carrying a reason.

use std::collections::HashMap;

pub struct Emitter;

impl Emitter {
    pub fn emit(&self, vt: u64, page: u64) {
        let _ = (vt, page);
    }
}

pub fn leak_iteration_order(emitter: &Emitter, m: HashMap<u64, u64>) {
    for page in m.keys() {
        // gmt-lint: allow(N1): fixture demonstrating the suppression syntax.
        emitter.emit(0, page);
    }
}
