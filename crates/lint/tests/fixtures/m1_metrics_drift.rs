// Fixture: a TieringMetrics definition whose merge() forgot the field
// added last — must produce exactly one M1 finding naming `new_counter`.

pub struct TieringMetrics {
    pub t1_hits: u64,
    pub t1_misses: u64,
    pub new_counter: u64,
}

impl TieringMetrics {
    pub fn merge(&mut self, other: &TieringMetrics) {
        self.t1_hits += other.t1_hits;
        self.t1_misses += other.t1_misses;
    }
}
