// Fixture pair: `--fix` input for the U1 rewrite. The coarse-unit
// assignment must gain `* 1_000` and the raw millisecond value flowing
// into the `Dur`-typed field must be wrapped in `Dur::from_millis`.
// The suppressed line stays untouched. Expected output: fix_u1_after.rs.

pub struct Pacing {
    pub gap: Dur,
}

pub fn pacing(gap_ms: u64, budget_us: u64, raw_us: u64) -> (Pacing, u64) {
    let mut total_ns: u64 = 0;
    total_ns = budget_us * 1_000;
    // gmt-lint: allow(U1): deliberately reinterpreted as a raw count.
    total_ns += raw_us;
    (Pacing { gap: Dur::from_millis(gap_ms) }, total_ns)
}
