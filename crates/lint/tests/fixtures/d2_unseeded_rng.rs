// Fixture: linted as library code in `crates/reuse/` — the thread_rng
// call must produce exactly one D2 finding (reuse is outside D1/P1).

pub fn noise() -> u64 {
    use rand::Rng;
    rand::thread_rng().gen()
}
