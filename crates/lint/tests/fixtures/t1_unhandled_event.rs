// Fixture: linted as library code in `crates/core/` — a trace variant
// that is emitted but never matched by the analysis crate must produce
// exactly one T1 finding at the emission site.

pub enum TraceEvent {
    HostPin { page: u64 },
}

pub fn note_pin(page: u64) -> TraceEvent {
    TraceEvent::HostPin { page }
}
