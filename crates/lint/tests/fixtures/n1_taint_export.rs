//! Planted N1 violation: a value observed through `HashMap` iteration
//! order flows straight into an export sink, so the exported bytes
//! would differ from run to run.

use std::collections::HashMap;

pub struct Emitter;

impl Emitter {
    pub fn emit(&self, vt: u64, page: u64) {
        let _ = (vt, page);
    }
}

pub fn leak_iteration_order(emitter: &Emitter, m: HashMap<u64, u64>) {
    for page in m.keys() {
        emitter.emit(0, page);
    }
}
