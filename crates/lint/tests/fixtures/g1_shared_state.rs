//! Planted G1 violation: a `static mut` is process-global mutable state
//! that no shard can own — the sharded DES (ROADMAP item 2) cannot
//! partition it.

static mut EVENT_SEQ: u64 = 0;

pub fn next_seq() -> u64 {
    0
}
