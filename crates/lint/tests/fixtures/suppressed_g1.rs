//! The suppression twin of `g1_shared_state.rs`: the same global,
//! silenced with an allow comment carrying a reason.

// gmt-lint: allow(G1): fixture demonstrating the suppression syntax.
static mut EVENT_SEQ: u64 = 0;

pub fn next_seq() -> u64 {
    0
}
