// Fixture: the same dead knob silenced by the suppression comment —
// must produce zero findings and exactly one suppression.

pub struct SsdConfig {
    // gmt-lint: allow(C1): fixture — the knob lands with the GC model.
    pub spare_channels: usize,
}

impl SsdConfig {
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.spare_channels > 64 {
            return Err("spare_channels cannot exceed 64");
        }
        Ok(())
    }
}
