// Fixture: linted as library code in `crates/core/` — adding a
// microsecond delay to a nanosecond total must produce exactly one U1
// finding at the `+`.

pub fn total_latency(base_ns: u64, delay_us: u64) -> u64 {
    base_ns + delay_us
}
