// Fixture: linted as library code in `crates/ssd/` — a public knob on a
// tracked config struct that nothing outside the struct's own impl ever
// reads must produce exactly one C1 (dead knob) finding. The knob *is*
// range-checked in validate(), so the numeric-coverage arm stays quiet.

pub struct SsdConfig {
    pub spare_channels: usize,
}

impl SsdConfig {
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.spare_channels > 64 {
            return Err("spare_channels cannot exceed 64");
        }
        Ok(())
    }
}
