// Fixture: the same mixed-unit addition silenced by the suppression
// comment — must produce zero findings and exactly one suppression.

pub fn total_latency(base_ns: u64, delay_us: u64) -> u64 {
    // gmt-lint: allow(U1): fixture — the caller pre-scales the delay.
    base_ns + delay_us
}
