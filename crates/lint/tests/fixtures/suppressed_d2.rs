// Fixture: a planted D2 violation silenced by the suppression comment —
// must produce zero findings and exactly one suppression.

pub fn entropy_probe() -> u64 {
    use rand::Rng;
    // gmt-lint: allow(D2): fixture demonstrating the suppression syntax.
    rand::thread_rng().gen()
}
