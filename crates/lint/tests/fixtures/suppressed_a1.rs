//! The suppression twin of `a1_alloc_hot_loop.rs`: the same per-event
//! allocation, silenced with an allow comment carrying a reason.

pub struct Cache {
    pages: Vec<u64>,
}

impl Cache {
    pub fn access(&mut self, page: u64) -> u64 {
        // gmt-lint: allow(A1): fixture demonstrating the suppression syntax.
        let mut pending: Vec<u64> = Vec::new();
        pending.push(page);
        self.pages.push(page);
        pending.len() as u64
    }
}
