// Fixture: linted as library code in `crates/core/` — the .unwrap()
// must produce exactly one P1 finding; unwrap_or and the test module
// below must stay silent.

pub fn pick(values: &[u64]) -> u64 {
    let relaxed = values.first().copied().unwrap_or(0);
    let strict = values.first().copied().unwrap();
    relaxed.max(strict)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        assert_eq!(super::pick(&[3]).checked_mul(2).unwrap(), 6);
    }
}
