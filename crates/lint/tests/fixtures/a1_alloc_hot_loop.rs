//! Planted A1 violation: `access` is a per-event DES root, so its whole
//! body runs once per simulated event — allocating a fresh `Vec` there
//! is allocator churn on the hottest path.

pub struct Cache {
    pages: Vec<u64>,
}

impl Cache {
    pub fn access(&mut self, page: u64) -> u64 {
        let mut pending: Vec<u64> = Vec::new();
        pending.push(page);
        self.pages.push(page);
        pending.len() as u64
    }
}
