// Fixture: linted as if it were library code in `crates/sim/` — the one
// wall-clock mention below must produce exactly one D1 finding.

pub fn elapsed_ns() -> u64 {
    let started = std::time::Instant::now();
    started.elapsed().as_nanos() as u64
}
