//! Fixture: a crate root whose lint-relevant attribute is absent — must
//! produce exactly one S1 finding. (`deny` is not `forbid`: it can be
//! overridden further down the tree, so it does not satisfy the rule.)

#![deny(unsafe_code)]

pub fn noop() {}
