// Fixture: a serde-deriving module in `crates/analysis/` — the one
// HashMap mention must produce exactly one D3 finding. The commented
// and quoted mentions below must stay silent.

use serde::Serialize;

// HashMap in a comment is not a finding.
pub const NOTE: &str = "HashMap in a string is not a finding";

#[derive(Serialize)]
pub struct Export {
    pub rows: Vec<(u64, u64)>,
}

pub fn build(rows: std::collections::HashMap<u64, u64>) -> Export {
    let mut rows: Vec<(u64, u64)> = rows.into_iter().collect();
    rows.sort_unstable();
    Export { rows }
}
