// Fixture pair: `--fix` input. The rewrite must rename the hash
// collections, collapse with_capacity into new, and leave the test
// module, comments and suppressed line untouched. Expected output is
// fix_d3_after.rs.

use serde::Serialize;
use std::collections::{HashMap, HashSet};

#[derive(Serialize)]
pub struct Summary {
    pub by_page: HashMap<u64, u64>,
    pub seen: HashSet<u64>,
}

pub fn collect(n: usize) -> Summary {
    // HashMap stays put in comments.
    let by_page: HashMap<u64, u64> = HashMap::with_capacity(n.max(16));
    let seen: HashSet<u64> = HashSet::new();
    // gmt-lint: allow(D3): scratch space that is never serialized.
    let _scratch = std::collections::HashMap::<u64, u64>::new();
    Summary {
        by_page,
        seen,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_keeps_hashing() {
        let _ = std::collections::HashMap::<u64, u64>::new();
    }
}
