//! The lint's own acceptance suite: every fixture trips exactly the rule
//! it was planted for, the real workspace is clean at deny level, the
//! suppression syntax works, and `--fix` reproduces the committed
//! after-image byte for byte.

use std::fs;
use std::path::{Path, PathBuf};

use gmt_lint::rules::rule;
use gmt_lint::{check_crate_root, check_source, fix, Config, Level, Report, TargetKind};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels under the root")
        .to_path_buf()
}

/// (fixture file, pretend path, crate, target, rule it must trip).
const PLANTED: &[(&str, &str, &str, TargetKind, &str)] = &[
    (
        "d1_wall_clock.rs",
        "crates/sim/src/clocky.rs",
        "sim",
        TargetKind::Lib,
        "D1",
    ),
    (
        "d2_unseeded_rng.rs",
        "crates/reuse/src/noise.rs",
        "reuse",
        TargetKind::Lib,
        "D2",
    ),
    (
        "d3_hashmap_export.rs",
        "crates/analysis/src/export.rs",
        "analysis",
        TargetKind::Lib,
        "D3",
    ),
    (
        "p1_panic_in_lib.rs",
        "crates/core/src/pick.rs",
        "core",
        TargetKind::Lib,
        "P1",
    ),
    (
        "m1_metrics_drift.rs",
        "crates/core/src/metrics.rs",
        "core",
        TargetKind::Lib,
        "M1",
    ),
    (
        "u1_mixed_units.rs",
        "crates/core/src/latency.rs",
        "core",
        TargetKind::Lib,
        "U1",
    ),
    (
        "c1_dead_config.rs",
        "crates/ssd/src/knobs.rs",
        "ssd",
        TargetKind::Lib,
        "C1",
    ),
    (
        "t1_unhandled_event.rs",
        "crates/core/src/pin_trace.rs",
        "core",
        TargetKind::Lib,
        "T1",
    ),
    (
        "n1_taint_export.rs",
        "crates/sim/src/hashy.rs",
        "sim",
        TargetKind::Lib,
        "N1",
    ),
    (
        "a1_alloc_hot_loop.rs",
        "crates/core/src/hotcache.rs",
        "core",
        TargetKind::Lib,
        "A1",
    ),
    (
        "g1_shared_state.rs",
        "crates/core/src/globals.rs",
        "core",
        TargetKind::Lib,
        "G1",
    ),
];

#[test]
fn each_fixture_trips_exactly_its_rule_at_deny() {
    for (file, path, crate_name, target, expected) in PLANTED {
        let source = fixture(file);
        let (findings, suppressed) = check_source(
            Path::new(path),
            crate_name,
            *target,
            &source,
            &Config::default(),
        );
        assert_eq!(
            findings.len(),
            1,
            "{file} must plant exactly one violation, got {findings:#?}"
        );
        assert_eq!(findings[0].rule, *expected, "{file}");
        assert_eq!(findings[0].level, Level::Deny, "{file}");
        assert_eq!(suppressed, 0, "{file}");
    }
}

/// The red-run demonstration: any planted regression makes the report a
/// failing one, which is exactly what flips CI red.
#[test]
fn a_planted_regression_fails_the_run() {
    for (file, path, crate_name, target, expected) in PLANTED {
        let source = fixture(file);
        let (findings, _) = check_source(
            Path::new(path),
            crate_name,
            *target,
            &source,
            &Config::default(),
        );
        let report = Report {
            findings,
            suppressed: 0,
            baselined: 0,
            files_scanned: 1,
        };
        assert!(
            report.has_deny(),
            "{file}: rule {expected} must fail a deny-level run"
        );
        assert!(report.render_json().contains("\"ok\":false"));
    }
}

#[test]
fn s1_fixture_trips_on_a_missing_forbid() {
    let source = fixture("s1_missing_forbid.rs");
    let finding = check_crate_root(
        Path::new("crates/x/src/lib.rs"),
        &source,
        &Config::default(),
    )
    .expect("deny(unsafe_code) is not forbid(unsafe_code)");
    assert_eq!(finding.rule, "S1");
    assert_eq!(finding.level, Level::Deny);
    // And the same content is silent for every token rule.
    let (findings, _) = check_source(
        Path::new("crates/x/src/lib.rs"),
        "x",
        TargetKind::Lib,
        &source,
        &Config::default(),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn allow_comment_suppresses_a_planted_violation() {
    let cases: &[(&str, &str, &str)] = &[
        ("suppressed_d2.rs", "crates/reuse/src/noise.rs", "reuse"),
        ("suppressed_u1.rs", "crates/core/src/latency.rs", "core"),
        ("suppressed_c1.rs", "crates/ssd/src/knobs.rs", "ssd"),
        ("suppressed_t1.rs", "crates/core/src/pin_trace.rs", "core"),
        ("suppressed_n1.rs", "crates/sim/src/hashy.rs", "sim"),
        ("suppressed_a1.rs", "crates/core/src/hotcache.rs", "core"),
        ("suppressed_g1.rs", "crates/core/src/globals.rs", "core"),
    ];
    for (file, path, crate_name) in cases {
        let source = fixture(file);
        let (findings, suppressed) = check_source(
            Path::new(path),
            crate_name,
            TargetKind::Lib,
            &source,
            &Config::default(),
        );
        assert!(findings.is_empty(), "{file}: {findings:#?}");
        assert_eq!(suppressed, 1, "{file}: suppression must be counted");
    }
}

#[test]
fn fix_rewrites_before_into_after_byte_for_byte() {
    let before = fixture("fix_d3_before.rs");
    let after = fixture("fix_d3_after.rs");
    let fixed = fix::fix_d3(&before).expect("the before-image has violations");
    assert_eq!(
        fixed, after,
        "--fix must reproduce the committed after-image"
    );
    assert_eq!(
        fix::fix_d3(&after),
        None,
        "the after-image is already clean"
    );
}

#[test]
fn u1_fix_rewrites_before_into_after_byte_for_byte() {
    let fixed_u1 = |source: &str| {
        let files = [gmt_lint::symbols::AnalyzedFile::analyze(
            PathBuf::from("crates/pcie/src/pacing.rs"),
            "pcie".to_string(),
            TargetKind::Lib,
            false,
            source,
        )];
        let syms = gmt_lint::symbols::build_symbols(&files);
        fix::fix_u1(source, &files[0], &syms, &Config::default())
    };
    let before = fixture("fix_u1_before.rs");
    let after = fixture("fix_u1_after.rs");
    let fixed = fixed_u1(&before).expect("the before-image has violations");
    assert_eq!(
        fixed, after,
        "--fix must reproduce the committed after-image"
    );
    assert_eq!(fixed_u1(&after), None, "the after-image is already clean");
}

/// Inventory of the workspace's surviving suppressions: every
/// `gmt-lint: allow(...)` must carry a reason, the A1 (alloc in a hot
/// loop) debt from the pre-overhaul tree must stay paid off, and the
/// single sanctioned G1 (shared mutable state) — the trace ring's
/// `Rc<RefCell<..>>` — must live exactly where it is documented.
#[test]
fn workspace_suppressions_are_inventoried_and_justified() {
    fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
        for entry in fs::read_dir(dir).expect("readable dir") {
            let path = entry.expect("dir entry").path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            if path.is_dir() {
                if name != "target" && name != "fixtures" && name != "vendor" {
                    rust_files(&path, out);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    let mut files = Vec::new();
    rust_files(&repo_root().join("crates"), &mut files);
    assert!(files.len() > 50, "the walk must cover the crates");

    let mut g1_sites = Vec::new();
    for path in &files {
        let source = fs::read_to_string(path).expect("readable source");
        let display = path
            .strip_prefix(repo_root())
            .unwrap()
            .display()
            .to_string();
        // The lint crate's own sources mention the syntax in docs and
        // string literals; only enforce the simulator crates.
        if display.starts_with("crates/lint/") {
            continue;
        }
        for (i, line) in source.lines().enumerate() {
            let Some(pos) = line.find("gmt-lint: allow(") else {
                continue;
            };
            let after = &line[pos + "gmt-lint: allow(".len()..];
            let rules = &after[..after.find(')').unwrap_or(after.len())];
            assert!(
                after.contains("):"),
                "{display}:{}: suppression must carry a `: reason`",
                i + 1
            );
            assert!(
                !rules.contains("A1"),
                "{display}:{}: the A1 hot-loop allocations were fixed in the \
                 hot-path overhaul; fix the allocation instead of suppressing",
                i + 1
            );
            if rules.contains("G1") {
                g1_sites.push(display.clone());
            }
        }
    }
    assert_eq!(
        g1_sites,
        vec!["crates/sim/src/trace.rs".to_string()],
        "exactly one sanctioned G1 suppression: the shared trace ring"
    );
}

/// The workspace itself must hold every invariant the lint enforces —
/// this is the test that keeps it that way.
#[test]
fn real_workspace_is_clean_at_deny_level() {
    let report = gmt_lint::lint_workspace(&repo_root(), &Config::default(), false)
        .expect("workspace walk succeeds");
    assert!(
        report.findings.is_empty(),
        "workspace must be lint-clean:\n{}",
        report.render_text()
    );
    assert!(report.files_scanned > 100, "the walk must cover the tree");
    assert!(
        report.suppressed > 0,
        "the documented invariant panics carry suppressions"
    );
}

/// ISSUE 6 requires the full pass — now including CFG construction,
/// the taint fixpoint, and the call graph — to finish within 4 s; the
/// debug-profile walk currently takes well under one second.
#[test]
fn full_workspace_pass_is_fast() {
    let started = std::time::Instant::now();
    let _ = gmt_lint::lint_workspace(&repo_root(), &Config::default(), false).unwrap();
    assert!(
        started.elapsed() < std::time::Duration::from_secs(4),
        "lint pass took {:?}",
        started.elapsed()
    );
}

/// The two-hop fixture: hash-iteration taint must cross two ordinary
/// function calls (`relay` → `forward`) before reaching the sink, which
/// only works if the bottom-up summary fixpoint propagates `forward`'s
/// sink-parameter bit into `relay`'s summary.
#[test]
fn n1_taint_propagates_through_a_two_hop_call_chain() {
    let source = fixture("n1_two_hop.rs");
    let (findings, suppressed) = check_source(
        Path::new("crates/sim/src/twohop.rs"),
        "sim",
        TargetKind::Lib,
        &source,
        &Config::default(),
    );
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, "N1");
    assert!(
        findings[0].message.contains("via the call chain"),
        "the finding must name the interprocedural route: {}",
        findings[0].message
    );
    assert_eq!(suppressed, 0);
}

#[test]
fn every_planted_rule_is_registered() {
    for (_, _, _, _, id) in PLANTED {
        assert!(rule(id).is_some(), "rule {id} missing from RULES");
    }
    assert!(rule("S1").is_some());
}
