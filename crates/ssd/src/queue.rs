//! NVMe submission/completion queue pairs.
//!
//! BaM's key mechanism — which GMT inherits for Tier-1 ⇄ Tier-3 transfers —
//! is to allocate these rings in GPU memory and map them over PCIe
//! (`nvidia_p2p_get_pages` / `nvidia_p2p_dma_map_pages`) so that GPU
//! threads can enqueue I/O commands and poll completions without any host
//! involvement. This module implements the ring-buffer protocol itself:
//! fixed-size circular submission queues with head/tail doorbells, and
//! completion queues with NVMe's phase-tag convention.

use serde::{Deserialize, Serialize};

/// An NVMe I/O opcode (the subset the tiering runtimes use).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Opcode {
    /// Read `blocks` logical blocks starting at `lba`.
    Read,
    /// Write `blocks` logical blocks starting at `lba`.
    Write,
    /// Flush the device write cache.
    Flush,
}

/// One 64-byte NVMe submission-queue entry (abstracted).
///
/// # Examples
///
/// ```
/// use gmt_ssd::queue::{Command, Opcode};
/// let cmd = Command::io(7, Opcode::Read, 1024, 128);
/// assert_eq!(cmd.bytes(512), 128 * 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Command {
    /// Command identifier, echoed in the completion entry.
    pub cid: u16,
    /// Operation.
    pub opcode: Opcode,
    /// Starting logical block address.
    pub lba: u64,
    /// Number of logical blocks.
    pub blocks: u32,
}

impl Command {
    /// Creates an I/O command.
    pub fn io(cid: u16, opcode: Opcode, lba: u64, blocks: u32) -> Command {
        Command {
            cid,
            opcode,
            lba,
            blocks,
        }
    }

    /// Payload size in bytes given the device's logical block size.
    pub fn bytes(&self, block_bytes: u32) -> u64 {
        self.blocks as u64 * block_bytes as u64
    }
}

/// One 16-byte NVMe completion-queue entry (abstracted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletionEntry {
    /// Identifier of the completed command.
    pub cid: u16,
    /// NVMe status code (0 = success).
    pub status: u16,
    /// Phase tag; flips each time the queue wraps.
    pub phase: bool,
    /// Submission-queue head pointer at completion time.
    pub sq_head: u16,
}

/// Error returned when enqueueing into a full ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("nvme queue is full")
    }
}

impl std::error::Error for QueueFull {}

/// A circular NVMe submission queue with doorbell semantics.
///
/// One slot is always left empty to distinguish full from empty, per the
/// NVMe specification.
///
/// # Examples
///
/// ```
/// use gmt_ssd::queue::{Command, Opcode, SubmissionQueue};
/// let mut sq = SubmissionQueue::new(4);
/// sq.push(Command::io(0, Opcode::Read, 0, 8))?;
/// sq.ring_doorbell();
/// assert_eq!(sq.pop().unwrap().cid, 0);
/// # Ok::<(), gmt_ssd::queue::QueueFull>(())
/// ```
#[derive(Debug, Clone)]
pub struct SubmissionQueue {
    ring: Vec<Option<Command>>,
    head: usize,
    tail: usize,
    doorbell: usize,
}

impl SubmissionQueue {
    /// Creates a queue with `slots` entries (one is reserved).
    ///
    /// # Panics
    ///
    /// Panics if `slots < 2`.
    pub fn new(slots: usize) -> SubmissionQueue {
        assert!(slots >= 2, "nvme queues need at least 2 slots");
        SubmissionQueue {
            ring: vec![None; slots],
            head: 0,
            tail: 0,
            doorbell: 0,
        }
    }

    /// Number of usable slots.
    pub fn capacity(&self) -> usize {
        self.ring.len() - 1
    }

    /// Entries currently in the ring (submitted or not yet consumed).
    pub fn len(&self) -> usize {
        (self.tail + self.ring.len() - self.head) % self.ring.len()
    }

    /// Whether the ring has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the ring is full.
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity()
    }

    /// Writes a command at the tail.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] if all usable slots are occupied — the
    /// condition that throttles GPU threads when thousands fault at once.
    pub fn push(&mut self, cmd: Command) -> Result<(), QueueFull> {
        if self.is_full() {
            return Err(QueueFull);
        }
        self.ring[self.tail] = Some(cmd);
        self.tail = (self.tail + 1) % self.ring.len();
        Ok(())
    }

    /// Rings the tail doorbell, making all pushed entries visible to the
    /// controller.
    pub fn ring_doorbell(&mut self) {
        self.doorbell = self.tail;
    }

    /// Controller side: consumes the next *doorbell-visible* command.
    pub fn pop(&mut self) -> Option<Command> {
        if self.head == self.doorbell {
            return None;
        }
        let cmd = self.ring[self.head]
            .take()
            .expect("ring slot below doorbell is filled");
        self.head = (self.head + 1) % self.ring.len();
        cmd.into()
    }

    /// The controller-visible head index (reported in completions).
    pub fn head(&self) -> u16 {
        self.head as u16
    }
}

/// A circular NVMe completion queue with phase-tag semantics.
///
/// The consumer detects new entries by watching the phase bit instead of a
/// doorbell: the controller flips the tag every time the ring wraps.
///
/// # Examples
///
/// ```
/// use gmt_ssd::queue::CompletionQueue;
/// let mut cq = CompletionQueue::new(4);
/// cq.post(3, 0, 1);
/// let e = cq.poll().expect("posted entry is visible");
/// assert_eq!(e.cid, 3);
/// assert!(cq.poll().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct CompletionQueue {
    ring: Vec<CompletionEntry>,
    tail: usize,
    head: usize,
    producer_phase: bool,
    consumer_phase: bool,
}

impl CompletionQueue {
    /// Creates a completion queue with `slots` entries.
    ///
    /// # Panics
    ///
    /// Panics if `slots < 2`.
    pub fn new(slots: usize) -> CompletionQueue {
        assert!(slots >= 2, "nvme queues need at least 2 slots");
        CompletionQueue {
            ring: vec![
                CompletionEntry {
                    cid: 0,
                    status: 0,
                    phase: false,
                    sq_head: 0
                };
                slots
            ],
            tail: 0,
            head: 0,
            producer_phase: true,
            consumer_phase: true,
        }
    }

    /// Controller side: posts a completion for command `cid`.
    pub fn post(&mut self, cid: u16, status: u16, sq_head: u16) {
        self.ring[self.tail] = CompletionEntry {
            cid,
            status,
            phase: self.producer_phase,
            sq_head,
        };
        self.tail += 1;
        if self.tail == self.ring.len() {
            self.tail = 0;
            self.producer_phase = !self.producer_phase;
        }
    }

    /// Consumer side (a GPU thread in BaM): polls for the next completion.
    pub fn poll(&mut self) -> Option<CompletionEntry> {
        let entry = self.ring[self.head];
        if entry.phase != self.consumer_phase {
            return None;
        }
        self.head += 1;
        if self.head == self.ring.len() {
            self.head = 0;
            self.consumer_phase = !self.consumer_phase;
        }
        Some(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sq_push_pop_respects_doorbell() {
        let mut sq = SubmissionQueue::new(4);
        sq.push(Command::io(1, Opcode::Read, 0, 8)).unwrap();
        // Not yet visible: doorbell not rung.
        assert!(sq.pop().is_none());
        sq.ring_doorbell();
        assert_eq!(sq.pop().unwrap().cid, 1);
        assert!(sq.pop().is_none());
    }

    #[test]
    fn sq_full_detection() {
        let mut sq = SubmissionQueue::new(3); // 2 usable slots
        sq.push(Command::io(0, Opcode::Read, 0, 1)).unwrap();
        sq.push(Command::io(1, Opcode::Read, 8, 1)).unwrap();
        assert_eq!(sq.push(Command::io(2, Opcode::Read, 16, 1)), Err(QueueFull));
        sq.ring_doorbell();
        sq.pop().unwrap();
        assert!(sq.push(Command::io(2, Opcode::Read, 16, 1)).is_ok());
    }

    #[test]
    fn sq_wraps_around() {
        let mut sq = SubmissionQueue::new(3);
        for round in 0..10u16 {
            sq.push(Command::io(round, Opcode::Write, 0, 1)).unwrap();
            sq.ring_doorbell();
            assert_eq!(sq.pop().unwrap().cid, round);
        }
    }

    #[test]
    fn cq_phase_bit_distinguishes_new_entries_across_wrap() {
        let mut cq = CompletionQueue::new(2);
        for cid in 0..7u16 {
            cq.post(cid, 0, 0);
            let e = cq.poll().expect("entry visible");
            assert_eq!(e.cid, cid);
            assert_eq!(e.status, 0);
            assert!(cq.poll().is_none(), "no spurious entry after cid {cid}");
        }
    }

    #[test]
    fn command_byte_math() {
        let c = Command::io(0, Opcode::Read, 0, 128);
        assert_eq!(c.bytes(512), 65_536); // one 64 KB page
    }

    #[test]
    #[should_panic(expected = "at least 2 slots")]
    fn tiny_queue_rejected() {
        let _ = SubmissionQueue::new(1);
    }
}
