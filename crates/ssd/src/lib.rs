//! NVMe SSD model for the GMT reproduction.
//!
//! The paper's Tier-3 is a Samsung 970 EVO Plus on PCIe Gen3 x4, accessed
//! two ways:
//!
//! * **GPU-direct** (the BaM mechanism, §2.3): GPU threads write NVMe
//!   commands into submission queues that live in GPU memory and are mapped
//!   over the PCIe bus, then ring the doorbell — no host software involved.
//! * **Host userspace I/O** (libnvm) for Tier-2 ⇄ Tier-3 transfers, which
//!   are off the GPU's critical path.
//!
//! Both paths drive the same device model:
//!
//! * [`queue`] — submission/completion queue rings with NVMe phase-bit
//!   semantics (the data structure BaM places in GPU memory),
//! * [`SsdDevice`] — a multi-channel flash timing model behind a Gen3 x4
//!   link, calibrated so a 64 KB page read costs ≈130 µs at low load and
//!   aggregate read bandwidth saturates ≈3.2 GB/s — the numbers the paper
//!   itself reports (§3.4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
mod device;
pub mod host_io;
pub mod qpair;
pub mod queue;

pub use device::{SsdConfig, SsdDevice, SsdStats};
