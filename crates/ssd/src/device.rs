//! Flash timing model calibrated to the paper's platform.

use gmt_sim::trace::{TraceEvent, TraceSink};
use gmt_sim::{Dur, Link, ServerPool, Time};
use serde::{Deserialize, Serialize};

use crate::queue::{Command, CompletionEntry, Opcode};

/// Timing/topology parameters of the simulated SSD.
///
/// Defaults are calibrated to the paper's Samsung 970 EVO Plus on PCIe
/// Gen3 x4 so that a 64 KB page read completes in ≈130 µs at low queue
/// depth (the latency the paper reports in §3.4) and aggregate read
/// bandwidth saturates around 3.2 GB/s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SsdConfig {
    /// Logical block size in bytes.
    pub block_bytes: u32,
    /// Flash read latency per command (media + controller).
    pub read_latency: Dur,
    /// Flash program latency per command (SLC-cache absorbed).
    pub write_latency: Dur,
    /// Independent flash channels (internal parallelism).
    pub channels: usize,
    /// Per-channel media bandwidth, bytes/second.
    pub channel_bytes_per_sec: f64,
    /// Host-interface (PCIe Gen3 x4) bandwidth, bytes/second.
    pub link_bytes_per_sec: f64,
    /// Host-interface propagation latency.
    pub link_latency: Dur,
    /// Cost of building + submitting one NVMe command (doorbell write,
    /// queue bookkeeping) on the submitting processor.
    pub submit_overhead: Dur,
}

impl SsdConfig {
    /// Rejects degenerate timing/topology parameters before they can
    /// produce division-by-zero bandwidths or a zero-channel device.
    ///
    /// # Errors
    ///
    /// Returns a static description of the first nonsensical knob.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.block_bytes == 0 {
            return Err("block_bytes must be at least one byte");
        }
        if self.channels == 0 {
            return Err("channels must be at least one flash channel");
        }
        if !(self.channel_bytes_per_sec.is_finite() && self.channel_bytes_per_sec > 0.0) {
            return Err("channel_bytes_per_sec must be finite and positive");
        }
        if !(self.link_bytes_per_sec.is_finite() && self.link_bytes_per_sec > 0.0) {
            return Err("link_bytes_per_sec must be finite and positive");
        }
        Ok(())
    }
}

impl Default for SsdConfig {
    fn default() -> SsdConfig {
        SsdConfig {
            block_bytes: 512,
            read_latency: Dur::from_micros(68),
            write_latency: Dur::from_micros(22),
            channels: 8,
            channel_bytes_per_sec: 1.6e9,
            link_bytes_per_sec: 3.2e9,
            link_latency: Dur::from_micros(2),
            submit_overhead: Dur::from_nanos(800),
        }
    }
}

/// Aggregate I/O statistics for one device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SsdStats {
    /// Completed read commands.
    pub reads: u64,
    /// Completed write commands.
    pub writes: u64,
    /// Bytes read from flash.
    pub bytes_read: u64,
    /// Bytes written to flash.
    pub bytes_written: u64,
}

impl SsdStats {
    /// Total completed commands.
    pub fn total_ios(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

/// The simulated NVMe device: multi-channel flash behind a Gen3 x4 link.
///
/// A command submitted at `now` is modelled as: submission overhead →
/// channel service (latency + media transfer on the earliest-free channel)
/// → host-interface transfer. The [`ServerPool`] backlog reproduces
/// queue-depth effects: at saturation, completion times are dominated by
/// the aggregate bandwidth cap, exactly the regime in which BaM operates.
///
/// # Examples
///
/// ```
/// use gmt_sim::Time;
/// use gmt_ssd::{SsdConfig, SsdDevice};
/// use gmt_ssd::queue::{Command, Opcode};
///
/// let mut ssd = SsdDevice::new(SsdConfig::default());
/// let cmd = Command::io(0, Opcode::Read, 0, 128); // one 64 KB page
/// let (done, completion) = ssd.submit(Time::ZERO, cmd);
/// assert_eq!(completion.cid, 0);
/// // Low-load page read lands near the paper's ~130 us figure.
/// let us = done.since(Time::ZERO).as_nanos() / 1_000;
/// assert!((100..170).contains(&us), "latency {us} us");
/// ```
#[derive(Debug, Clone)]
pub struct SsdDevice {
    config: SsdConfig,
    flash: ServerPool,
    link: Link,
    stats: SsdStats,
    next_sq_head: u16,
    trace: TraceSink,
    trace_index: u32,
    pending: Vec<PendingIo>,
}

/// An in-flight command tracked only while tracing, so queue depth can be
/// reported on every submission.
#[derive(Debug, Clone, Copy)]
struct PendingIo {
    done: Time,
    write: bool,
}

impl SsdDevice {
    /// Creates a device from `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.channels` is zero or a bandwidth is non-positive.
    pub fn new(config: SsdConfig) -> SsdDevice {
        SsdDevice {
            flash: ServerPool::new(config.channels),
            link: Link::new(config.link_bytes_per_sec, config.link_latency),
            stats: SsdStats::default(),
            next_sq_head: 0,
            trace: TraceSink::disabled(),
            trace_index: 0,
            pending: Vec::new(),
            config,
        }
    }

    /// The device's configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// Routes this device's submissions and completions into `trace`,
    /// identified as device `index`.
    pub fn attach_trace(&mut self, trace: &TraceSink, index: u32) {
        self.trace = trace.clone();
        self.trace_index = index;
    }

    /// Emits [`TraceEvent::SsdComplete`] for every in-flight command whose
    /// completion time is at or before `now`. Completions are reaped
    /// lazily — on the next submission or an explicit flush — mirroring
    /// how the runtimes poll NVMe completion queues.
    pub fn flush_trace(&mut self, now: Time) {
        if !self.trace.is_enabled() {
            return;
        }
        // `pending` is kept sorted by completion time at insertion, so
        // reaping is a partition point — no per-poll sort, no scratch
        // allocation.
        let ready = self.pending.partition_point(|io| io.done <= now);
        if ready == 0 {
            return;
        }
        let total = self.pending.len();
        for (i, io) in self.pending[..ready].iter().enumerate() {
            self.trace.emit(
                now,
                TraceEvent::SsdComplete {
                    device: self.trace_index,
                    write: io.write,
                    queue_depth: (total - 1 - i) as u32,
                },
            );
        }
        self.pending.drain(..ready);
    }

    /// Submits `cmd` at time `now`; returns its completion time and entry.
    pub fn submit(&mut self, now: Time, cmd: Command) -> (Time, CompletionEntry) {
        let bytes = cmd.bytes(self.config.block_bytes);
        let (media_latency, media_bytes) = match cmd.opcode {
            Opcode::Read => {
                self.stats.reads += 1;
                self.stats.bytes_read += bytes;
                (self.config.read_latency, bytes)
            }
            Opcode::Write => {
                self.stats.writes += 1;
                self.stats.bytes_written += bytes;
                (self.config.write_latency, bytes)
            }
            Opcode::Flush => (self.config.write_latency, 0),
        };
        let submitted = now + self.config.submit_overhead;
        let service =
            media_latency + Dur::for_bytes(media_bytes, self.config.channel_bytes_per_sec);
        let flash_done = self.flash.submit(submitted, service);
        let done = self.link.transfer(flash_done, bytes.max(16));
        if self.trace.is_enabled() {
            self.flush_trace(now);
            let write = !matches!(cmd.opcode, Opcode::Read);
            // Sorted insert (ties keep submission order). Completions
            // mostly finish in submission order, so the insertion point
            // is usually the tail and the shift is empty.
            let at = self.pending.partition_point(|io| io.done <= done);
            self.pending.insert(at, PendingIo { done, write });
            self.trace.emit(
                now,
                TraceEvent::SsdSubmit {
                    device: self.trace_index,
                    write,
                    bytes,
                    queue_depth: self.pending.len() as u32,
                },
            );
        }
        self.next_sq_head = self.next_sq_head.wrapping_add(1);
        let entry = CompletionEntry {
            cid: cmd.cid,
            status: 0,
            phase: true,
            sq_head: self.next_sq_head,
        };
        (done, entry)
    }

    /// Convenience: read `bytes` starting at byte `offset`.
    ///
    /// Returns the completion time.
    pub fn read(&mut self, now: Time, offset: u64, bytes: u64) -> Time {
        let cmd = self.command(Opcode::Read, offset, bytes);
        self.submit(now, cmd).0
    }

    /// Convenience: write `bytes` starting at byte `offset`.
    ///
    /// Returns the completion time.
    pub fn write(&mut self, now: Time, offset: u64, bytes: u64) -> Time {
        let cmd = self.command(Opcode::Write, offset, bytes);
        self.submit(now, cmd).0
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> SsdStats {
        self.stats
    }

    /// Total time the host-interface link has been occupied.
    pub fn link_busy(&self) -> Dur {
        self.link.busy_time()
    }

    fn command(&mut self, opcode: Opcode, offset: u64, bytes: u64) -> Command {
        let block = self.config.block_bytes as u64;
        let lba = offset / block;
        let blocks = bytes.div_ceil(block) as u32;
        Command::io(self.next_sq_head, opcode, lba, blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: u64 = 64 * 1024;

    #[test]
    fn single_page_read_near_130us() {
        let mut ssd = SsdDevice::new(SsdConfig::default());
        let done = ssd.read(Time::ZERO, 0, PAGE);
        let us = done.since(Time::ZERO).as_nanos() as f64 / 1e3;
        assert!((110.0..150.0).contains(&us), "page read latency {us} us");
    }

    #[test]
    fn write_is_faster_than_read() {
        let mut r = SsdDevice::new(SsdConfig::default());
        let mut w = SsdDevice::new(SsdConfig::default());
        let read_done = r.read(Time::ZERO, 0, PAGE);
        let write_done = w.write(Time::ZERO, 0, PAGE);
        assert!(write_done < read_done);
    }

    #[test]
    fn saturated_read_bandwidth_near_3_2_gbps() {
        let mut ssd = SsdDevice::new(SsdConfig::default());
        let pages = 4_000u64;
        let mut done = Time::ZERO;
        for i in 0..pages {
            done = done.max(ssd.read(Time::ZERO, i * PAGE, PAGE));
        }
        let gbps = (pages * PAGE) as f64 / done.as_secs_f64() / 1e9;
        assert!(
            (2.6..3.3).contains(&gbps),
            "saturated read bandwidth {gbps} GB/s"
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut ssd = SsdDevice::new(SsdConfig::default());
        ssd.read(Time::ZERO, 0, PAGE);
        ssd.write(Time::ZERO, PAGE, PAGE);
        let s = ssd.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.total_bytes(), 2 * PAGE);
        assert_eq!(s.total_ios(), 2);
    }

    #[test]
    fn queue_depth_hides_latency() {
        // 8 concurrent reads run on 8 parallel flash channels, so the only
        // added cost is the serialized x4 link (~164 us for 512 KB): far
        // better than the 8x a single-channel device would take.
        let mut ssd = SsdDevice::new(SsdConfig::default());
        let solo = SsdDevice::new(SsdConfig::default());
        let mut max_done = Time::ZERO;
        for i in 0..8u64 {
            max_done = max_done.max(ssd.read(Time::ZERO, i * PAGE, PAGE));
        }
        let mut solo_dev = solo;
        let solo_done = solo_dev.read(Time::ZERO, 0, PAGE);
        let ratio = max_done.as_nanos() as f64 / solo_done.as_nanos() as f64;
        assert!(ratio < 3.0, "8-deep queue took {ratio}x a single read");
    }
}
